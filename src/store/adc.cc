#include "store/adc.h"

#include "base/check.h"
#include "tensor/kernels.h"

namespace sdea::store {

void Int8PrepareQuery(const float* q, const float* scales, int64_t d,
                      float* q_scaled) {
  for (int64_t j = 0; j < d; ++j) q_scaled[j] = q[j] * scales[j];
}

void AdcScanInt8(const uint8_t* codes, int64_t n, int64_t d,
                 const float* q_scaled, float* out) {
  if (tmath::ActiveKernelMode() == tmath::KernelMode::kExact) {
    // Exact contract: double accumulator, ascending-j, rounded once.
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t* code = codes + i * d;
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        acc += static_cast<double>(q_scaled[j]) *
               static_cast<double>(static_cast<int8_t>(code[j]));
      }
      out[i] = static_cast<float>(acc);
    }
    return;
  }
#ifdef SDEA_HAVE_AVX2_TU
  if (tmath::ActiveSimdLevel() == tmath::SimdLevel::kAvx2) {
    internal::AdcScanInt8Avx2(codes, n, d, q_scaled, out);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + i * d;
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      acc += q_scaled[j] * static_cast<float>(static_cast<int8_t>(code[j]));
    }
    out[i] = acc;
  }
}

void PqBuildLut(const float* q, const Codebook& codebook, float* lut) {
  SDEA_CHECK(codebook.kind() == Quantization::kPq);
  const int64_t m = codebook.pq_subspaces();
  const int64_t k = codebook.pq_centroids();
  const int64_t sub = codebook.pq_subdim();
  // One Gemv per subspace: centroid block s is a [k, sub] row-major
  // matrix, scored against the query's s-th subvector. Gemv dispatches on
  // the active kernel mode, so the LUT (and with it every ADC score) is
  // exact-mode reproducible.
  for (int64_t s = 0; s < m; ++s) {
    tmath::kernels::Gemv(codebook.centroids().data() + s * k * sub, k, sub,
                         q + s * sub, lut + s * k);
  }
}

void AdcScanPq(const uint8_t* codes, int64_t n, int64_t m, int64_t k,
               const float* lut, float* out) {
  if (tmath::ActiveKernelMode() == tmath::KernelMode::kExact) {
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t* code = codes + i * m;
      double acc = 0.0;
      for (int64_t s = 0; s < m; ++s) {
        acc += static_cast<double>(
            lut[s * k + static_cast<int64_t>(code[s])]);
      }
      out[i] = static_cast<float>(acc);
    }
    return;
  }
#ifdef SDEA_HAVE_AVX2_TU
  if (tmath::ActiveSimdLevel() == tmath::SimdLevel::kAvx2) {
    internal::AdcScanPqAvx2(codes, n, m, k, lut, out);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + i * m;
    float acc = 0.0f;
    for (int64_t s = 0; s < m; ++s) {
      acc += lut[s * k + static_cast<int64_t>(code[s])];
    }
    out[i] = acc;
  }
}

}  // namespace sdea::store
