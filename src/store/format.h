#ifndef SDEA_STORE_FORMAT_H_
#define SDEA_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "store/quantizer.h"

namespace sdea::store {

/// The SDEASTOR1 on-disk snapshot layout: one small `manifest.sdea` plus
/// `shard-NNNNN.sdea` files, all written via WriteStringToFileAtomic with
/// the manifest LAST — until the manifest lands, the snapshot does not
/// exist, so a crash mid-write can never expose a partial store.
///
/// Shard files are built for mmap: a fixed 4096-byte header page, then
/// page-aligned code and fp32 regions so a query touches only the pages
/// it scans. All integers are little-endian u64 (store/wire.h); every
/// decoder honours the DESIGN.md §8 contract — arbitrary bytes produce
/// ok() or InvalidArgument, never a crash, hang, or unbounded allocation.

constexpr int64_t kShardHeaderBytes = 4096;
constexpr int64_t kShardPageBytes = 4096;

/// Per-shard accounting carried by the manifest, cross-checked against
/// the shard's own header at open time.
struct ShardInfo {
  int64_t rows = 0;
  int64_t file_bytes = 0;
};

/// The decoded `manifest.sdea`.
struct Manifest {
  int64_t dim = 0;
  int64_t total_rows = 0;
  Quantization quantization = Quantization::kInt8;
  bool store_full_precision = true;
  Codebook codebook;
  std::vector<ShardInfo> shards;
};

std::string EncodeManifest(const Manifest& manifest);
Result<Manifest> DecodeManifest(const std::string& blob);

/// The fixed-size header page at the front of every shard file. Offsets
/// are absolute file offsets; fp32_offset == 0 means the shard carries no
/// full-precision region (rerank disabled at write time).
struct ShardHeader {
  int64_t rows = 0;
  int64_t dim = 0;
  uint64_t quantization = 0;
  int64_t code_bytes_per_row = 0;
  uint64_t codes_offset = 0;
  uint64_t fp32_offset = 0;
  uint64_t names_index_offset = 0;
  uint64_t names_blob_offset = 0;
  uint64_t names_blob_bytes = 0;
  uint64_t file_bytes = 0;
};

/// Builds a complete shard file image: header page + codes + optional
/// fp32 rows + the name offset index (u64[rows+1]) + the name bytes.
/// `codes` must be rows*code_bytes bytes; `fp32` is nullptr or rows*dim
/// floats; `names` must have exactly `rows` entries.
std::string EncodeShard(const Codebook& codebook, const uint8_t* codes,
                        const float* fp32, int64_t rows,
                        const std::vector<std::string>& names,
                        int64_t names_begin);

/// Validates a shard image (mmap'd bytes or an in-memory blob): magic,
/// header-field bounds with overflow guards, every region inside
/// [header, size), and a monotone name index that ends exactly at the
/// name blob's size. O(rows) for the index scan — the only region this
/// touches — everything else is header arithmetic.
Result<ShardHeader> DecodeShardHeader(const uint8_t* data, size_t size);

/// Blob-level wrapper for the fuzz driver.
inline Result<ShardHeader> DecodeShardBlob(const std::string& blob) {
  return DecodeShardHeader(
      reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
}

/// `dir`-relative file names.
std::string ManifestPath(const std::string& dir);
std::string ShardPath(const std::string& dir, int64_t index);

}  // namespace sdea::store

#endif  // SDEA_STORE_FORMAT_H_
