#ifndef SDEA_STORE_QUANTIZED_STORE_H_
#define SDEA_STORE_QUANTIZED_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/embedding_store.h"
#include "store/format.h"
#include "store/mmap_file.h"
#include "store/quantizer.h"
#include "tensor/tensor.h"

namespace sdea::store {

/// Write-time knobs for a sharded SDEASTOR1 snapshot.
struct StoreWriteOptions {
  Quantization quantization = Quantization::kInt8;
  PqOptions pq;  ///< Used when quantization == kPq.
  /// Rows per shard file. 256K rows keeps a dim-64 int8 shard around
  /// 16 MiB of codes — big enough that the scan is sequential, small
  /// enough that shard writes stay comfortably inside one atomic temp
  /// file each.
  int64_t rows_per_shard = 262144;
  /// Keep page-aligned fp32 rows in each shard for the exact rerank pass.
  /// Disabling shrinks the snapshot to codes + names, but queries then
  /// return ADC scores with no exactness guarantee.
  bool store_full_precision = true;
};

/// Query-time knobs.
struct StoreQueryOptions {
  /// ADC survivor pool fed to the exact rerank; 0 picks
  /// max(4k, k + 16). Bigger pools cost more fp32 page reads and buy
  /// recall; the pool where full-precision top-1 is reproduced exactly on
  /// the benchmark pairs is recorded in EXPERIMENTS.md.
  int64_t rerank_pool = 0;
  /// Skip the rerank and return raw ADC scores (candidate generation and
  /// benchmarks; also the forced path when the snapshot was written
  /// without full-precision rows).
  bool rerank = true;
};

/// A memory-mapped quantized embedding snapshot: the serving counterpart
/// of core::EmbeddingStore for stores too large to slurp into RAM.
/// Open() reads only the manifest and the shard header/name-index pages —
/// O(ms) regardless of row count — and queries page in exactly the code
/// regions they scan plus the fp32 rows they rerank.
///
/// Queries run ADC over every row (int8 or PQ codes), keep a survivor
/// pool via tmath::TopK, then rerank survivors with kernels::ScoreDot on
/// the mmap'd fp32 rows under the same total order as
/// EmbeddingStore::NearestNeighbors — so whenever the true top-1 survives
/// the pool (measured, not assumed), the top-1 answer is bit-identical to
/// the full-precision store's.
///
/// Thread-safe for concurrent queries (read-only after Open). Move-only:
/// results of name() and row() point into the mappings, so holders must
/// keep the store alive (serve pins it via shared_ptr snapshots).
class QuantizedStore {
 public:
  using Neighbor = core::EmbeddingStore::Neighbor;

  QuantizedStore() = default;
  QuantizedStore(QuantizedStore&&) = default;
  QuantizedStore& operator=(QuantizedStore&&) = default;

  /// Quantizes `embeddings` ([N, d], rows L2-normalized internally,
  /// names unique) and writes a complete snapshot under `dir` (created
  /// if missing): shard files first, manifest last, each via
  /// WriteStringToFileAtomic — a crash mid-write leaves no visible
  /// snapshot, never a partial one.
  static Status Write(const std::string& dir,
                      const std::vector<std::string>& names,
                      const Tensor& embeddings,
                      const StoreWriteOptions& options = {});

  /// Maps an existing snapshot. Decodes the manifest, mmaps every shard,
  /// validates headers and name indexes, and cross-checks both against
  /// the manifest; any disagreement is InvalidArgument.
  static Result<QuantizedStore> Open(const std::string& dir);

  int64_t size() const { return total_rows_; }
  int64_t dim() const { return manifest_.dim; }
  Quantization quantization() const { return manifest_.quantization; }
  const Codebook& codebook() const { return manifest_.codebook; }
  bool has_full_precision() const { return manifest_.store_full_precision; }

  /// The stored (L2-normalized) fp32 row, or nullptr when the snapshot
  /// was written without full-precision rows. Valid while the store
  /// lives.
  const float* row(int64_t id) const;

  /// The entity name of a row, resolved from the mmap'd name blob.
  std::string name(int64_t id) const;

  /// Compressed scan footprint: code bytes across all shards (what a
  /// full ADC sweep touches).
  int64_t compressed_bytes() const { return compressed_bytes_; }
  /// fp32 region bytes across all shards (0 without full precision).
  int64_t full_precision_bytes() const { return full_precision_bytes_; }

  /// Top-k cosine neighbors of `query` (length dim()), ADC + exact
  /// rerank. Same edge contract as EmbeddingStore::NearestNeighbors:
  /// wrong dim aborts even when empty or k <= 0; k <= 0 or an empty
  /// store yields {}; k clamps to size().
  std::vector<Neighbor> NearestNeighbors(
      const Tensor& query, int64_t k,
      const StoreQueryOptions& options = {}) const;

  /// ADC-only candidate pool: global row ids of the `pool` best ADC
  /// scores, ranked best-first (the candidate-generation entry point —
  /// no fp32 pages touched).
  std::vector<int64_t> Candidates(const Tensor& query, int64_t pool) const;

 private:
  struct Shard {
    MmapFile map;
    ShardHeader header;
    int64_t row_begin = 0;  // Global id of this shard's first row.
  };

  const Shard& ShardForRow(int64_t id, int64_t* local) const;
  void AdcScanAll(const float* qnorm, float* scores) const;

  Manifest manifest_;
  std::vector<Shard> shards_;
  int64_t total_rows_ = 0;
  int64_t compressed_bytes_ = 0;
  int64_t full_precision_bytes_ = 0;
};

}  // namespace sdea::store

#endif  // SDEA_STORE_QUANTIZED_STORE_H_
