#include "store/quantized_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "base/fileio.h"
#include "obs/registry.h"
#include "store/adc.h"
#include "store/wire.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::store {
namespace {

/// Handles into the process-wide registry, resolved once; recording is
/// lock-free (the obs discipline). Latency buckets span 1us..~4s.
struct StoreMetrics {
  obs::Counter* opens;
  obs::Counter* queries;
  obs::Gauge* open_ms;
  obs::HistogramCell* adc_us;
  obs::HistogramCell* rerank_us;
  obs::Counter* rerank_rows;

  static const StoreMetrics& Get() {
    static StoreMetrics* m = [] {
      obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
      const std::vector<double> us =
          obs::Histogram::Exponential(1.0, 2.0, 22).upper_bounds();
      auto* out = new StoreMetrics;
      out->opens = reg->GetCounter("store.opens");
      out->queries = reg->GetCounter("store.queries");
      out->open_ms = reg->GetGauge("store.open_ms");
      out->adc_us = reg->GetHistogram("store.adc_us", us);
      out->rerank_us = reg->GetHistogram("store.rerank_us", us);
      out->rerank_rows = reg->GetCounter("store.rerank_rows");
      return out;
    }();
    return *m;
  }
};

double ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Status QuantizedStore::Write(const std::string& dir,
                             const std::vector<std::string>& names,
                             const Tensor& embeddings,
                             const StoreWriteOptions& options) {
  if (embeddings.rank() != 2 ||
      embeddings.dim(0) != static_cast<int64_t>(names.size())) {
    return Status::InvalidArgument("embeddings must be [names.size(), d]");
  }
  if (options.rows_per_shard <= 0) {
    return Status::InvalidArgument("rows_per_shard must be positive");
  }
  {
    std::unordered_set<std::string> unique(names.begin(), names.end());
    if (unique.size() != names.size()) {
      return Status::InvalidArgument("entity names must be unique");
    }
  }
  SDEA_RETURN_IF_ERROR(MakeDirectory(dir));

  // Same normalization as EmbeddingStore::Create, so the fp32 regions
  // (and therefore rerank scores) are byte-identical to what the
  // full-precision store would serve.
  Tensor norm = embeddings;
  tmath::L2NormalizeRowsInPlace(&norm);
  const int64_t n = norm.dim(0), d = norm.dim(1);

  Manifest manifest;
  manifest.dim = d;
  manifest.total_rows = n;
  manifest.quantization = options.quantization;
  manifest.store_full_precision = options.store_full_precision;
  if (options.quantization == Quantization::kInt8) {
    manifest.codebook = Codebook::TrainInt8(norm);
  } else {
    SDEA_ASSIGN_OR_RETURN(manifest.codebook,
                          Codebook::TrainPq(norm, options.pq));
  }

  // Shards first, manifest last: the snapshot becomes visible only once
  // everything it references is durably in place.
  const int64_t shard_count =
      n == 0 ? 0 : (n + options.rows_per_shard - 1) / options.rows_per_shard;
  manifest.shards.reserve(static_cast<size_t>(shard_count));
  for (int64_t s = 0; s < shard_count; ++s) {
    const int64_t begin = s * options.rows_per_shard;
    const int64_t rows = std::min(options.rows_per_shard, n - begin);
    const std::vector<uint8_t> codes =
        manifest.codebook.EncodeRows(norm.data() + begin * d, rows);
    const std::string blob = EncodeShard(
        manifest.codebook, codes.data(),
        options.store_full_precision ? norm.data() + begin * d : nullptr,
        rows, names, begin);
    SDEA_RETURN_IF_ERROR(WriteStringToFileAtomic(ShardPath(dir, s), blob));
    manifest.shards.push_back(
        ShardInfo{rows, static_cast<int64_t>(blob.size())});
  }
  return WriteStringToFileAtomic(ManifestPath(dir),
                                 EncodeManifest(manifest));
}

Result<QuantizedStore> QuantizedStore::Open(const std::string& dir) {
  const auto t0 = std::chrono::steady_clock::now();
  SDEA_ASSIGN_OR_RETURN(std::string manifest_blob,
                        ReadFileToString(ManifestPath(dir)));
  auto manifest = DecodeManifest(manifest_blob);
  if (!manifest.ok()) {
    return Status(manifest.status().code(),
                  manifest.status().message() + ": " + ManifestPath(dir));
  }
  QuantizedStore out;
  out.manifest_ = std::move(*manifest);
  out.total_rows_ = out.manifest_.total_rows;
  out.shards_.reserve(out.manifest_.shards.size());
  int64_t row_begin = 0;
  for (size_t s = 0; s < out.manifest_.shards.size(); ++s) {
    const ShardInfo& info = out.manifest_.shards[s];
    const std::string path = ShardPath(dir, static_cast<int64_t>(s));
    Shard shard;
    SDEA_ASSIGN_OR_RETURN(shard.map, MmapFile::Open(path));
    auto header = DecodeShardHeader(shard.map.data(), shard.map.size());
    if (!header.ok()) {
      return Status(header.status().code(),
                    header.status().message() + ": " + path);
    }
    shard.header = *header;
    // The shard must be the one the manifest promised: same geometry,
    // same quantization, same codebook stride.
    if (shard.header.rows != info.rows ||
        shard.header.file_bytes != static_cast<uint64_t>(info.file_bytes) ||
        shard.header.dim != out.manifest_.dim ||
        shard.header.quantization !=
            static_cast<uint64_t>(out.manifest_.quantization) ||
        shard.header.code_bytes_per_row !=
            out.manifest_.codebook.code_bytes() ||
        (out.manifest_.store_full_precision ==
         (shard.header.fp32_offset == 0))) {
      return Status::InvalidArgument(
          "store shard disagrees with manifest: " + path);
    }
    shard.row_begin = row_begin;
    row_begin += shard.header.rows;
    out.compressed_bytes_ +=
        shard.header.rows * shard.header.code_bytes_per_row;
    if (shard.header.fp32_offset != 0) {
      out.full_precision_bytes_ +=
          shard.header.rows * shard.header.dim *
          static_cast<int64_t>(sizeof(float));
    }
    out.shards_.push_back(std::move(shard));
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.opens->Increment();
  metrics.open_ms->Set(ElapsedUs(t0) / 1000.0);
  return out;
}

const QuantizedStore::Shard& QuantizedStore::ShardForRow(
    int64_t id, int64_t* local) const {
  SDEA_CHECK_GE(id, 0);
  SDEA_CHECK_LT(id, total_rows_);
  // Shards are equal-sized except the last, so the division lands either
  // on the right shard or one past (never short).
  size_t s = std::min(
      shards_.size() - 1,
      static_cast<size_t>(id / std::max<int64_t>(
                                   1, shards_.front().header.rows)));
  while (id < shards_[s].row_begin) --s;
  *local = id - shards_[s].row_begin;
  return shards_[s];
}

const float* QuantizedStore::row(int64_t id) const {
  if (!manifest_.store_full_precision) return nullptr;
  int64_t local = 0;
  const Shard& shard = ShardForRow(id, &local);
  return reinterpret_cast<const float*>(shard.map.data() +
                                        shard.header.fp32_offset) +
         local * manifest_.dim;
}

std::string QuantizedStore::name(int64_t id) const {
  int64_t local = 0;
  const Shard& shard = ShardForRow(id, &local);
  const uint8_t* index =
      shard.map.data() + shard.header.names_index_offset;
  const uint64_t begin = wire::LoadU64(index + 8 * local);
  const uint64_t end = wire::LoadU64(index + 8 * (local + 1));
  const char* blob = reinterpret_cast<const char*>(
      shard.map.data() + shard.header.names_blob_offset);
  return std::string(blob + begin, end - begin);
}

void QuantizedStore::AdcScanAll(const float* qnorm, float* scores) const {
  const Codebook& cb = manifest_.codebook;
  if (cb.kind() == Quantization::kInt8) {
    std::vector<float> q_scaled(static_cast<size_t>(cb.dim()));
    Int8PrepareQuery(qnorm, cb.scales().data(), cb.dim(), q_scaled.data());
    for (const Shard& shard : shards_) {
      AdcScanInt8(shard.map.data() + shard.header.codes_offset,
                  shard.header.rows, cb.dim(), q_scaled.data(),
                  scores + shard.row_begin);
    }
    return;
  }
  std::vector<float> lut(
      static_cast<size_t>(cb.pq_subspaces() * cb.pq_centroids()));
  PqBuildLut(qnorm, cb, lut.data());
  for (const Shard& shard : shards_) {
    AdcScanPq(shard.map.data() + shard.header.codes_offset,
              shard.header.rows, cb.pq_subspaces(), cb.pq_centroids(),
              lut.data(), scores + shard.row_begin);
  }
}

std::vector<int64_t> QuantizedStore::Candidates(const Tensor& query,
                                                int64_t pool) const {
  if (dim() > 0) SDEA_CHECK_EQ(query.size(), dim());
  if (total_rows_ == 0 || pool <= 0) return {};
  Tensor q({1, dim()});
  q.SetRow(0, query);
  tmath::L2NormalizeRowsInPlace(&q);
  std::vector<float> scores(static_cast<size_t>(total_rows_));
  AdcScanAll(q.data(), scores.data());
  return tmath::TopK(scores.data(), total_rows_, pool);
}

std::vector<QuantizedStore::Neighbor> QuantizedStore::NearestNeighbors(
    const Tensor& query, int64_t k,
    const StoreQueryOptions& options) const {
  // Same guard order as EmbeddingStore::NearestNeighbors: the dim
  // contract holds even for empty stores and k <= 0.
  if (dim() > 0) SDEA_CHECK_EQ(query.size(), dim());
  if (total_rows_ == 0 || k <= 0) return {};
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.queries->Increment();

  Tensor q({1, dim()});
  q.SetRow(0, query);
  tmath::L2NormalizeRowsInPlace(&q);

  const auto adc_start = std::chrono::steady_clock::now();
  std::vector<float> scores(static_cast<size_t>(total_rows_));
  AdcScanAll(q.data(), scores.data());

  const bool rerank = options.rerank && manifest_.store_full_precision;
  const int64_t pool =
      rerank ? std::min<int64_t>(
                   total_rows_,
                   options.rerank_pool > 0 ? options.rerank_pool
                                           : std::max<int64_t>(4 * k, k + 16))
             : k;
  const std::vector<int64_t> survivors =
      tmath::TopK(scores.data(), total_rows_, pool);
  metrics.adc_us->Record(ElapsedUs(adc_start));

  std::vector<Neighbor> out;
  if (!rerank) {
    out.reserve(survivors.size());
    for (int64_t id : survivors) {
      out.push_back(Neighbor{name(id), id, scores[static_cast<size_t>(id)]});
    }
    return out;
  }

  // Exact rerank over the survivors: ScoreDot on the mmap'd fp32 rows
  // (Gemv's per-row contract in both kernel modes), ranked under the same
  // total order as the full-precision store — ties by ascending ROW id
  // via the tie-id overload, not by pool position.
  const auto rerank_start = std::chrono::steady_clock::now();
  const int64_t pn = static_cast<int64_t>(survivors.size());
  std::vector<float> exact(static_cast<size_t>(pn));
  for (int64_t i = 0; i < pn; ++i) {
    exact[static_cast<size_t>(i)] =
        tmath::kernels::ScoreDot(q.data(), row(survivors[i]), dim());
  }
  const std::vector<int64_t> top = tmath::TopKWithTieIds(
      exact.data(), pn, std::min<int64_t>(k, pn), survivors.data());
  metrics.rerank_us->Record(ElapsedUs(rerank_start));
  metrics.rerank_rows->Increment(static_cast<uint64_t>(pn));

  out.reserve(top.size());
  for (int64_t pos : top) {
    const int64_t id = survivors[static_cast<size_t>(pos)];
    out.push_back(
        Neighbor{name(id), id, exact[static_cast<size_t>(pos)]});
  }
  return out;
}

}  // namespace sdea::store
