#ifndef SDEA_STORE_QUANTIZER_H_
#define SDEA_STORE_QUANTIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "tensor/tensor.h"

namespace sdea::store {

/// Compression scheme for stored embedding rows.
enum class Quantization : uint8_t {
  /// 1 byte per component with a per-dimension symmetric scale trained
  /// from the data (the scales live in the codebook, not per row, so the
  /// code region is exactly dim bytes/row — a 4x reduction over fp32).
  kInt8 = 0,
  /// Product quantization: the row is split into `m` subvectors, each
  /// replaced by the index of its nearest codebook centroid — 1 byte per
  /// subspace, a (4*dim/m)x reduction (32x at dim=64, m=8).
  kPq = 1,
};

const char* QuantizationName(Quantization q);

/// Product-quantization training knobs.
struct PqOptions {
  int64_t num_subspaces = 8;     ///< m; dim % m must be 0.
  int64_t num_centroids = 256;   ///< k per subspace, 1..256 (codes are u8).
  int64_t kmeans_iters = 10;
  /// Rows sampled (deterministically) for k-means; training on a sample
  /// keeps codebook fit O(sample) instead of O(N) at the 1M+ scale.
  int64_t train_sample = 65536;
  uint64_t seed = 47;
};

/// A trained quantizer: everything needed to encode rows to codes and to
/// build per-query ADC lookup tables (store/adc.h). Value type with a
/// self-describing binary blob (SDEACBK1) embedded in the store manifest.
///
/// Training is deterministic for a fixed seed and independent of thread
/// count: int8 scales come from a serial per-dimension max-abs pass, and
/// PQ centroids from core::KMeansRows (Euclidean mode), whose assignment
/// pass is row-sharded with ties broken to the lowest centroid index.
class Codebook {
 public:
  Codebook() = default;

  /// Per-dimension symmetric int8 scales over `rows` ([n, d]):
  /// scale[j] = max_i |rows[i,j]| / 127 (1.0 for all-zero dimensions, so
  /// encode never divides by zero). Works for n == 0 (all scales 1).
  static Codebook TrainInt8(const Tensor& rows);

  /// PQ codebooks over `rows` ([n, d]) via Euclidean k-means per subspace
  /// on a deterministic sample. Rejects dim % num_subspaces != 0,
  /// num_centroids outside [1, 256], or n == 0. The effective number of
  /// centroids is clamped to the sample size (codes stay valid).
  static Result<Codebook> TrainPq(const Tensor& rows,
                                  const PqOptions& options);

  Quantization kind() const { return kind_; }
  int64_t dim() const { return dim_; }
  /// Bytes per encoded row: dim (int8) or num_subspaces (PQ).
  int64_t code_bytes() const;

  /// Int8 only: the dim() per-dimension scales (LSB sizes).
  const std::vector<float>& scales() const { return scales_; }

  /// PQ only.
  int64_t pq_subspaces() const { return pq_m_; }
  int64_t pq_centroids() const { return pq_k_; }
  int64_t pq_subdim() const { return pq_m_ > 0 ? dim_ / pq_m_ : 0; }
  /// [pq_subspaces * pq_centroids, pq_subdim], subspace-major: the
  /// centroid c of subspace s is row s * pq_centroids + c.
  const Tensor& centroids() const { return centroids_; }

  /// Encodes `n` contiguous rows (row-major, stride dim()) into
  /// n * code_bytes() bytes. Row-sharded across threads; deterministic
  /// for every thread count (each row writes only its own slot, int8
  /// rounding is half-away-from-zero, PQ assignment ties break to the
  /// lowest centroid index).
  std::vector<uint8_t> EncodeRows(const float* rows, int64_t n) const;

  /// Reconstructs one row from its code (tests and diagnostics; the query
  /// path never decodes — it scores codes directly via ADC).
  void DecodeRow(const uint8_t* code, float* out) const;

  /// SDEACBK1 blob. Decode is robust against arbitrary bytes: malformed
  /// input returns InvalidArgument, never a crash or an unbounded
  /// allocation (fuzzed in tests/fuzz_store_test.cc).
  std::string Encode() const;
  static Result<Codebook> Decode(const std::string& blob);

 private:
  Quantization kind_ = Quantization::kInt8;
  int64_t dim_ = 0;
  std::vector<float> scales_;  // int8: dim_ entries.
  int64_t pq_m_ = 0;           // PQ: subspaces.
  int64_t pq_k_ = 0;           // PQ: centroids per subspace.
  Tensor centroids_;           // PQ: [pq_m_ * pq_k_, dim_ / pq_m_].
};

}  // namespace sdea::store

#endif  // SDEA_STORE_QUANTIZER_H_
