#ifndef SDEA_STORE_ADC_H_
#define SDEA_STORE_ADC_H_

#include <cstdint>

#include "store/quantizer.h"

namespace sdea::store {

/// Asymmetric distance computation: the query stays full-precision, the
/// database rows stay compressed, and the scan scores codes directly —
/// no row is ever decompressed. Both scans dispatch like the tensor
/// kernels do:
///
///   - kExact mode accumulates in double, ascending, rounded to float
///     once per row — bitwise identical on every machine and SIMD level
///     (matching kernels::DotExact's contract).
///   - kFast mode accumulates in float; the int8 scan additionally
///     dispatches on tmath::ActiveSimdLevel() to an AVX2 TU whose fixed
///     reduction tree differs from scalar by O(d*eps), same as DotFast.
///     The PQ scan's AVX2 path vectorizes ACROSS rows (one lane per row,
///     subspaces ascending per lane), so it is bitwise identical to the
///     scalar fast path.
///
/// Like the kernels, the scans are serial over their row range; callers
/// shard rows across threads for batch workloads.

/// Folds the per-dimension int8 scales into the query:
/// q_scaled[j] = q[j] * scales[j]. After this, the ADC score
/// sum_j q_scaled[j] * code[i][j] equals the dot product of q with the
/// dequantized row exactly (the scale multiplication is associated onto
/// the query side once, not per row).
void Int8PrepareQuery(const float* q, const float* scales, int64_t d,
                      float* q_scaled);

/// out[i] = sum_j q_scaled[j] * (int8)codes[i*d + j] for i in [0, n).
void AdcScanInt8(const uint8_t* codes, int64_t n, int64_t d,
                 const float* q_scaled, float* out);

/// Per-query PQ lookup table: lut[s*k + c] = ScoreDot of the query's
/// s-th subvector with centroid c of subspace s. Goes through
/// kernels::ScoreDot, so the table inherits the active kernel mode.
/// `lut` must hold pq_subspaces * pq_centroids floats; `codebook` must be
/// a PQ codebook.
void PqBuildLut(const float* q, const Codebook& codebook, float* lut);

/// out[i] = sum_s lut[s*k + codes[i*m + s]] for i in [0, n): m table
/// lookups and adds per row, independent of dim.
void AdcScanPq(const uint8_t* codes, int64_t n, int64_t m, int64_t k,
               const float* lut, float* out);

namespace internal {

/// AVX2 TU entry points (store/adc_avx2.cc); only called when runtime
/// dispatch confirmed AVX2+FMA support. Fast-mode contracts above.
void AdcScanInt8Avx2(const uint8_t* codes, int64_t n, int64_t d,
                     const float* q_scaled, float* out);
void AdcScanPqAvx2(const uint8_t* codes, int64_t n, int64_t m, int64_t k,
                   const float* lut, float* out);

}  // namespace internal

}  // namespace sdea::store

#endif  // SDEA_STORE_ADC_H_
