#ifndef SDEA_EVAL_CSV_H_
#define SDEA_EVAL_CSV_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "eval/metrics.h"

namespace sdea::eval {

/// One experiment record: a (method, dataset) cell with its metrics.
struct ResultRecord {
  std::string method;
  std::string dataset;
  RankingMetrics metrics;
  double seconds = 0.0;
};

/// Escapes a CSV field per RFC 4180 (quotes fields containing comma,
/// quote, or newline).
std::string CsvEscape(const std::string& field);

/// Renders records as CSV with the header
/// `method,dataset,hits_at_1,hits_at_10,mrr,num_queries,seconds`.
std::string ResultsToCsv(const std::vector<ResultRecord>& records);

/// Writes ResultsToCsv to a file.
Status WriteResultsCsv(const std::vector<ResultRecord>& records,
                       const std::string& path);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_CSV_H_
