#ifndef SDEA_EVAL_CSV_H_
#define SDEA_EVAL_CSV_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "eval/metrics.h"

namespace sdea::eval {

/// One experiment record: a (method, dataset) cell with its metrics.
struct ResultRecord {
  std::string method;
  std::string dataset;
  RankingMetrics metrics;
  double seconds = 0.0;
};

/// Escapes a CSV field per RFC 4180 (quotes fields containing comma,
/// quote, or newline).
std::string CsvEscape(const std::string& field);

/// Renders records as CSV with the header
/// `method,dataset,hits_at_1,hits_at_10,mrr,num_queries,num_invalid,seconds`.
/// num_invalid surfaces the queries EvaluateFromScores dropped for
/// out-of-range gold — previously they silently vanished from the file,
/// making a run over a broken gold mapping look like a clean smaller run.
std::string ResultsToCsv(const std::vector<ResultRecord>& records);

/// Writes ResultsToCsv to a file.
Status WriteResultsCsv(const std::vector<ResultRecord>& records,
                       const std::string& path);

/// One decision-level experiment record (dangling-aware evaluation).
struct DecisionRecord {
  std::string method;
  std::string dataset;
  DecisionMetrics metrics;
};

/// Renders decision records as CSV with the header
/// `method,dataset,precision,recall,f1,abstain_rate,matchable,dangling,
/// correct,mismatched,missed,abstain_correct,forced_on_dangling`.
std::string DecisionsToCsv(const std::vector<DecisionRecord>& records);

/// Writes DecisionsToCsv to a file (atomic, like WriteResultsCsv).
Status WriteDecisionsCsv(const std::vector<DecisionRecord>& records,
                         const std::string& path);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_CSV_H_
