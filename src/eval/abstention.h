#ifndef SDEA_EVAL_ABSTENTION_H_
#define SDEA_EVAL_ABSTENTION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "tensor/tensor.h"

namespace sdea::eval {

/// A calibrated "no match" decision rule: a proposed match (source i ->
/// target j) is *accepted* only when its absolute similarity clears
/// `min_similarity` AND its score gap over the best alternative target
/// clears `min_margin`; otherwise the source abstains. Both comparisons are
/// written so a NaN score fails them — a zero-norm or diverged embedding
/// row can never be force-matched through the threshold.
///
/// Thresholds are fit on dev data with CalibrateAbstainThreshold; a
/// default-constructed (disabled) threshold accepts everything, which is
/// exactly the pre-calibration forced-matching behavior.
struct AbstainThreshold {
  /// Absolute cosine-similarity floor for accepting a match.
  float min_similarity = -std::numeric_limits<float>::infinity();
  /// Required gap between the accepted target's score and the best
  /// alternative target's score (top1 - top2 when the match is the row
  /// argmax). 0 disables the margin criterion.
  float min_margin = 0.0f;
  /// Disabled thresholds accept every proposed match.
  bool enabled = false;
  /// F1 the calibration achieved on its dev data (diagnostics only).
  double dev_f1 = 0.0;

  /// True when a match with absolute score `score` and margin `margin`
  /// over the runner-up passes the rule. NaN in either input fails.
  bool Accepts(float score, float margin) const {
    if (!enabled) return true;
    return score >= min_similarity && margin >= min_margin;
  }

  std::string DebugString() const;
};

struct CalibrationOptions {
  /// Fallback used when the dev gold contains no kGoldDangling labels (so
  /// F1 over dev decisions cannot see any benefit from abstaining): the
  /// absolute threshold is placed at the score quantile that keeps this
  /// fraction of *correctly ranked* dev matches accepted. With dangling
  /// labels present this knob is unused — the sweep maximizes F1 directly.
  double fallback_keep_fraction = 0.95;

  /// Expected fraction of dangling queries in deployment traffic, in
  /// [0, 1]. Dev sets are rarely mixed like deployment — a handful of
  /// held-out seed pairs plus every labeled dangling source is the common
  /// shape — and unweighted F1 on a skewed dev tunes the threshold for the
  /// wrong class balance (a dangling-heavy dev picks a floor so strict it
  /// guts recall on matchable-heavy traffic). When set >= 0, dev rows are
  /// importance-weighted so dangling rows carry this fraction of the total
  /// mass and matchable rows the rest, and the sweep maximizes the
  /// weighted F1. Negative (the default) scores dev rows unweighted.
  double dangling_prior = -1.0;
};

/// Fits an abstain threshold on dev data: `dev_scores` is [N, M] similarity
/// rows for N dev sources over the full target space, `dev_gold[i]` is the
/// true target index, kGoldDangling for a labeled dangling dev source, or
/// kGoldSkip. The calibration sweeps every observed top-1 score (absolute
/// criterion) and every observed top1-top2 gap (margin criterion) as a
/// candidate threshold, scores each by the F1 of the induced greedy
/// decisions on the dev set, and keeps the best; ties prefer the laxer
/// threshold (fewer abstentions). Deterministic for fixed inputs.
///
/// Degenerate inputs (no rows, M == 0, all gold kGoldSkip) return a
/// disabled threshold.
AbstainThreshold CalibrateAbstainThreshold(
    const Tensor& dev_scores, const std::vector<int64_t>& dev_gold,
    const CalibrationOptions& options = {});

/// Applies `threshold` to a match vector over `scores` [N, M]: every
/// match[i] >= 0 whose score/margin fails the rule is rewritten to -1
/// (unmatched). The margin for source i compares scores(i, match[i])
/// against the best *other* target in row i. Returns the number of matches
/// rewritten to abstentions.
int64_t ApplyAbstainThreshold(const Tensor& scores,
                              const AbstainThreshold& threshold,
                              std::vector<int64_t>* match);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_ABSTENTION_H_
