#ifndef SDEA_EVAL_TABLE_PRINTER_H_
#define SDEA_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace sdea::eval {

/// Renders rows of string cells as a fixed-width console table with a header
/// rule, in the style of the paper's result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// The formatted table.
  std::string ToString() const;

  /// Writes the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a metric percentage like the paper's tables ("87.0").
std::string FormatPercent(double value);

/// Formats an MRR value ("0.91").
std::string FormatMrr(double value);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_TABLE_PRINTER_H_
