#include "eval/metrics.h"

#include "base/check.h"
#include "base/threadpool.h"
#include "obs/trace.h"

namespace sdea::eval {
namespace {

// Normalized copies so cosine similarity reduces to a dot product.
Tensor NormalizedCopy(const Tensor& m) {
  Tensor out = m;
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

// Rank (1-based) of gold among all targets for one source row, computed by
// counting strictly-better scores (ties resolved pessimistically: equal
// scores ahead of gold count as better, so reported metrics never benefit
// from ties).
int64_t RankOfGold(const float* scores, int64_t m, int64_t gold) {
  const float gold_score = scores[gold];
  int64_t better = 0;
  for (int64_t j = 0; j < m; ++j) {
    if (j != gold && scores[j] >= gold_score) ++better;
  }
  return better + 1;
}

// Gold rank per query row (0 where gold[i] is a negative sentinel, -1
// where gold[i] >= m — a degenerate gold entry is reported, never fatal:
// one bad row in a sweep must not abort the whole harness), computed with
// one query per parallel-for index. Each query writes only its own slot
// and the O(m) rank scan is order-identical to the serial loop, so the
// result — and every reduction over it done serially afterwards — is
// bitwise-identical for any thread count.
std::vector<int64_t> RanksFromScores(const Tensor& scores,
                                     const std::vector<int64_t>& gold) {
  SDEA_CHECK_EQ(scores.rank(), 2);
  const int64_t n = scores.dim(0), m = scores.dim(1);
  SDEA_CHECK_EQ(static_cast<int64_t>(gold.size()), n);
  std::vector<int64_t> ranks(static_cast<size_t>(n), 0);
  base::ParallelFor(n, base::GrainForWork(n, m),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        const int64_t g = gold[static_cast<size_t>(i)];
                        if (g < 0) continue;
                        if (g >= m) {
                          ranks[static_cast<size_t>(i)] = -1;
                          continue;
                        }
                        ranks[static_cast<size_t>(i)] =
                            RankOfGold(scores.data() + i * m, m, g);
                      }
                    });
  return ranks;
}

}  // namespace

RankingMetrics EvaluateFromScores(const Tensor& scores,
                                  const std::vector<int64_t>& gold) {
  obs::TraceSpan span("eval/from_scores");
  const std::vector<int64_t> ranks = RanksFromScores(scores, gold);
  RankingMetrics out;
  double mrr_sum = 0.0;
  int64_t hit1 = 0, hit10 = 0;
  // Serial reduction in row order keeps the double sum deterministic.
  for (size_t i = 0; i < ranks.size(); ++i) {
    if (gold[i] < 0) continue;
    const int64_t rank = ranks[i];
    if (rank < 0) {
      ++out.num_invalid;
      continue;
    }
    ++out.num_queries;
    if (rank <= 1) ++hit1;
    if (rank <= 10) ++hit10;
    mrr_sum += 1.0 / static_cast<double>(rank);
  }
  if (out.num_queries > 0) {
    out.hits_at_1 = 100.0 * hit1 / out.num_queries;
    out.hits_at_10 = 100.0 * hit10 / out.num_queries;
    out.mrr = mrr_sum / out.num_queries;
  }
  return out;
}

DecisionMetrics EvaluateDecisions(const std::vector<int64_t>& predicted,
                                  const std::vector<int64_t>& gold) {
  SDEA_CHECK_EQ(predicted.size(), gold.size());
  DecisionMetrics out;
  for (size_t i = 0; i < gold.size(); ++i) {
    const int64_t g = gold[i];
    const bool abstained = predicted[i] < 0;
    if (g >= 0) {
      ++out.matchable;
      if (abstained) {
        ++out.missed;
      } else if (predicted[i] == g) {
        ++out.correct;
      } else {
        ++out.mismatched;
      }
    } else if (g == kGoldDangling) {
      ++out.dangling;
      if (abstained) {
        ++out.abstain_correct;
      } else {
        ++out.forced_on_dangling;
      }
    }
    // kGoldSkip (and any other negative) contributes nothing.
  }
  const int64_t predicted_total = out.predicted_matches();
  if (predicted_total > 0) {
    out.precision =
        static_cast<double>(out.correct) / static_cast<double>(predicted_total);
  }
  if (out.matchable > 0) {
    out.recall =
        static_cast<double>(out.correct) / static_cast<double>(out.matchable);
  }
  if (out.precision + out.recall > 0.0) {
    out.f1 =
        2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  if (out.num_queries() > 0) {
    out.abstain_rate =
        static_cast<double>(out.missed + out.abstain_correct) /
        static_cast<double>(out.num_queries());
  }
  return out;
}

RankingMetrics EvaluateAlignment(const Tensor& src, const Tensor& tgt,
                                 const std::vector<int64_t>& gold) {
  obs::TraceSpan span("eval/alignment");
  const Tensor s = NormalizedCopy(src);
  const Tensor t = NormalizedCopy(tgt);
  return EvaluateFromScores(tmath::MatmulTransposeB(s, t), gold);
}

std::vector<int64_t> GoldRanks(const Tensor& src, const Tensor& tgt,
                               const std::vector<int64_t>& gold) {
  const Tensor s = NormalizedCopy(src);
  const Tensor t = NormalizedCopy(tgt);
  return RanksFromScores(tmath::MatmulTransposeB(s, t), gold);
}

std::vector<RankingMetrics> EvaluateByDegree(
    const Tensor& src, const Tensor& tgt, const std::vector<int64_t>& gold,
    const std::vector<int64_t>& degrees,
    const std::vector<int64_t>& bucket_upper) {
  SDEA_CHECK_EQ(gold.size(), degrees.size());
  const std::vector<int64_t> ranks = GoldRanks(src, tgt, gold);
  const size_t num_buckets = bucket_upper.size() + 1;
  std::vector<RankingMetrics> out(num_buckets);
  std::vector<double> mrr_sum(num_buckets, 0.0);
  std::vector<int64_t> hit1(num_buckets, 0), hit10(num_buckets, 0);
  for (size_t i = 0; i < gold.size(); ++i) {
    if (gold[i] < 0) continue;
    size_t b = bucket_upper.size();
    for (size_t k = 0; k < bucket_upper.size(); ++k) {
      if (degrees[i] <= bucket_upper[k]) {
        b = k;
        break;
      }
    }
    if (ranks[i] < 0) {
      ++out[b].num_invalid;
      continue;
    }
    ++out[b].num_queries;
    if (ranks[i] <= 1) ++hit1[b];
    if (ranks[i] <= 10) ++hit10[b];
    mrr_sum[b] += 1.0 / static_cast<double>(ranks[i]);
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    if (out[b].num_queries == 0) continue;
    out[b].hits_at_1 = 100.0 * hit1[b] / out[b].num_queries;
    out[b].hits_at_10 = 100.0 * hit10[b] / out[b].num_queries;
    out[b].mrr = mrr_sum[b] / out[b].num_queries;
  }
  return out;
}

}  // namespace sdea::eval
