#include "eval/abstention.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/strings.h"

namespace sdea::eval {
namespace {

// One dev row reduced to what the sweep needs: the best score, the gap to
// the runner-up, and which decision outcome accepting it would produce.
struct DevRow {
  float top1 = 0.0f;
  float margin = 0.0f;
  double weight = 1.0;    // Importance weight (dangling_prior reweighting).
  bool finite = false;    // NaN top1 rows abstain under any enabled rule.
  bool correct = false;   // Matchable and argmax == gold.
  bool dangling = false;  // kGoldDangling row.
};

// F1 of the greedy dev decisions when exactly the rows in `accepted` are
// matched (all others abstain). Arguments are (possibly weighted) masses.
double F1OfCounts(double tp, double predicted, double matchable) {
  if (predicted <= 0.0 || matchable <= 0.0) return 0.0;
  const double precision = tp / predicted;
  const double recall = tp / matchable;
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

// Sweeps one scalar key (top1 score or margin) over its observed values:
// rows are accepted while key >= threshold, so sorting by the key
// descending and cutting at every distinct-value boundary enumerates every
// distinct decision rule the key can induce. Returns the best (threshold,
// f1); ties prefer the laxer threshold (the longer accepted prefix).
struct SweepResult {
  float threshold = -std::numeric_limits<float>::infinity();
  double f1 = 0.0;
};

template <typename KeyFn>
SweepResult SweepKey(const std::vector<DevRow>& rows, double matchable,
                     KeyFn key) {
  std::vector<size_t> order;
  order.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].finite) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const float ka = key(rows[a]), kb = key(rows[b]);
    if (ka != kb) return ka > kb;
    return a < b;
  });
  SweepResult best;  // Start from "accept nothing": f1 = 0.
  best.threshold = std::numeric_limits<float>::infinity();
  double tp = 0.0, predicted = 0.0;
  for (size_t i = 0; i < order.size(); ++i) {
    const DevRow& r = rows[order[i]];
    predicted += r.weight;
    if (r.correct) tp += r.weight;
    // Only cut at distinct-value boundaries: a threshold equal to this key
    // accepts every row tied with it.
    if (i + 1 < order.size() && key(rows[order[i + 1]]) == key(r)) continue;
    const double f1 = F1OfCounts(tp, predicted, matchable);
    if (f1 > best.f1 ||
        (f1 == best.f1 && key(r) < best.threshold)) {
      best.f1 = f1;
      best.threshold = key(r);
    }
  }
  return best;
}

}  // namespace

std::string AbstainThreshold::DebugString() const {
  if (!enabled) return "AbstainThreshold{disabled}";
  return StrFormat("AbstainThreshold{min_similarity=%.4f, min_margin=%.4f, "
                   "dev_f1=%.4f}",
                   min_similarity, min_margin, dev_f1);
}

AbstainThreshold CalibrateAbstainThreshold(const Tensor& dev_scores,
                                           const std::vector<int64_t>& dev_gold,
                                           const CalibrationOptions& options) {
  SDEA_CHECK_EQ(dev_scores.rank(), 2);
  const int64_t n = dev_scores.dim(0), m = dev_scores.dim(1);
  SDEA_CHECK_EQ(static_cast<int64_t>(dev_gold.size()), n);

  AbstainThreshold out;
  if (n == 0 || m == 0) return out;  // Nothing to calibrate on.

  std::vector<DevRow> rows;
  rows.reserve(static_cast<size_t>(n));
  int64_t matchable = 0, dangling = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = dev_gold[static_cast<size_t>(i)];
    if (g == kGoldSkip || g >= m) continue;  // Skip / degenerate gold.
    const float* row = dev_scores.data() + i * m;
    int64_t arg = 0;
    for (int64_t j = 1; j < m; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    float top2 = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < m; ++j) {
      if (j != arg && row[j] > top2) top2 = row[j];
    }
    DevRow r;
    r.top1 = row[arg];
    r.finite = std::isfinite(r.top1);
    // A one-column row has no runner-up; its margin never constrains.
    r.margin = (m > 1 && r.finite)
                   ? r.top1 - top2
                   : std::numeric_limits<float>::infinity();
    r.dangling = (g == kGoldDangling);
    r.correct = !r.dangling && arg == g;
    if (r.dangling) {
      ++dangling;
    } else {
      ++matchable;
    }
    rows.push_back(r);
  }
  if (rows.empty() || matchable == 0) return out;

  if (dangling == 0) {
    // No labeled dangling dev sources: F1 cannot see the cost of forced
    // matches on dangling queries, so instead of the sweep we place the
    // floor at the score quantile keeping `fallback_keep_fraction` of the
    // correctly ranked dev matches.
    std::vector<float> correct_scores;
    for (const DevRow& r : rows) {
      if (r.correct && r.finite) correct_scores.push_back(r.top1);
    }
    if (correct_scores.empty()) return out;
    std::sort(correct_scores.begin(), correct_scores.end());
    const double drop =
        std::clamp(1.0 - options.fallback_keep_fraction, 0.0, 1.0);
    size_t idx = static_cast<size_t>(drop * (correct_scores.size() - 1));
    out.min_similarity = correct_scores[idx];
    out.min_margin = 0.0f;
    out.enabled = true;
    double tp = 0.0, predicted = 0.0;
    for (const DevRow& r : rows) {
      if (!out.Accepts(r.top1, r.margin)) continue;
      predicted += 1.0;
      if (r.correct) tp += 1.0;
    }
    out.dev_f1 = F1OfCounts(tp, predicted, static_cast<double>(matchable));
    return out;
  }

  // Reweight the dev rows to the deployment class balance when the caller
  // declared one: each class's rows share its prior mass equally, so a
  // dangling-heavy dev no longer drags the sweep toward thresholds that
  // would gut recall on matchable-heavy traffic.
  double matchable_mass = static_cast<double>(matchable);
  if (options.dangling_prior >= 0.0) {
    const double p = std::min(options.dangling_prior, 1.0);
    const double w_match = (1.0 - p) / static_cast<double>(matchable);
    const double w_dangle = p / static_cast<double>(dangling);
    for (DevRow& r : rows) r.weight = r.dangling ? w_dangle : w_match;
    matchable_mass = 1.0 - p;
  }

  const SweepResult by_score =
      SweepKey(rows, matchable_mass, [](const DevRow& r) { return r.top1; });
  const SweepResult by_margin =
      SweepKey(rows, matchable_mass, [](const DevRow& r) { return r.margin; });

  out.enabled = true;
  if (by_margin.f1 > by_score.f1) {
    out.min_margin = by_margin.threshold;
    out.dev_f1 = by_margin.f1;
  } else {
    out.min_similarity = by_score.threshold;
    out.dev_f1 = by_score.f1;
  }
  return out;
}

int64_t ApplyAbstainThreshold(const Tensor& scores,
                              const AbstainThreshold& threshold,
                              std::vector<int64_t>* match) {
  if (!threshold.enabled) return 0;
  SDEA_CHECK_EQ(scores.rank(), 2);
  const int64_t n = scores.dim(0), m = scores.dim(1);
  SDEA_CHECK_EQ(static_cast<int64_t>(match->size()), n);
  int64_t abstained = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j = (*match)[static_cast<size_t>(i)];
    if (j < 0) continue;
    SDEA_CHECK_LT(j, m);
    const float* row = scores.data() + i * m;
    const float score = row[j];
    float best_other = -std::numeric_limits<float>::infinity();
    for (int64_t k = 0; k < m; ++k) {
      if (k != j && row[k] > best_other) best_other = row[k];
    }
    // With no competitor the margin criterion never constrains. A stable-
    // matching assignment need not be the row argmax, so the margin can be
    // negative — the calibrated margin rule then rejects it.
    const float margin = (m > 1) ? score - best_other
                                 : std::numeric_limits<float>::infinity();
    if (!threshold.Accepts(score, margin)) {
      (*match)[static_cast<size_t>(i)] = -1;
      ++abstained;
    }
  }
  return abstained;
}

}  // namespace sdea::eval
