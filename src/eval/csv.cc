#include "eval/csv.h"

#include "base/fileio.h"
#include "base/strings.h"

namespace sdea::eval {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string ResultsToCsv(const std::vector<ResultRecord>& records) {
  std::string out =
      "method,dataset,hits_at_1,hits_at_10,mrr,num_queries,num_invalid,"
      "seconds\n";
  for (const ResultRecord& r : records) {
    out += CsvEscape(r.method);
    out += ',';
    out += CsvEscape(r.dataset);
    out += StrFormat(",%.4f,%.4f,%.6f,%lld,%lld,%.3f\n",
                     r.metrics.hits_at_1, r.metrics.hits_at_10,
                     r.metrics.mrr,
                     static_cast<long long>(r.metrics.num_queries),
                     static_cast<long long>(r.metrics.num_invalid),
                     r.seconds);
  }
  return out;
}

Status WriteResultsCsv(const std::vector<ResultRecord>& records,
                       const std::string& path) {
  // Atomic so a crash mid-write can't leave a truncated results file that
  // a later aggregation step half-parses.
  return WriteStringToFileAtomic(path, ResultsToCsv(records));
}

std::string DecisionsToCsv(const std::vector<DecisionRecord>& records) {
  std::string out =
      "method,dataset,precision,recall,f1,abstain_rate,matchable,dangling,"
      "correct,mismatched,missed,abstain_correct,forced_on_dangling\n";
  for (const DecisionRecord& r : records) {
    out += CsvEscape(r.method);
    out += ',';
    out += CsvEscape(r.dataset);
    out += StrFormat(",%.4f,%.4f,%.4f,%.4f,%lld,%lld,%lld,%lld,%lld,%lld,"
                     "%lld\n",
                     r.metrics.precision, r.metrics.recall, r.metrics.f1,
                     r.metrics.abstain_rate,
                     static_cast<long long>(r.metrics.matchable),
                     static_cast<long long>(r.metrics.dangling),
                     static_cast<long long>(r.metrics.correct),
                     static_cast<long long>(r.metrics.mismatched),
                     static_cast<long long>(r.metrics.missed),
                     static_cast<long long>(r.metrics.abstain_correct),
                     static_cast<long long>(r.metrics.forced_on_dangling));
  }
  return out;
}

Status WriteDecisionsCsv(const std::vector<DecisionRecord>& records,
                         const std::string& path) {
  return WriteStringToFileAtomic(path, DecisionsToCsv(records));
}

}  // namespace sdea::eval
