#include "eval/csv.h"

#include "base/fileio.h"
#include "base/strings.h"

namespace sdea::eval {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string ResultsToCsv(const std::vector<ResultRecord>& records) {
  std::string out =
      "method,dataset,hits_at_1,hits_at_10,mrr,num_queries,seconds\n";
  for (const ResultRecord& r : records) {
    out += CsvEscape(r.method);
    out += ',';
    out += CsvEscape(r.dataset);
    out += StrFormat(",%.4f,%.4f,%.6f,%lld,%.3f\n", r.metrics.hits_at_1,
                     r.metrics.hits_at_10, r.metrics.mrr,
                     static_cast<long long>(r.metrics.num_queries),
                     r.seconds);
  }
  return out;
}

Status WriteResultsCsv(const std::vector<ResultRecord>& records,
                       const std::string& path) {
  // Atomic so a crash mid-write can't leave a truncated results file that
  // a later aggregation step half-parses.
  return WriteStringToFileAtomic(path, ResultsToCsv(records));
}

}  // namespace sdea::eval
