#include "eval/table_printer.h"

#include <cstdio>

#include "base/check.h"
#include "base/strings.h"

namespace sdea::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SDEA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string rule = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '+';
  }
  rule += '\n';
  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatPercent(double value) { return StrFormat("%.1f", value); }

std::string FormatMrr(double value) { return StrFormat("%.2f", value); }

}  // namespace sdea::eval
