#ifndef SDEA_EVAL_METRICS_H_
#define SDEA_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::eval {

// ---- Gold sentinel semantics -----------------------------------------------
// A gold vector entry is either a valid target row index (>= 0) or one of
// two *distinct* negative sentinels. Historically -1 meant "skip this
// query" everywhere, which made it impossible to represent the adversarial
// regime the critical-assessment papers study (entities with no counterpart
// at all). The two meanings are now separate:

/// gold[i] = kGoldSkip: source i is excluded from evaluation entirely
/// (not a query; contributes to no metric).
inline constexpr int64_t kGoldSkip = -1;

/// gold[i] = kGoldDangling: source i is a *query* whose true answer is
/// "no match" — the entity has no counterpart in the target KG. Ranking
/// metrics (Hits@k/MRR) skip it (there is no gold rank), but decision
/// metrics score it: the correct decision is to abstain.
inline constexpr int64_t kGoldDangling = -2;

/// The paper's evaluation metrics (Section V-A2): Hits@1, Hits@10, and mean
/// reciprocal rank, as percentages / [0,1] respectively.
struct RankingMetrics {
  double hits_at_1 = 0.0;   ///< Percent.
  double hits_at_10 = 0.0;  ///< Percent.
  double mrr = 0.0;         ///< [0, 1].
  int64_t num_queries = 0;
  /// Queries whose gold index was out of range for the target set (gold >=
  /// M, including every matchable query when M == 0). They contribute to no
  /// ranking metric — a degenerate input is reported, not crashed on.
  int64_t num_invalid = 0;
};

/// Decision-level quality of an alignment under the open-world (dangling)
/// regime: each source is either matched to a target (predicted[i] >= 0) or
/// abstained on (predicted[i] < 0), and the gold is a target index,
/// kGoldDangling, or kGoldSkip. This is the precision/recall/F1 view the
/// critical-assessment papers (arxiv 2010.16314, 2205.08777) argue must
/// accompany Hits@k once the 1-to-1 assumption breaks.
struct DecisionMetrics {
  // ---- Query population ----
  int64_t matchable = 0;  ///< Queries with a real counterpart (gold >= 0).
  int64_t dangling = 0;   ///< Queries with no counterpart (kGoldDangling).

  // ---- Outcome counts ----
  int64_t correct = 0;            ///< Matchable, predicted the gold target.
  int64_t mismatched = 0;         ///< Matchable, predicted a wrong target.
  int64_t missed = 0;             ///< Matchable, abstained (abstain-wrong).
  int64_t abstain_correct = 0;    ///< Dangling, abstained.
  int64_t forced_on_dangling = 0; ///< Dangling, but a target was predicted.

  // ---- Derived ----
  double precision = 0.0;  ///< correct / all predicted matches, [0,1].
  double recall = 0.0;     ///< correct / matchable, [0,1].
  double f1 = 0.0;         ///< Harmonic mean of the two, [0,1].
  /// Fraction of all queries (matchable + dangling) abstained on.
  double abstain_rate = 0.0;

  int64_t predicted_matches() const {
    return correct + mismatched + forced_on_dangling;
  }
  int64_t num_queries() const { return matchable + dangling; }
};

/// Scores a decision vector against dangling-aware gold. predicted[i] is a
/// target index or any negative value for "abstained / unmatched" (the
/// StableMatch -1 sentinel is accepted as-is); gold[i] is a target index,
/// kGoldDangling, or kGoldSkip. Out-of-range sizes are a caller bug
/// (checked); degenerate content (empty, all-skip) yields zeroed metrics.
DecisionMetrics EvaluateDecisions(const std::vector<int64_t>& predicted,
                                  const std::vector<int64_t>& gold);

/// Ranks every target row for each source row by cosine similarity and
/// scores against `gold` (gold[i] = index of the true target row for source
/// row i, or a negative sentinel — kGoldSkip and kGoldDangling both skip
/// the row for ranking purposes). `src` is [N, d], `tgt` is [M, d]; rows
/// need not be pre-normalized.
RankingMetrics EvaluateAlignment(const Tensor& src, const Tensor& tgt,
                                 const std::vector<int64_t>& gold);

/// As EvaluateAlignment but from a precomputed score matrix [N, M] where
/// higher means more similar. Degenerate inputs are well-defined instead of
/// fatal: gold[i] >= M (including any matchable gold when M == 0) counts
/// into num_invalid and contributes nothing else.
RankingMetrics EvaluateFromScores(const Tensor& scores,
                                  const std::vector<int64_t>& gold);

/// Per-degree-bucket metrics for the long-tail analysis (Section V-B2).
/// `bucket_upper` gives inclusive upper degree bounds (e.g. {3, 5, 10});
/// a final unbounded bucket is appended. `degrees[i]` is the relational
/// degree of source row i.
std::vector<RankingMetrics> EvaluateByDegree(
    const Tensor& src, const Tensor& tgt, const std::vector<int64_t>& gold,
    const std::vector<int64_t>& degrees,
    const std::vector<int64_t>& bucket_upper);

/// Rank of the gold target (1-based) for each source row under cosine
/// similarity; 0 where gold[i] is a negative sentinel, -1 where gold[i] is
/// out of range for the target set (degenerate input, reported not fatal).
std::vector<int64_t> GoldRanks(const Tensor& src, const Tensor& tgt,
                               const std::vector<int64_t>& gold);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_METRICS_H_
