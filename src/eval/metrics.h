#ifndef SDEA_EVAL_METRICS_H_
#define SDEA_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::eval {

/// The paper's evaluation metrics (Section V-A2): Hits@1, Hits@10, and mean
/// reciprocal rank, as percentages / [0,1] respectively.
struct RankingMetrics {
  double hits_at_1 = 0.0;   ///< Percent.
  double hits_at_10 = 0.0;  ///< Percent.
  double mrr = 0.0;         ///< [0, 1].
  int64_t num_queries = 0;
};

/// Ranks every target row for each source row by cosine similarity and
/// scores against `gold` (gold[i] = index of the true target row for source
/// row i, or -1 to skip). `src` is [N, d], `tgt` is [M, d]; rows need not be
/// pre-normalized.
RankingMetrics EvaluateAlignment(const Tensor& src, const Tensor& tgt,
                                 const std::vector<int64_t>& gold);

/// As EvaluateAlignment but from a precomputed score matrix [N, M] where
/// higher means more similar.
RankingMetrics EvaluateFromScores(const Tensor& scores,
                                  const std::vector<int64_t>& gold);

/// Per-degree-bucket metrics for the long-tail analysis (Section V-B2).
/// `bucket_upper` gives inclusive upper degree bounds (e.g. {3, 5, 10});
/// a final unbounded bucket is appended. `degrees[i]` is the relational
/// degree of source row i.
std::vector<RankingMetrics> EvaluateByDegree(
    const Tensor& src, const Tensor& tgt, const std::vector<int64_t>& gold,
    const std::vector<int64_t>& degrees,
    const std::vector<int64_t>& bucket_upper);

/// Rank of the gold target (1-based) for each source row under cosine
/// similarity; 0 where gold[i] < 0.
std::vector<int64_t> GoldRanks(const Tensor& src, const Tensor& tgt,
                               const std::vector<int64_t>& gold);

}  // namespace sdea::eval

#endif  // SDEA_EVAL_METRICS_H_
