#ifndef SDEA_BASE_THREADPOOL_H_
#define SDEA_BASE_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdea::base {

/// A fixed-size worker pool with a chunked parallel-for. One pool is built
/// once and reused across calls; workers sleep between jobs.
///
/// Determinism contract: `ParallelFor(n, grain, fn)` partitions [0, n) into
/// contiguous chunks of at most `grain` indices and calls `fn(begin, end)`
/// once per chunk, on an unspecified thread. Which thread runs which chunk
/// is scheduling-dependent, but the chunk boundaries themselves are a pure
/// function of (n, grain). A caller whose `fn` (a) writes only to state
/// derived from its own [begin, end) range and (b) keeps the within-range
/// computation order identical to the serial loop therefore produces output
/// that is bitwise-identical for every thread count, including 1. All
/// parallelized kernels in this library are written against that contract,
/// and the contract is enforced by tests, not assumed.
class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `num_threads` threads total: the
  /// calling thread participates, so `num_threads - 1` workers are spawned.
  /// `num_threads` must be >= 1; 1 means every ParallelFor runs inline.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. The caller must ensure no ParallelFor is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads used by ParallelFor (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Calls `fn(begin, end)` over consecutive chunks of [0, n) of at most
  /// `grain` (>= 1) indices each and blocks until every chunk has run.
  /// Runs inline on the calling thread when the pool has one thread, when
  /// n <= grain, or when called from inside another ParallelFor (nested
  /// parallelism degrades to serial rather than deadlocking). Concurrent
  /// ParallelFor calls from distinct external threads are serialized.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool, built on first use with DefaultNumThreads().
  static ThreadPool* Global();

  /// Replaces the global pool with an `num_threads`-thread pool. Intended
  /// for tests and benchmarks; must not race with in-flight ParallelFors.
  static void SetGlobalNumThreads(int num_threads);

  /// Thread count the global pool starts with: SDEA_NUM_THREADS if set to a
  /// positive integer, else std::thread::hardware_concurrency() (min 1).
  static int DefaultNumThreads();

 private:
  void WorkerLoop();
  // Claims and runs chunks of the current job until none remain. `lock`
  // must hold `mu_` on entry and exit.
  void RunChunks(std::unique_lock<std::mutex>& lock);

  // Serializes whole ParallelFor calls from distinct external threads.
  std::mutex submit_mu_;

  // Guards all job state below plus generation_/shutdown_.
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a new job.
  std::condition_variable done_cv_;  // The submitter waits here for the end.
  const std::function<void(int64_t, int64_t)>* fn_ = nullptr;
  int64_t n_ = 0;
  int64_t grain_ = 1;
  int64_t num_chunks_ = 0;
  int64_t next_chunk_ = 0;
  int64_t done_chunks_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

/// ParallelFor on the global pool.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Suggests a grain for `items` units of `work_per_item` scalar operations
/// each, sized so one chunk amortizes scheduling overhead (~32k operations).
/// Returns a value in [1, max(items, 1)]; feeding it to ParallelFor keeps
/// small problems on the calling thread automatically.
int64_t GrainForWork(int64_t items, int64_t work_per_item);

}  // namespace sdea::base

#endif  // SDEA_BASE_THREADPOOL_H_
