#include "base/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <algorithm>

namespace sdea {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row DP, O(|a|) memory.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t cur = row[i];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

bool LooksNumeric(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digit = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

std::string EscapeTsvField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeTsvField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[i + 1]) {
      case '\\':
        out += '\\';
        ++i;
        break;
      case 't':
        out += '\t';
        ++i;
        break;
      case 'n':
        out += '\n';
        ++i;
        break;
      case 'r':
        out += '\r';
        ++i;
        break;
      default:
        out += '\\';  // Unknown escape: keep the backslash literally.
    }
  }
  return out;
}

}  // namespace sdea
