#include "base/threadpool.h"

#include <algorithm>
#include <cstdlib>

#include "base/check.h"

namespace sdea::base {
namespace {

// True on any thread currently executing inside a ParallelFor body (worker
// or submitter). Nested ParallelFor calls detect this and run inline, so a
// kernel that is itself parallelized can safely call another one.
thread_local bool t_inside_parallel_for = false;

std::mutex g_global_mu;
ThreadPool* g_global_pool = nullptr;  // Leaked on purpose (process-lifetime).

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  SDEA_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    t_inside_parallel_for = true;
    RunChunks(lock);
    t_inside_parallel_for = false;
  }
}

void ThreadPool::RunChunks(std::unique_lock<std::mutex>& lock) {
  while (next_chunk_ < num_chunks_) {
    const int64_t chunk = next_chunk_++;
    const auto* fn = fn_;
    const int64_t begin = chunk * grain_;
    const int64_t end = std::min(n_, begin + grain_);
    lock.unlock();
    (*fn)(begin, end);
    lock.lock();
    if (++done_chunks_ == num_chunks_) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  SDEA_CHECK_GE(grain, 1);
  if (workers_.empty() || n <= grain || t_inside_parallel_for) {
    fn(0, n);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  grain_ = grain;
  num_chunks_ = (n + grain - 1) / grain;
  next_chunk_ = 0;
  done_chunks_ = 0;
  ++generation_;
  work_cv_.notify_all();
  // The submitting thread works too, then waits for stragglers.
  t_inside_parallel_for = true;
  RunChunks(lock);
  t_inside_parallel_for = false;
  done_cv_.wait(lock, [&] { return done_chunks_ == num_chunks_; });
  fn_ = nullptr;
}

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = new ThreadPool(DefaultNumThreads());
  }
  return g_global_pool;
}

void ThreadPool::SetGlobalNumThreads(int num_threads) {
  SDEA_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> lock(g_global_mu);
  delete g_global_pool;
  g_global_pool = new ThreadPool(num_threads);
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("SDEA_NUM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global()->ParallelFor(n, grain, fn);
}

int64_t GrainForWork(int64_t items, int64_t work_per_item) {
  constexpr int64_t kOpsPerChunk = 1 << 15;
  const int64_t grain = kOpsPerChunk / std::max<int64_t>(1, work_per_item) + 1;
  return std::clamp<int64_t>(grain, 1, std::max<int64_t>(items, 1));
}

}  // namespace sdea::base
