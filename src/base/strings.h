#ifndef SDEA_BASE_STRINGS_H_
#define SDEA_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdea {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance between `a` and `b` (bytes).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity in [0, 1]: 1 - dist / max(len). Returns 1 for
/// two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// True if `s` parses fully as a decimal number (optionally signed, with an
/// optional fractional part).
bool LooksNumeric(std::string_view s);

/// Escapes a free-text field for tab-separated output: `\` -> `\\`,
/// tab -> `\t`, LF -> `\n`, CR -> `\r`. The result contains no field or
/// record separators, so a TSV row always round-trips with exactly its
/// written field count.
std::string EscapeTsvField(std::string_view s);

/// Inverse of EscapeTsvField. Unrecognized escape sequences (and a trailing
/// lone backslash) are kept literally, so fields written by pre-escaping
/// code pass through mostly unchanged.
std::string UnescapeTsvField(std::string_view s);

}  // namespace sdea

#endif  // SDEA_BASE_STRINGS_H_
