#ifndef SDEA_BASE_FAULT_INJECTION_H_
#define SDEA_BASE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

namespace sdea {

/// Deterministic fault-injection hook for the base/fileio primitives.
///
/// When an injector is installed (ExchangeFaultInjector), every
/// ReadFileToString / WriteStringToFile / WriteStringToFileAtomic call first
/// asks it what should happen. The injector can let the operation proceed,
/// fail it cleanly (simulating EIO / ENOSPC / a failed rename), or — for
/// writes — persist only a prefix of the contents before failing, which is
/// exactly what a crash or a full disk mid-write leaves behind. Tests use
/// this to prove that every persistence caller either recovers or returns a
/// clean Status: never a crash, never a half-written file that later loads
/// as garbage.
///
/// This is a test seam, not a production feature: the default state is "no
/// injector" and the only cost on that path is one relaxed atomic load.
class FaultInjector {
 public:
  /// The primitive file operations fileio funnels through this hook.
  /// kRename is the commit point of WriteStringToFileAtomic; kFsyncDir is
  /// the parent-directory fsync that makes the rename itself durable (a
  /// crash after rename but before the directory entry reaches disk can
  /// still lose the file — see WriteStringToFileAtomic). kMap is the
  /// open+mmap of a store shard (store/mmap_file.h), which reads file
  /// contents without going through ReadFileToString.
  enum class FileOp { kRead, kWrite, kRename, kFsyncDir, kMap };

  /// What the injector wants done with one operation.
  struct FaultAction {
    /// Fail the operation with Status::IoError.
    bool fail = false;
    /// For a failing kWrite: number of leading bytes actually persisted
    /// before the simulated failure (-1 leaves the target untouched, as if
    /// the open itself failed). Ignored for kRead/kRename.
    int64_t short_write_bytes = -1;
  };

  virtual ~FaultInjector() = default;

  /// Called once per file operation, before it runs. `path` is the final
  /// destination (for atomic writes, the real target — not the temp file).
  virtual FaultAction OnFileOp(FileOp op, const std::string& path) = 0;
};

/// Installs `injector` as the process-wide hook (nullptr uninstalls) and
/// returns the previously installed one. The caller keeps ownership; the
/// injector must outlive its installation.
FaultInjector* ExchangeFaultInjector(FaultInjector* injector);

/// The currently installed hook, or nullptr.
FaultInjector* CurrentFaultInjector();

/// RAII installation: installs in the constructor, restores the previous
/// hook in the destructor. Scopes nest.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(ExchangeFaultInjector(injector)) {}
  ~ScopedFaultInjector() { ExchangeFaultInjector(previous_); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace sdea

#endif  // SDEA_BASE_FAULT_INJECTION_H_
