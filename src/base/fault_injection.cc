#include "base/fault_injection.h"

#include <atomic>

namespace sdea {
namespace {

// Relaxed is enough: installation happens-before use in every test (the
// test thread installs, then triggers the I/O), and the production path
// only ever observes the initial nullptr.
std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

FaultInjector* ExchangeFaultInjector(FaultInjector* injector) {
  return g_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* CurrentFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace sdea
