#include "base/logging.h"

#include <cstdio>
#include <ctime>

namespace sdea {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %s\n", ts, LevelName(level), message.c_str());
}

}  // namespace sdea
