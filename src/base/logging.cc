#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "base/strings.h"

namespace sdea {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Applies SDEA_LOG_LEVEL before main() (dynamic initialization of a
// namespace-scope object), so an explicit SetLogLevel call afterwards
// always wins over the environment.
[[maybe_unused]] const bool g_env_applied = [] {
  InitLogLevelFromEnv();
  return true;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(std::string_view value, LogLevel* out) {
  const std::string v = ToLower(Trim(value));
  if (v == "debug" || v == "0") {
    *out = LogLevel::kDebug;
  } else if (v == "info" || v == "1") {
    *out = LogLevel::kInfo;
  } else if (v == "warning" || v == "warn" || v == "2") {
    *out = LogLevel::kWarning;
  } else if (v == "error" || v == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* value = std::getenv("SDEA_LOG_LEVEL");
  if (value == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(value, &level)) SetLogLevel(level);
}

uint32_t ThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s t%u %s] %s\n", ts, ThreadId(), LevelName(level),
               message.c_str());
}

}  // namespace sdea
