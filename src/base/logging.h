#ifndef SDEA_BASE_LOGGING_H_
#define SDEA_BASE_LOGGING_H_

#include <string>

namespace sdea {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes a timestamped message to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace sdea

#define SDEA_LOG_DEBUG(msg) \
  ::sdea::LogMessage(::sdea::LogLevel::kDebug, (msg))
#define SDEA_LOG_INFO(msg) ::sdea::LogMessage(::sdea::LogLevel::kInfo, (msg))
#define SDEA_LOG_WARNING(msg) \
  ::sdea::LogMessage(::sdea::LogLevel::kWarning, (msg))
#define SDEA_LOG_ERROR(msg) ::sdea::LogMessage(::sdea::LogLevel::kError, (msg))

#endif  // SDEA_BASE_LOGGING_H_
