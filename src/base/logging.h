#ifndef SDEA_BASE_LOGGING_H_
#define SDEA_BASE_LOGGING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sdea {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug", "info", "warning"/"warn", "error" (case-insensitive)
/// or a numeric level "0".."3". Returns false (leaving `out` untouched)
/// for anything else.
bool ParseLogLevel(std::string_view value, LogLevel* out);

/// Applies the SDEA_LOG_LEVEL environment variable to the global level.
/// Runs automatically before main() (static initialization), so processes
/// honour the variable without any call; exposed for tests and for
/// re-reading after a setenv. Unset or unparsable values leave the level
/// unchanged.
void InitLogLevelFromEnv();

/// A small sequential id for the calling thread (1, 2, ... in first-use
/// order). Stable for the thread's lifetime; used by the log prefix and
/// the trace exporters so interleaved trainer/server output is
/// attributable to a thread.
uint32_t ThreadId();

/// Writes "[HH:MM:SS tN LEVEL] message" to stderr if `level` passes the
/// filter, where N is ThreadId().
void LogMessage(LogLevel level, const std::string& message);

}  // namespace sdea

#define SDEA_LOG_DEBUG(msg) \
  ::sdea::LogMessage(::sdea::LogLevel::kDebug, (msg))
#define SDEA_LOG_INFO(msg) ::sdea::LogMessage(::sdea::LogLevel::kInfo, (msg))
#define SDEA_LOG_WARNING(msg) \
  ::sdea::LogMessage(::sdea::LogLevel::kWarning, (msg))
#define SDEA_LOG_ERROR(msg) ::sdea::LogMessage(::sdea::LogLevel::kError, (msg))

#endif  // SDEA_BASE_LOGGING_H_
