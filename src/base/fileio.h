#ifndef SDEA_BASE_FILEIO_H_
#define SDEA_BASE_FILEIO_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace sdea {

// All primitives here route through the FaultInjector hook in
// base/fault_injection.h when one is installed, so tests can inject read
// errors, ENOSPC-style short writes, and failed renames deterministically.

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating any existing file.
Status WriteStringToFile(const std::string& path, const std::string& contents);

/// Writes `contents` to a temp file next to `path`, then renames it over
/// `path`. POSIX rename is atomic within a filesystem, so a reader (or a
/// crash mid-write) can only ever observe the old complete file or the new
/// complete file — never a torn one. The temp name embeds the pid so two
/// processes writing the same path don't clobber each other's temp file.
Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& contents);

/// Reads a file as lines (LF or CRLF), without terminators.
Result<std::vector<std::string>> ReadLines(const std::string& path);

/// Reads a tab-separated file into rows of fields. Blank lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadTsv(const std::string& path);

/// Writes rows as a tab-separated file (atomically, via temp + rename).
Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

/// True if `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Creates `path` as a directory (one level; the parent must exist).
/// Succeeds if the directory is already there.
Status MakeDirectory(const std::string& path);

}  // namespace sdea

#endif  // SDEA_BASE_FILEIO_H_
