#include "base/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "base/fault_injection.h"
#include "base/strings.h"

namespace sdea {
namespace {

/// Consults the installed FaultInjector (if any) for `op` on `path`.
/// Returns true when the operation must fail; `*short_write_bytes` is the
/// injector's partial-persist request for writes.
bool InjectFault(FaultInjector::FileOp op, const std::string& path,
                 int64_t* short_write_bytes = nullptr) {
  FaultInjector* injector = CurrentFaultInjector();
  if (injector == nullptr) return false;
  const FaultInjector::FaultAction action = injector->OnFileOp(op, path);
  if (short_write_bytes != nullptr) {
    *short_write_bytes = action.short_write_bytes;
  }
  return action.fail;
}

/// fsyncs `path` (a regular file) by descriptor. Needed before the rename
/// in WriteStringToFileAtomic: rename only orders the *directory entry*;
/// without flushing the file's own data first, a crash can promote an
/// empty or partial inode to the final name.
bool FsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
}

/// fsyncs the directory containing `path`, making a completed rename of
/// `path` itself durable. POSIX rename is atomic but not durable: the new
/// directory entry lives in the page cache until the directory inode is
/// flushed, so a crash after rename can resurface the old file (or
/// nothing). Consults the kFsyncDir injection point so tests can simulate
/// exactly that crash window.
bool FsyncParentDir(const std::string& path) {
  if (InjectFault(FaultInjector::FileOp::kFsyncDir, path)) return false;
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  if (InjectFault(FaultInjector::FileOp::kRead, path)) {
    return Status::IoError("injected read fault: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IoError("read error: " + path);
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  int64_t short_write_bytes = -1;
  if (InjectFault(FaultInjector::FileOp::kWrite, path, &short_write_bytes)) {
    if (short_write_bytes >= 0) {
      // Simulate a crash / ENOSPC mid-write: a prefix really lands on disk.
      const size_t n = std::min(static_cast<size_t>(short_write_bytes),
                                contents.size());
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(contents.data(), 1, n, f);
        std::fclose(f);
      }
    }
    return Status::IoError("injected write fault: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::IoError("write error: " + path);
  }
  return Status::Ok();
}

Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  Status write_status = WriteStringToFile(tmp, contents);
  if (!write_status.ok()) {
    // A short write may have left a partial temp file; never leave it
    // around where a directory scan could mistake it for an artifact.
    std::remove(tmp.c_str());
    return write_status;
  }
  if (!FsyncFile(tmp)) {
    std::remove(tmp.c_str());
    return Status::IoError("fsync failed: " + tmp);
  }
  if (InjectFault(FaultInjector::FileOp::kRename, path)) {
    std::remove(tmp.c_str());
    return Status::IoError("injected rename fault: " + tmp + " -> " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  // The rename is visible but not yet durable. The renamed file is left in
  // place either way (it is complete and correct); a failed directory
  // fsync is still reported, because the caller's durability contract —
  // "when Save returns Ok the artifact survives a crash" — has not been
  // met.
  if (!FsyncParentDir(path)) {
    return Status::IoError("directory fsync failed after rename: " + path);
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= contents.size(); ++i) {
    if (i == contents.size() || contents[i] == '\n') {
      size_t end = i;
      if (end > start && contents[end - 1] == '\r') --end;
      if (i < contents.size() || end > start) {
        lines.emplace_back(contents.substr(start, end - start));
      }
      start = i + 1;
    }
  }
  return lines;
}

Result<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<std::vector<std::string>> rows;
  rows.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += Join(row, "\t");
    out += '\n';
  }
  return WriteStringToFileAtomic(path, out);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status MakeDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::Ok();
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return Status::Ok();
  }
  return Status::IoError("cannot create directory: " + path);
}

}  // namespace sdea
