#include "base/fileio.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "base/fault_injection.h"
#include "base/strings.h"

namespace sdea {
namespace {

/// Consults the installed FaultInjector (if any) for `op` on `path`.
/// Returns true when the operation must fail; `*short_write_bytes` is the
/// injector's partial-persist request for writes.
bool InjectFault(FaultInjector::FileOp op, const std::string& path,
                 int64_t* short_write_bytes = nullptr) {
  FaultInjector* injector = CurrentFaultInjector();
  if (injector == nullptr) return false;
  const FaultInjector::FaultAction action = injector->OnFileOp(op, path);
  if (short_write_bytes != nullptr) {
    *short_write_bytes = action.short_write_bytes;
  }
  return action.fail;
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  if (InjectFault(FaultInjector::FileOp::kRead, path)) {
    return Status::IoError("injected read fault: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IoError("read error: " + path);
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  int64_t short_write_bytes = -1;
  if (InjectFault(FaultInjector::FileOp::kWrite, path, &short_write_bytes)) {
    if (short_write_bytes >= 0) {
      // Simulate a crash / ENOSPC mid-write: a prefix really lands on disk.
      const size_t n = std::min(static_cast<size_t>(short_write_bytes),
                                contents.size());
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(contents.data(), 1, n, f);
        std::fclose(f);
      }
    }
    return Status::IoError("injected write fault: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::IoError("write error: " + path);
  }
  return Status::Ok();
}

Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  Status write_status = WriteStringToFile(tmp, contents);
  if (!write_status.ok()) {
    // A short write may have left a partial temp file; never leave it
    // around where a directory scan could mistake it for an artifact.
    std::remove(tmp.c_str());
    return write_status;
  }
  if (InjectFault(FaultInjector::FileOp::kRename, path)) {
    std::remove(tmp.c_str());
    return Status::IoError("injected rename fault: " + tmp + " -> " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= contents.size(); ++i) {
    if (i == contents.size() || contents[i] == '\n') {
      size_t end = i;
      if (end > start && contents[end - 1] == '\r') --end;
      if (i < contents.size() || end > start) {
        lines.emplace_back(contents.substr(start, end - start));
      }
      start = i + 1;
    }
  }
  return lines;
}

Result<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<std::vector<std::string>> rows;
  rows.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += Join(row, "\t");
    out += '\n';
  }
  return WriteStringToFileAtomic(path, out);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace sdea
