#ifndef SDEA_BASE_CHECK_H_
#define SDEA_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (invariant violations), never for recoverable conditions — those
/// return sdea::Status instead.
#define SDEA_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "SDEA_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// SDEA_CHECK with a printf-style explanation appended.
#define SDEA_CHECK_MSG(cond, ...)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "SDEA_CHECK failed at %s:%d: %s: ", __FILE__, \
                   __LINE__, #cond);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define SDEA_CHECK_EQ(a, b) SDEA_CHECK((a) == (b))
#define SDEA_CHECK_NE(a, b) SDEA_CHECK((a) != (b))
#define SDEA_CHECK_LT(a, b) SDEA_CHECK((a) < (b))
#define SDEA_CHECK_LE(a, b) SDEA_CHECK((a) <= (b))
#define SDEA_CHECK_GT(a, b) SDEA_CHECK((a) > (b))
#define SDEA_CHECK_GE(a, b) SDEA_CHECK((a) >= (b))

/// Checks that a Status-returning expression is OK; aborts otherwise.
#define SDEA_CHECK_OK(expr)                                              \
  do {                                                                   \
    ::sdea::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                     \
      std::fprintf(stderr, "SDEA_CHECK_OK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, _st.ToString().c_str());          \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // SDEA_BASE_CHECK_H_
