#ifndef SDEA_BASE_STATUS_H_
#define SDEA_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace sdea {

/// Error categories used across the library. Mirrors the common
/// database-engine convention (RocksDB/Arrow-style status objects) so that
/// fallible operations never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. The value is
/// accessed with `value()` / `operator*`, which must only be called when
/// `ok()` is true (checked in debug builds via SDEA_CHECK at call sites).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in functions returning
  /// Result<T>.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status. OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sdea

/// Propagates a non-OK Status out of the current function.
#define SDEA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::sdea::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs`.
#define SDEA_ASSIGN_OR_RETURN(lhs, expr)              \
  SDEA_ASSIGN_OR_RETURN_IMPL_(                        \
      SDEA_STATUS_CONCAT_(_result, __LINE__), lhs, expr)

#define SDEA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SDEA_STATUS_CONCAT_INNER_(a, b) a##b
#define SDEA_STATUS_CONCAT_(a, b) SDEA_STATUS_CONCAT_INNER_(a, b)

#endif  // SDEA_BASE_STATUS_H_
