#ifndef SDEA_BASE_RNG_H_
#define SDEA_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sdea {

/// The complete internal state of an Rng, as a plain serializable value.
/// Restoring a saved state reproduces the exact stream from that point, so
/// a checkpointed training run can resume bitwise-identically.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic pseudo-random number generator (xoshiro256**). Every
/// stochastic component in the library takes an explicit Rng (or seed) so
/// experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds produce unrelated
  /// streams.
  explicit Rng(uint64_t seed = 42);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean/stddev.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s > 0). Larger s
  /// means heavier skew toward small values. Uses an inverse-CDF table-free
  /// rejection method suitable for the modest n used here.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; advancing the child does not
  /// perturb this generator's stream.
  Rng Fork();

  /// Captures the full generator state (including the Box–Muller cache).
  RngState SaveState() const;

  /// Restores a state captured by SaveState.
  void LoadState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sdea

#endif  // SDEA_BASE_RNG_H_
