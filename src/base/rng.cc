#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace sdea {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  SDEA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  SDEA_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(Uniform()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  SDEA_CHECK_GT(n, 0u);
  SDEA_CHECK_GT(s, 0.0);
  if (std::abs(s - 1.0) < 1e-6) s = 1.0 + 1e-6;  // Avoid 1/(1-s) blow-up.
  // Rejection-inversion sampling (Hörmann & Derflinger). Values returned in
  // [0, n), where 0 is the most likely rank.
  const double b = std::pow(static_cast<double>(n), 1.0 - s);
  for (;;) {
    const double u = Uniform();
    const double x =
        std::pow(u * (b - 1.0) + 1.0, 1.0 / (1.0 - s));  // in [1, n]
    const uint64_t k = static_cast<uint64_t>(x);
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (Uniform() < ratio) {
      return (k >= 1 ? k - 1 : 0) % n;
    }
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SDEA_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::LoadState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace sdea
