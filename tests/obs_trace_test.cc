// obs::TraceSpan / TraceBuffer unit tests: span recording, nesting depth,
// the runtime disable switch, buffer bounding, and cross-thread ids.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.h"

namespace sdea::obs {
namespace {

// When the library is compiled with -DSDEA_OBS=OFF every span is a no-op;
// the recording tests below cannot observe anything, so they skip.
#define SKIP_IF_COMPILED_OUT()                                 \
  do {                                                         \
    if (!kCompiledIn) {                                        \
      GTEST_SKIP() << "obs compiled out (SDEA_OBS_DISABLED)";  \
    }                                                          \
  } while (0)

// Tests force the runtime switch on/off explicitly so they are
// independent of the SDEA_OBS_ENABLED environment; this fixture restores
// the entry state afterwards.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(was_enabled_); }
  bool was_enabled_ = false;
};

TEST_F(ObsTraceTest, SpanRecordsIntoGivenBuffer) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(16);
  { TraceSpan span("unit/outer", &buffer); }
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit/outer");
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GE(events[0].start_us, 0);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(ObsTraceTest, NestedSpansRecordDepthAndCompleteInnerFirst) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(16);
  {
    TraceSpan outer("unit/outer", &buffer);
    {
      TraceSpan inner("unit/inner", &buffer);
      { TraceSpan innermost("unit/innermost", &buffer); }
    }
  }
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: innermost out first.
  EXPECT_EQ(events[0].name, "unit/innermost");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "unit/inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "unit/outer");
  EXPECT_EQ(events[2].depth, 0);
  // Nesting depth unwinds fully: a fresh span is depth 0 again.
  { TraceSpan again("unit/again", &buffer); }
  EXPECT_EQ(buffer.Events().back().depth, 0);
  // The outer interval contains the inner one.
  EXPECT_LE(events[2].start_us, events[1].start_us);
  EXPECT_GE(events[2].start_us + events[2].dur_us,
            events[1].start_us + events[1].dur_us);
}

TEST_F(ObsTraceTest, DisabledSpanRecordsNothing) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(16);
  SetEnabled(false);
  { TraceSpan span("unit/ghost", &buffer); }
  EXPECT_EQ(buffer.size(), 0u);
  SetEnabled(true);
  { TraceSpan span("unit/real", &buffer); }
  EXPECT_EQ(buffer.size(), 1u);
}

TEST_F(ObsTraceTest, BufferBoundsAndCountsDrops) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("unit/span", &buffer);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(ObsTraceTest, SpansFromDifferentThreadsGetDistinctTids) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(16);
  { TraceSpan span("unit/main", &buffer); }
  std::thread other([&buffer] { TraceSpan span("unit/other", &buffer); });
  other.join();
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(ObsTraceTest, ConcurrentSpansAllLand) {
  SKIP_IF_COMPILED_OUT();
  TraceBuffer buffer(4096);
  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan outer("unit/outer", &buffer);
        TraceSpan inner("unit/inner", &buffer);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(buffer.size(), size_t{kThreads} * kPerThread * 2);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(ObsTraceTest, DefaultBufferIsSingleton) {
  EXPECT_EQ(TraceBuffer::Default(), TraceBuffer::Default());
  EXPECT_NE(TraceBuffer::Default(), nullptr);
}

TEST(ObsTraceClockTest, TraceNowMicrosIsMonotonic) {
  const int64_t a = TraceNowMicros();
  const int64_t b = TraceNowMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace sdea::obs
