#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/fileio.h"
#include "kg/knowledge_graph.h"

namespace sdea::serve {
namespace {

// A store whose rows are deterministic functions of (n, d, salt), so two
// builds with the same arguments answer queries identically.
core::EmbeddingStore MakeStore(int64_t n, int64_t d, uint64_t salt) {
  Rng rng(salt);
  Tensor embeddings = Tensor::RandomNormal({n, d}, 1.0f, &rng);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    names.push_back("e" + std::to_string(i));
  }
  auto store = core::EmbeddingStore::Create(std::move(names),
                                            std::move(embeddings));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

bool SameNeighbors(const std::vector<core::EmbeddingStore::Neighbor>& a,
                   const std::vector<core::EmbeddingStore::Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].id != b[i].id ||
        a[i].similarity != b[i].similarity) {
      return false;
    }
  }
  return true;
}

TEST(SnapshotManagerTest, StartsEmpty) {
  SnapshotManager manager;
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_FALSE(manager.has_snapshot());
  EXPECT_EQ(manager.version(), 0u);
}

TEST(SnapshotManagerTest, SwapPublishesAndVersions) {
  SnapshotManager manager;
  EXPECT_EQ(manager.Swap(MakeStore(10, 4, 1)), 1u);
  auto first = manager.Current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->store.size(), 10);

  EXPECT_EQ(manager.Swap(MakeStore(20, 4, 2)), 2u);
  auto second = manager.Current();
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(second->store.size(), 20);
  // The pinned old snapshot is untouched by the swap.
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->store.size(), 10);
  EXPECT_EQ(manager.version(), 2u);
}

TEST(SnapshotManagerTest, LoadAndSwapRoundTrips) {
  const std::string path = "/tmp/sdea_serve_snapshot_test.bin";
  const core::EmbeddingStore original = MakeStore(30, 8, 3);
  SDEA_CHECK_OK(original.Save(path));

  SnapshotManager manager;
  auto version = manager.LoadAndSwap(path, /*build_index=*/true);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  auto snap = manager.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->store.size(), 30);
  EXPECT_TRUE(snap->store.has_index());
  std::remove(path.c_str());
}

TEST(SnapshotManagerTest, LoadAndSwapOfMissingFileKeepsCurrent) {
  SnapshotManager manager;
  manager.Swap(MakeStore(10, 4, 1));
  auto result = manager.LoadAndSwap("/tmp/sdea_serve_no_such_file.bin");
  EXPECT_FALSE(result.ok());
  // Failed load leaves the published snapshot untouched.
  EXPECT_EQ(manager.version(), 1u);
  EXPECT_EQ(manager.Current()->store.size(), 10);
}

TEST(SnapshotManagerTest, SwapWithKgPinsTheGraphState) {
  kg::KnowledgeGraph graph;
  const kg::EntityId a = graph.AddEntity("a");
  const kg::EntityId b = graph.AddEntity("b");
  const kg::RelationId r = graph.AddRelation("r");
  graph.AddRelationalTriple(a, r, b);

  SnapshotManager manager;
  EXPECT_EQ(manager.SwapWithKg(MakeStore(2, 4, 1), graph.Snapshot()), 1u);
  auto snap = manager.Current();
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->has_kg());
  EXPECT_EQ(snap->kg.num_entities(), 2);
  EXPECT_EQ(snap->kg.num_relational_triples(), 1);
  EXPECT_EQ(snap->kg.entity_name(a), "a");

  // The writer keeps mutating the graph; the pinned serving snapshot still
  // answers against the graph state at publish time.
  const kg::EntityId c = graph.AddEntity("c");
  graph.AddRelationalTriple(b, r, c);
  EXPECT_EQ(snap->kg.num_entities(), 2);
  EXPECT_EQ(snap->kg.num_relational_triples(), 1);
  EXPECT_EQ(snap->kg.DegreeOf(b), 1);

  // A plain Swap publishes without a KG snapshot.
  EXPECT_EQ(manager.Swap(MakeStore(3, 4, 2)), 2u);
  EXPECT_FALSE(manager.Current()->has_kg());

  // Republishing with the mutated graph sees the new rows; the old pin is
  // untouched.
  EXPECT_EQ(manager.SwapWithKg(MakeStore(3, 4, 3), graph.Snapshot()), 3u);
  auto latest = manager.Current();
  ASSERT_TRUE(latest->has_kg());
  EXPECT_EQ(latest->kg.num_entities(), 3);
  EXPECT_EQ(latest->kg.num_relational_triples(), 2);
  EXPECT_GT(latest->kg.epoch(), snap->kg.epoch());
  EXPECT_EQ(snap->kg.num_entities(), 2);
}

TEST(SnapshotManagerTest, HotSwapUnderQueryLoadIsCoherent) {
  // Two distinguishable stores; deterministic construction means each
  // version's expected answers can be precomputed exactly.
  constexpr int64_t kN = 120, kD = 8, kK = 5;
  const core::EmbeddingStore store_a = MakeStore(kN, kD, 10);
  const core::EmbeddingStore store_b = MakeStore(kN, kD, 20);

  Rng rng(99);
  std::vector<Tensor> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(Tensor::RandomNormal({kD}, 1.0f, &rng));
  }
  std::vector<std::vector<core::EmbeddingStore::Neighbor>> expected_a,
      expected_b;
  for (const Tensor& q : queries) {
    expected_a.push_back(store_a.NearestNeighbors(q, kK));
    expected_b.push_back(store_b.NearestNeighbors(q, kK));
  }

  SnapshotManager manager;
  manager.Swap(MakeStore(kN, kD, 10));

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    for (int round = 0; round < 50; ++round) {
      manager.Swap(MakeStore(kN, kD, round % 2 == 0 ? 20 : 10));
    }
    done.store(true);
  });

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      size_t q = static_cast<size_t>(c);
      while (!done.load()) {
        q = (q + 1) % queries.size();
        // Pin one snapshot; every read below sees one coherent store even
        // if the swapper publishes a replacement mid-query.
        auto snap = manager.Current();
        ASSERT_NE(snap, nullptr);
        const auto got = snap->store.NearestNeighbors(queries[q], kK);
        ASSERT_TRUE(SameNeighbors(got, expected_a[q]) ||
                    SameNeighbors(got, expected_b[q]))
            << "answer matches neither snapshot generation, query " << q;
      }
    });
  }
  swapper.join();
  for (std::thread& t : clients) t.join();
  EXPECT_GE(manager.version(), 51u);
}

}  // namespace
}  // namespace sdea::serve
