// Columnar store + facade contract suite: chunk sealing at tiny
// capacities, snapshot/facade equivalence, dictionary vs plain value
// encoding, pinned-snapshot immutability, out-of-range id contracts,
// bulk-load commit deferral, and snapshot pin cost.
#include "kg/columnar.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "kg/knowledge_graph.h"

namespace sdea::kg {
namespace {

/// Tiny chunks: every handful of rows crosses a seal boundary, so the
/// sealed-chunk index paths and the open-chunk linear paths both run even
/// in small tests.
ColumnarOptions TinyChunks() {
  ColumnarOptions opts;
  opts.rel_chunk_rows = 4;
  opts.attr_chunk_rows = 3;
  opts.name_chunk_rows = 2;
  return opts;
}

/// A deterministic graph with enough triples to fill several chunks.
/// Entity ids follow insertion order e0..e{n-1}.
KnowledgeGraph BuildGraph(int64_t entities, int64_t rel_triples,
                          int64_t attr_triples) {
  KnowledgeGraph g(TinyChunks());
  g.BeginBulkLoad();
  for (int64_t i = 0; i < entities; ++i) {
    g.AddEntity("e" + std::to_string(i));
  }
  const RelationId r0 = g.AddRelation("r0");
  const RelationId r1 = g.AddRelation("r1");
  const AttributeId a0 = g.AddAttribute("a0");
  const AttributeId a1 = g.AddAttribute("a1");
  for (int64_t i = 0; i < rel_triples; ++i) {
    g.AddRelationalTriple(static_cast<EntityId>((i * 7) % entities),
                          (i % 2 == 0) ? r0 : r1,
                          static_cast<EntityId>((i * 5 + 1) % entities));
  }
  for (int64_t i = 0; i < attr_triples; ++i) {
    g.AddAttributeTriple(static_cast<EntityId>((i * 3) % entities),
                         (i % 2 == 0) ? a0 : a1,
                         "value-" + std::to_string(i % 5));
  }
  g.EndBulkLoad();
  return g;
}

TEST(KgColumnarTest, SnapshotMatchesFacadeRowViews) {
  const KnowledgeGraph g = BuildGraph(11, 41, 23);
  const KgSnapshot snap = g.Snapshot();
  ASSERT_EQ(snap.num_relational_triples(), 41);
  ASSERT_EQ(snap.num_attribute_triples(), 23);

  const auto& rels = g.relational_triples();
  int64_t visited = 0;
  snap.ForEachRelational([&](int64_t row, EntityId h, RelationId r,
                             EntityId t) {
    ASSERT_EQ(row, visited);
    EXPECT_EQ(h, rels[static_cast<size_t>(row)].head);
    EXPECT_EQ(r, rels[static_cast<size_t>(row)].relation);
    EXPECT_EQ(t, rels[static_cast<size_t>(row)].tail);
    const RelationalTriple at = snap.RelationalAt(row);
    EXPECT_EQ(at.head, h);
    EXPECT_EQ(at.relation, r);
    EXPECT_EQ(at.tail, t);
    ++visited;
  });
  EXPECT_EQ(visited, 41);

  const auto& attrs = g.attribute_triples();
  visited = 0;
  snap.ForEachAttribute([&](int64_t row, EntityId e, AttributeId a,
                            const std::string& value) {
    ASSERT_EQ(row, visited);
    EXPECT_EQ(e, attrs[static_cast<size_t>(row)].entity);
    EXPECT_EQ(a, attrs[static_cast<size_t>(row)].attribute);
    EXPECT_EQ(value, attrs[static_cast<size_t>(row)].value);
    const auto [se, sa] = snap.AttributeIdsAt(row);
    EXPECT_EQ(se, e);
    EXPECT_EQ(sa, a);
    EXPECT_EQ(snap.ValueAt(row), value);
    ++visited;
  });
  EXPECT_EQ(visited, 23);
}

TEST(KgColumnarTest, NeighborsMatchLegacyInsertionOrder) {
  const KnowledgeGraph g = BuildGraph(9, 37, 0);
  const KgSnapshot snap = g.Snapshot();
  for (EntityId e = 0; e < g.num_entities(); ++e) {
    EXPECT_EQ(snap.NeighborsOf(e), g.neighbors(e)) << "entity " << e;
    EXPECT_EQ(snap.DegreeOf(e), g.degree(e));
  }
}

TEST(KgColumnarTest, SelfLoopYieldsOutgoingEdgeFirst) {
  KnowledgeGraph g(TinyChunks());
  const EntityId e = g.AddEntity("x");
  const RelationId r = g.AddRelation("r");
  // Filler edges around the loop so the chunk seals and the merged
  // by_head/by_tail path runs.
  const EntityId other = g.AddEntity("y");
  for (int i = 0; i < 3; ++i) g.AddRelationalTriple(e, r, other);
  g.AddRelationalTriple(e, r, e);  // self-loop
  for (int i = 0; i < 3; ++i) g.AddRelationalTriple(other, r, e);

  const std::vector<NeighborEdge> edges = g.Snapshot().NeighborsOf(e);
  EXPECT_EQ(edges, g.neighbors(e));
  // The self-loop contributes two consecutive edges, outgoing first.
  ASSERT_EQ(edges.size(), 8u);
  EXPECT_TRUE(edges[3].outgoing);
  EXPECT_EQ(edges[3].neighbor, e);
  EXPECT_FALSE(edges[4].outgoing);
  EXPECT_EQ(edges[4].neighbor, e);
  EXPECT_EQ(g.degree(e), 8);
}

TEST(KgColumnarTest, AttributeRowsMatchLegacyIndices) {
  const KnowledgeGraph g = BuildGraph(7, 0, 29);
  const KgSnapshot snap = g.Snapshot();
  for (EntityId e = 0; e < g.num_entities(); ++e) {
    EXPECT_EQ(snap.AttributeRowsOf(e), g.attribute_triples_of(e))
        << "entity " << e;
  }
}

TEST(KgColumnarTest, OutOfRangeIdsAreGracefulEverywhere) {
  const KnowledgeGraph g = BuildGraph(5, 13, 9);
  const KgSnapshot snap = g.Snapshot();
  for (const EntityId bad : {EntityId{-1}, EntityId{5}, EntityId{1000}}) {
    EXPECT_TRUE(g.neighbors(bad).empty());
    EXPECT_TRUE(g.attribute_triples_of(bad).empty());
    EXPECT_EQ(g.degree(bad), 0);
    EXPECT_TRUE(snap.NeighborsOf(bad).empty());
    EXPECT_TRUE(snap.AttributeRowsOf(bad).empty());
    EXPECT_EQ(snap.DegreeOf(bad), 0);
  }
}

TEST(KgColumnarTest, PinnedSnapshotIsImmutableUnderWrites) {
  KnowledgeGraph g(TinyChunks());
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);

  const KgSnapshot pinned = g.Snapshot();
  ASSERT_EQ(pinned.num_relational_triples(), 1);
  const uint64_t pinned_epoch = pinned.epoch();

  // Keep writing across several chunk boundaries (seals happen underneath
  // the pin).
  for (int i = 0; i < 50; ++i) {
    const EntityId e = g.AddEntity("later" + std::to_string(i));
    g.AddRelationalTriple(a, r, e);
  }
  EXPECT_EQ(pinned.num_relational_triples(), 1);
  EXPECT_EQ(pinned.num_entities(), 2);
  EXPECT_EQ(pinned.epoch(), pinned_epoch);
  EXPECT_EQ(pinned.NeighborsOf(a).size(), 1u);
  EXPECT_EQ(pinned.entity_name(a), "a");

  const KgSnapshot fresh = g.Snapshot();
  EXPECT_GT(fresh.epoch(), pinned_epoch);
  EXPECT_EQ(fresh.num_relational_triples(), 51);
  EXPECT_EQ(fresh.NeighborsOf(a).size(), 51u);
}

TEST(KgColumnarTest, SnapshotOutlivesTheGraph) {
  KgSnapshot snap;
  {
    const KnowledgeGraph g = BuildGraph(6, 17, 11);
    snap = g.Snapshot();
  }
  // The graph (and its store) are gone; the pinned chunks must survive.
  EXPECT_EQ(snap.num_relational_triples(), 17);
  int64_t rows = 0;
  snap.ForEachRelational(
      [&](int64_t, EntityId, RelationId, EntityId) { ++rows; });
  EXPECT_EQ(rows, 17);
  EXPECT_EQ(snap.entity_name(0), "e0");
  EXPECT_EQ(snap.ValueAt(0), "value-0");
}

TEST(KgColumnarTest, BulkLoadDefersCommit) {
  KnowledgeGraph g(TinyChunks());
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);

  g.BeginBulkLoad();
  for (int i = 0; i < 20; ++i) {
    g.AddRelationalTriple(a, r, b);
  }
  // Mid-bulk snapshots pin the last publish, not the in-flight rows.
  EXPECT_EQ(g.Snapshot().num_relational_triples(), 1);
  // The writer-side legacy views do see everything appended.
  EXPECT_EQ(g.relational_triples().size(), 21u);
  g.EndBulkLoad();
  EXPECT_EQ(g.Snapshot().num_relational_triples(), 21);
}

TEST(KgColumnarTest, EveryAddPublishesOutsideBulkLoad) {
  KnowledgeGraph g(TinyChunks());
  const EntityId a = g.AddEntity("a");
  const RelationId r = g.AddRelation("r");
  uint64_t last_epoch = g.Snapshot().epoch();
  for (int i = 0; i < 10; ++i) {
    g.AddRelationalTriple(a, r, a);
    const KgSnapshot snap = g.Snapshot();
    EXPECT_EQ(snap.num_relational_triples(), i + 1);
    EXPECT_GT(snap.epoch(), last_epoch);
    last_epoch = snap.epoch();
  }
}

TEST(KgColumnarTest, RepetitiveValuesDictionaryEncodeSmaller) {
  // Two stores with identical row counts and value lengths; one repeats 3
  // distinct values per chunk, the other makes every value distinct. After
  // sealing, the repetitive store's chunks hold a small dictionary + codes
  // and must be measurably smaller.
  ColumnarOptions opts;
  opts.attr_chunk_rows = 64;
  // Small name chunks: the default 4096 preallocated slots would dominate
  // the byte accounting of this two-name graph.
  opts.name_chunk_rows = 4;
  const int64_t rows = 64 * 8;  // 8 fully sealed chunks
  auto build = [&](bool repetitive) {
    KnowledgeGraph g(opts);
    g.BeginBulkLoad();
    const EntityId e = g.AddEntity("e");
    const AttributeId a = g.AddAttribute("a");
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t key = repetitive ? i % 3 : i;
      g.AddAttributeTriple(
          e, a, "payload-string-with-some-length-" + std::to_string(key));
    }
    g.EndBulkLoad();
    return g;
  };
  const KnowledgeGraph repetitive = build(true);
  const KnowledgeGraph distinct = build(false);
  EXPECT_LT(repetitive.columnar().ApproxHeapBytes(),
            distinct.columnar().ApproxHeapBytes() / 2);
  // Encoding must not change what readers see.
  const KgSnapshot snap = repetitive.Snapshot();
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_EQ(snap.ValueAt(i), "payload-string-with-some-length-" +
                                   std::to_string(i % 3));
  }
}

TEST(KgColumnarTest, CloneIsDeepAndEqual) {
  const KnowledgeGraph g = BuildGraph(8, 19, 12);
  const KnowledgeGraph copy = g.Clone();
  EXPECT_EQ(copy.num_entities(), g.num_entities());
  EXPECT_EQ(copy.num_relations(), g.num_relations());
  EXPECT_EQ(copy.num_attributes(), g.num_attributes());
  ASSERT_EQ(copy.relational_triples().size(), g.relational_triples().size());
  for (size_t i = 0; i < g.relational_triples().size(); ++i) {
    EXPECT_EQ(copy.relational_triples()[i].head,
              g.relational_triples()[i].head);
    EXPECT_EQ(copy.relational_triples()[i].tail,
              g.relational_triples()[i].tail);
  }
  ASSERT_EQ(copy.attribute_triples().size(), g.attribute_triples().size());
  for (size_t i = 0; i < g.attribute_triples().size(); ++i) {
    EXPECT_EQ(copy.attribute_triples()[i].value,
              g.attribute_triples()[i].value);
  }
}

TEST(KgColumnarTest, SnapshotPinIsSubMillisecond) {
  const KnowledgeGraph g = BuildGraph(50, 500, 300);
  constexpr int kPins = 2000;
  const auto start = std::chrono::steady_clock::now();
  uint64_t sink = 0;
  for (int i = 0; i < kPins; ++i) {
    sink += g.Snapshot().epoch();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double per_pin_ms =
      std::chrono::duration<double, std::milli>(elapsed).count() / kPins;
  EXPECT_GT(sink, 0u);
  // Acceptance bar: pin + unpin under a millisecond. Real cost is ~100ns;
  // the slack absorbs sanitizer builds and noisy CI.
  EXPECT_LT(per_pin_ms, 1.0);
}

TEST(KgColumnarTest, EmptySnapshotIsWellFormed) {
  const KgSnapshot def;  // default-constructed: epoch 0, no chunks
  EXPECT_EQ(def.epoch(), 0u);
  EXPECT_EQ(def.num_entities(), 0);
  int64_t rows = 0;
  def.ForEachRelational(
      [&](int64_t, EntityId, RelationId, EntityId) { ++rows; });
  def.ForEachAttribute(
      [&](int64_t, EntityId, AttributeId, const std::string&) { ++rows; });
  EXPECT_EQ(rows, 0);
  EXPECT_TRUE(def.NeighborsOf(0).empty());

  const KnowledgeGraph g;  // fresh graph: committed empty state
  const KgSnapshot snap = g.Snapshot();
  EXPECT_EQ(snap.num_relational_triples(), 0);
  EXPECT_TRUE(snap.NeighborsOf(0).empty());
}

}  // namespace
}  // namespace sdea::kg
