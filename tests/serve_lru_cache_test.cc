#include "serve/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sdea::serve {
namespace {

Tensor Scalar(float v) { return Tensor::FromVector({v}); }

TEST(ShardedLruCacheTest, MissThenHit) {
  ShardedLruCache cache({.capacity = 4, .num_shards = 1});
  Tensor out;
  EXPECT_FALSE(cache.Get("a", &out));
  cache.Put("a", Scalar(1.0f));
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out.size(), 1);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the global LRU order is exact.
  ShardedLruCache cache({.capacity = 3, .num_shards = 1});
  cache.Put("a", Scalar(1.0f));
  cache.Put("b", Scalar(2.0f));
  cache.Put("c", Scalar(3.0f));
  Tensor out;
  ASSERT_TRUE(cache.Get("a", &out));  // Promote "a"; "b" is now LRU.
  cache.Put("d", Scalar(4.0f));       // Evicts "b".
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_TRUE(cache.Get("d", &out));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ShardedLruCacheTest, PutPromotesExistingKey) {
  ShardedLruCache cache({.capacity = 2, .num_shards = 1});
  cache.Put("a", Scalar(1.0f));
  cache.Put("b", Scalar(2.0f));
  cache.Put("a", Scalar(10.0f));  // Overwrite + promote; "b" is LRU.
  cache.Put("c", Scalar(3.0f));   // Evicts "b".
  Tensor out;
  EXPECT_FALSE(cache.Get("b", &out));
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out[0], 10.0f);  // New value won.
}

TEST(ShardedLruCacheTest, CapacityIsRespectedAcrossShards) {
  ShardedLruCache cache({.capacity = 8, .num_shards = 4});
  EXPECT_EQ(cache.capacity(), 8u);
  for (int i = 0; i < 100; ++i) {
    cache.Put("key" + std::to_string(i), Scalar(static_cast<float>(i)));
  }
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ShardedLruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache cache({.capacity = 0, .num_shards = 4});
  cache.Put("a", Scalar(1.0f));
  Tensor out;
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(ShardedLruCacheTest, ClearDropsEverything) {
  ShardedLruCache cache({.capacity = 16, .num_shards = 4});
  for (int i = 0; i < 10; ++i) {
    cache.Put("key" + std::to_string(i), Scalar(static_cast<float>(i)));
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  Tensor out;
  EXPECT_FALSE(cache.Get("key3", &out));
}

TEST(ShardedLruCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  // Values are a pure function of the key, so any hit must return the
  // value its key was stored with — regardless of interleaving. Run under
  // TSan as part of the serve label.
  ShardedLruCache cache({.capacity = 32, .num_shards = 4});
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr int kKeys = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key_id = (i * 7 + t * 13) % kKeys;
        const std::string key = "key" + std::to_string(key_id);
        if ((i + t) % 3 == 0) {
          cache.Put(key, Scalar(static_cast<float>(key_id)));
        } else {
          Tensor out;
          if (cache.Get(key, &out)) {
            ASSERT_EQ(out.size(), 1);
            ASSERT_EQ(out[0], static_cast<float>(key_id));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace sdea::serve
