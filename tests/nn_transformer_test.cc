#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sdea::nn {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig c;
  c.vocab_size = 20;
  c.max_len = 16;
  c.dim = 8;
  c.num_heads = 2;
  c.num_layers = 2;
  c.ff_dim = 16;
  c.dropout = 0.0f;
  return c;
}

TEST(AttentionTest, OutputShapePreserved) {
  Rng rng(1);
  MultiHeadAttention attn("a", 8, 2, &rng);
  Graph g;
  NodeId x = g.Input(Tensor::RandomNormal({5, 8}, 1.0f, &rng));
  NodeId y = attn.Forward(&g, x);
  EXPECT_EQ(g.Value(y).shape(), (std::vector<int64_t>{5, 8}));
}

TEST(AttentionTest, SingleTokenSequence) {
  Rng rng(2);
  MultiHeadAttention attn("a", 8, 2, &rng);
  Graph g;
  NodeId x = g.Input(Tensor::RandomNormal({1, 8}, 1.0f, &rng));
  NodeId y = attn.Forward(&g, x);
  EXPECT_EQ(g.Value(y).shape(), (std::vector<int64_t>{1, 8}));
}

TEST(TransformerTest, EncodeShapes) {
  Rng rng(3);
  TransformerEncoder enc("t", SmallConfig(), &rng);
  Graph g;
  NodeId h = enc.EncodeSequence(&g, {1, 5, 6, 7}, false, nullptr);
  EXPECT_EQ(g.Value(h).shape(), (std::vector<int64_t>{4, 8}));
  Graph g2;
  NodeId cls = enc.EncodeCls(&g2, {1, 5, 6, 7}, false, nullptr);
  EXPECT_EQ(g2.Value(cls).shape(), (std::vector<int64_t>{1, 8}));
  Graph g3;
  NodeId mean = enc.EncodeMean(&g3, {1, 5, 6, 7}, false, nullptr);
  EXPECT_EQ(g3.Value(mean).shape(), (std::vector<int64_t>{1, 8}));
}

TEST(TransformerTest, DeterministicInference) {
  Rng rng(4);
  TransformerEncoder enc("t", SmallConfig(), &rng);
  Graph g1, g2;
  const Tensor& a = g1.Value(enc.EncodeCls(&g1, {1, 2, 3}, false, nullptr));
  const Tensor& b = g2.Value(enc.EncodeCls(&g2, {1, 2, 3}, false, nullptr));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(TransformerTest, DifferentInputsDifferentOutputs) {
  Rng rng(5);
  TransformerEncoder enc("t", SmallConfig(), &rng);
  Graph g1, g2;
  const Tensor a = g1.Value(enc.EncodeCls(&g1, {1, 2, 3}, false, nullptr));
  const Tensor b = g2.Value(enc.EncodeCls(&g2, {1, 7, 9}, false, nullptr));
  EXPECT_GT(tmath::SquaredL2Distance(a, b), 1e-6f);
}

TEST(TransformerTest, PositionMattersForCls) {
  Rng rng(6);
  TransformerEncoder enc("t", SmallConfig(), &rng);
  Graph g1, g2;
  const Tensor a = g1.Value(enc.EncodeCls(&g1, {1, 2, 3, 4}, false, nullptr));
  const Tensor b = g2.Value(enc.EncodeCls(&g2, {1, 4, 3, 2}, false, nullptr));
  EXPECT_GT(tmath::SquaredL2Distance(a, b), 1e-8f);
}

TEST(TransformerTest, TrainingStepReducesTripletLoss) {
  // The encoder can learn to pull a pair of sequences together against a
  // negative within a few optimizer steps.
  Rng rng(7);
  TransformerEncoder enc("t", SmallConfig(), &rng);
  Adam opt(enc.Parameters(), 5e-3f);
  const std::vector<int64_t> anchor = {1, 4, 5, 6};
  const std::vector<int64_t> positive = {1, 4, 5, 7};
  const std::vector<int64_t> negative = {1, 10, 11, 12};
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    Graph g;
    NodeId a = enc.EncodeCls(&g, anchor, true, &rng);
    NodeId p = enc.EncodeCls(&g, positive, true, &rng);
    NodeId n = enc.EncodeCls(&g, negative, true, &rng);
    NodeId loss = MarginRankingLoss(&g, a, p, n, 2.0f);
    if (step == 0) first_loss = g.Value(loss)[0];
    last_loss = g.Value(loss)[0];
    opt.ZeroGrad();
    g.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(TransformerTest, RejectsTooLongSequence) {
  Rng rng(8);
  TransformerConfig c = SmallConfig();
  c.max_len = 4;
  TransformerEncoder enc("t", c, &rng);
  Graph g;
  EXPECT_DEATH(enc.EncodeSequence(&g, {1, 2, 3, 4, 5}, false, nullptr), "");
}

}  // namespace
}  // namespace sdea::nn
