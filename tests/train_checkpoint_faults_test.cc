// Fault-injection tests for checkpointing under a failing filesystem: a
// checkpoint save that fails mid-training must be logged and counted, not
// kill the run, and whatever checkpoint file the run leaves behind must
// always be a complete, loadable one (atomic save).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/fault_injection.h"
#include "base/fileio.h"
#include "base/rng.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "testing/faults.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace sdea::train {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

class WalkNet : public nn::Module {
 public:
  explicit WalkNet(int64_t dim = 8) {
    w = AddParameter("walk.w", Tensor({1, dim}));
  }
  Parameter* w;
};

// Same RNG-and-order-sensitive task as train_checkpoint_test.cc: any
// perturbation the fault path introduces shows up as a parameter diff.
class WalkTask : public TrainTask {
 public:
  explicit WalkTask(uint64_t seed) : rng_(seed) {
    optimizer_ = std::make_unique<nn::Adam>(net_.Parameters(), 0.05f);
  }

  size_t num_examples() const override { return 6; }
  Rng* rng() override { return &rng_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    net_.ZeroGrad();
    float* g = net_.w->grad.data();
    for (size_t i = 0; i < n; ++i) {
      g[ids[i] % 8] += rng_.UniformFloat(-1.0f, 1.0f);
    }
    optimizer_->Step();
    return net_.w->value.data()[0];
  }

  double EvalMetric() override {
    return static_cast<double>(net_.w->value.data()[0]);
  }

  nn::Module* module() override { return &net_; }
  nn::Optimizer* optimizer() override { return optimizer_.get(); }

  Rng rng_;
  WalkNet net_;
  std::unique_ptr<nn::Optimizer> optimizer_;
};

TrainerOptions WalkOptions() {
  TrainerOptions opts;
  opts.max_epochs = 8;
  opts.batch_size = 3;
  opts.shuffle = TrainerOptions::Shuffle::kCumulative;
  opts.evaluate = true;
  opts.restore_best = true;
  return opts;
}

TEST(TrainCheckpointFaultsTest, FailedSavesDoNotStopTraining) {
  // Reference: a clean run with no checkpointing at all.
  WalkTask ref(/*seed=*/42);
  Trainer ref_trainer(&ref, WalkOptions());
  ASSERT_TRUE(ref_trainer.Run().ok());
  const std::string ref_params = nn::SerializeParameters(&ref.net_);

  // Faulted run: every write touching the .ckpt path fails.
  const std::string path = TempPath("sdea_faulted_run.ckpt");
  std::remove(path.c_str());
  WalkTask task(/*seed=*/42);
  CheckpointManager mgr(path);
  TrainerOptions opts = WalkOptions();
  opts.checkpoint = &mgr;
  sdea::testing::CountdownFaultInjector injector{
      sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kWrite,
                               .repeat = true,
                               .path_substring = ".ckpt"}};
  Trainer trainer(&task, opts);
  Result<TrainStats> stats = Status::Internal("run never executed");
  {
    ScopedFaultInjector scope(&injector);
    stats = trainer.Run();
  }
  // Training completed despite every save failing; the failures were
  // counted: 7 periodic saves (the last epoch skips its periodic save)
  // plus the final finished-save.
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->checkpoint_failures, 8);
  EXPECT_GT(injector.faults_injected(), 0);
  // And the failed saves did not perturb the numerics.
  EXPECT_EQ(nn::SerializeParameters(&task.net_), ref_params);
  // The atomic writer never got as far as creating the file.
  EXPECT_FALSE(FileExists(path));
}

TEST(TrainCheckpointFaultsTest, IntermittentFaultLeavesLoadableCheckpoint) {
  // Fail the 3rd and every later .ckpt write: the file on disk stays
  // whatever the last successful atomic save produced, and it loads.
  const std::string path = TempPath("sdea_intermittent.ckpt");
  std::remove(path.c_str());
  WalkTask task(/*seed=*/42);
  CheckpointManager mgr(path);
  TrainerOptions opts = WalkOptions();
  opts.checkpoint = &mgr;
  sdea::testing::CountdownFaultInjector injector{
      sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kWrite,
                               .trigger_after = 2,
                               .repeat = true,
                               .path_substring = ".ckpt"}};
  Trainer trainer(&task, opts);
  Result<TrainStats> stats = Status::Internal("run never executed");
  {
    ScopedFaultInjector scope(&injector);
    stats = trainer.Run();
  }
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->checkpoint_failures, 0);
  ASSERT_TRUE(FileExists(path));
  auto ckpt = mgr.Load();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  // Two saves succeeded (after epochs 0 and 1), so the surviving
  // checkpoint resumes from epoch 2.
  EXPECT_EQ(ckpt->next_epoch, 2);
  EXPECT_FALSE(ckpt->finished);
}

}  // namespace
}  // namespace sdea::train
