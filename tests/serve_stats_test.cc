#include "serve/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace sdea::serve {
namespace {

TEST(ServeStatsTest, StartsZeroed) {
  ServeStats stats;
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_EQ(snap.batches, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_hit_rate(), 0.0);
  EXPECT_EQ(snap.mean_batch_size(), 0.0);
}

TEST(ServeStatsTest, CountersAccumulate) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordQuery(true);
  stats.RecordQuery(false);
  stats.RecordFailedQuery();
  stats.RecordBatch(4);
  stats.RecordCacheHit();
  stats.RecordCacheHit();
  stats.RecordCacheHit();
  stats.RecordCacheMiss();
  stats.RecordEncodedTexts(7);
  stats.RecordSwap();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.text_queries, 2u);
  EXPECT_EQ(snap.embedding_queries, 1u);
  EXPECT_EQ(snap.failed_queries, 1u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.batched_queries, 4u);
  EXPECT_EQ(snap.cache_hits, 3u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.encoded_texts, 7u);
  EXPECT_EQ(snap.snapshot_swaps, 1u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size(), 4.0);
}

TEST(ServeStatsTest, BatchSizeBucketBoundaries) {
  ServeStats stats;
  // Bucket upper bounds: 1, 2, 4, 8, 16, 32, 64, inf.
  stats.RecordBatch(1);    // bucket 0
  stats.RecordBatch(2);    // bucket 1
  stats.RecordBatch(3);    // bucket 2
  stats.RecordBatch(4);    // bucket 2
  stats.RecordBatch(5);    // bucket 3
  stats.RecordBatch(64);   // bucket 6
  stats.RecordBatch(65);   // bucket 7
  stats.RecordBatch(999);  // bucket 7
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.batch_size_hist[0], 1u);
  EXPECT_EQ(snap.batch_size_hist[1], 1u);
  EXPECT_EQ(snap.batch_size_hist[2], 2u);
  EXPECT_EQ(snap.batch_size_hist[3], 1u);
  EXPECT_EQ(snap.batch_size_hist[4], 0u);
  EXPECT_EQ(snap.batch_size_hist[5], 0u);
  EXPECT_EQ(snap.batch_size_hist[6], 1u);
  EXPECT_EQ(snap.batch_size_hist[7], 2u);
  uint64_t total = 0;
  for (uint64_t c : snap.batch_size_hist) total += c;
  EXPECT_EQ(total, snap.batches);
}

TEST(ServeStatsTest, LatencyBucketBoundaries) {
  ServeStats stats;
  stats.RecordLatency(ServeStats::Stage::kEncode, 0);        // bucket 0
  stats.RecordLatency(ServeStats::Stage::kEncode, 1);        // bucket 0
  stats.RecordLatency(ServeStats::Stage::kEncode, 2);        // bucket 1
  stats.RecordLatency(ServeStats::Stage::kSearch, 1024);     // bucket 5
  stats.RecordLatency(ServeStats::Stage::kTotal, 70000000);  // bucket 9
  const StatsSnapshot snap = stats.Snapshot();
  const int kEncode = static_cast<int>(ServeStats::Stage::kEncode);
  const int kSearch = static_cast<int>(ServeStats::Stage::kSearch);
  const int kTotal = static_cast<int>(ServeStats::Stage::kTotal);
  EXPECT_EQ(snap.latency_hist[kEncode][0], 2u);
  EXPECT_EQ(snap.latency_hist[kEncode][1], 1u);
  EXPECT_EQ(snap.latency_hist[kSearch][5], 1u);
  EXPECT_EQ(snap.latency_hist[kTotal][9], 1u);
}

TEST(ServeStatsTest, ConcurrentIncrementsAllLand) {
  ServeStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordQuery(t % 2 == 0);
        stats.RecordCacheHit();
        stats.RecordBatch(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.cache_hits, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.batches, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(ServeStatsTest, ResetZeroesEverything) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordBatch(9);
  stats.RecordCacheMiss();
  stats.RecordLatency(ServeStats::Stage::kTotal, 123);
  stats.Reset();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_EQ(snap.batches, 0u);
  EXPECT_EQ(snap.cache_misses, 0u);
  for (const auto& stage : snap.latency_hist) {
    for (uint64_t c : stage) EXPECT_EQ(c, 0u);
  }
}

// Snapshots taken while writers are live must be well-formed: histogram
// buckets sum to their totals and derived rates stay in range, even
// though a snapshot is relaxed loads, not a consistent cut.
TEST(ServeStatsTest, SnapshotUnderConcurrentWritesIsWellFormed) {
  ServeStats stats;
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&stats, &stop, t] {
      uint64_t batch = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        stats.RecordQuery(t % 2 == 0);
        stats.RecordBatch(batch);
        stats.RecordCacheHit();
        stats.RecordCacheMiss();
        stats.RecordLatency(ServeStats::Stage::kTotal,
                            static_cast<uint64_t>(batch * 100));
        batch = batch % 100 + 1;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const StatsSnapshot snap = stats.Snapshot();
    // The batches counter and the batch-size histogram are separate
    // atomics: a snapshot may catch a writer between the two updates, so
    // they can transiently disagree by at most one per in-flight writer.
    uint64_t batch_total = 0;
    for (uint64_t c : snap.batch_size_hist) batch_total += c;
    const uint64_t hi = std::max(batch_total, snap.batches);
    const uint64_t lo = std::min(batch_total, snap.batches);
    EXPECT_LE(hi - lo, static_cast<uint64_t>(kWriters));
    EXPECT_GE(snap.queries, snap.text_queries);
    const double rate = snap.cache_hit_rate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    if (snap.batches > 0) EXPECT_GE(snap.mean_batch_size(), 1.0);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  // Quiescent: everything recorded is visible.
  const StatsSnapshot final_snap = stats.Snapshot();
  EXPECT_EQ(final_snap.cache_hits, final_snap.cache_misses);
  EXPECT_EQ(final_snap.queries, final_snap.batches);
}

// ServeStats is a view over registry handles: an injected registry
// exposes the same numbers through the generic metrics snapshot.
TEST(ServeStatsTest, InjectedRegistryExposesServeMetrics) {
  obs::MetricsRegistry registry;
  ServeStats stats(&registry);
  EXPECT_EQ(stats.registry(), &registry);
  stats.RecordQuery(true);
  stats.RecordBatch(3);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t queries = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve.queries") queries = value;
  }
  EXPECT_EQ(queries, 1u);
  bool found_batch_hist = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "serve.batch_size") {
      found_batch_hist = true;
      EXPECT_EQ(hist.count(), 1);
    }
  }
  EXPECT_TRUE(found_batch_hist);
  // The owning-registry default stays isolated from the injected one.
  ServeStats isolated;
  EXPECT_NE(isolated.registry(), &registry);
  EXPECT_EQ(isolated.Snapshot().queries, 0u);
}

TEST(ServeStatsTest, ToStringMentionsKeyFields) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordBatch(2);
  stats.RecordCacheHit();
  const std::string s = stats.Snapshot().ToString();
  EXPECT_NE(s.find("1 queries"), std::string::npos);
  EXPECT_NE(s.find("hit rate"), std::string::npos);
  EXPECT_NE(s.find("batch sizes:"), std::string::npos);
}

}  // namespace
}  // namespace sdea::serve
