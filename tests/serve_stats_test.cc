#include "serve/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sdea::serve {
namespace {

TEST(ServeStatsTest, StartsZeroed) {
  ServeStats stats;
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_EQ(snap.batches, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_hit_rate(), 0.0);
  EXPECT_EQ(snap.mean_batch_size(), 0.0);
}

TEST(ServeStatsTest, CountersAccumulate) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordQuery(true);
  stats.RecordQuery(false);
  stats.RecordFailedQuery();
  stats.RecordBatch(4);
  stats.RecordCacheHit();
  stats.RecordCacheHit();
  stats.RecordCacheHit();
  stats.RecordCacheMiss();
  stats.RecordEncodedTexts(7);
  stats.RecordSwap();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.text_queries, 2u);
  EXPECT_EQ(snap.embedding_queries, 1u);
  EXPECT_EQ(snap.failed_queries, 1u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.batched_queries, 4u);
  EXPECT_EQ(snap.cache_hits, 3u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.encoded_texts, 7u);
  EXPECT_EQ(snap.snapshot_swaps, 1u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size(), 4.0);
}

TEST(ServeStatsTest, BatchSizeBucketBoundaries) {
  ServeStats stats;
  // Bucket upper bounds: 1, 2, 4, 8, 16, 32, 64, inf.
  stats.RecordBatch(1);    // bucket 0
  stats.RecordBatch(2);    // bucket 1
  stats.RecordBatch(3);    // bucket 2
  stats.RecordBatch(4);    // bucket 2
  stats.RecordBatch(5);    // bucket 3
  stats.RecordBatch(64);   // bucket 6
  stats.RecordBatch(65);   // bucket 7
  stats.RecordBatch(999);  // bucket 7
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.batch_size_hist[0], 1u);
  EXPECT_EQ(snap.batch_size_hist[1], 1u);
  EXPECT_EQ(snap.batch_size_hist[2], 2u);
  EXPECT_EQ(snap.batch_size_hist[3], 1u);
  EXPECT_EQ(snap.batch_size_hist[4], 0u);
  EXPECT_EQ(snap.batch_size_hist[5], 0u);
  EXPECT_EQ(snap.batch_size_hist[6], 1u);
  EXPECT_EQ(snap.batch_size_hist[7], 2u);
  uint64_t total = 0;
  for (uint64_t c : snap.batch_size_hist) total += c;
  EXPECT_EQ(total, snap.batches);
}

TEST(ServeStatsTest, LatencyBucketBoundaries) {
  ServeStats stats;
  stats.RecordLatency(ServeStats::Stage::kEncode, 0);        // bucket 0
  stats.RecordLatency(ServeStats::Stage::kEncode, 1);        // bucket 0
  stats.RecordLatency(ServeStats::Stage::kEncode, 2);        // bucket 1
  stats.RecordLatency(ServeStats::Stage::kSearch, 1024);     // bucket 5
  stats.RecordLatency(ServeStats::Stage::kTotal, 70000000);  // bucket 9
  const StatsSnapshot snap = stats.Snapshot();
  const int kEncode = static_cast<int>(ServeStats::Stage::kEncode);
  const int kSearch = static_cast<int>(ServeStats::Stage::kSearch);
  const int kTotal = static_cast<int>(ServeStats::Stage::kTotal);
  EXPECT_EQ(snap.latency_hist[kEncode][0], 2u);
  EXPECT_EQ(snap.latency_hist[kEncode][1], 1u);
  EXPECT_EQ(snap.latency_hist[kSearch][5], 1u);
  EXPECT_EQ(snap.latency_hist[kTotal][9], 1u);
}

TEST(ServeStatsTest, ConcurrentIncrementsAllLand) {
  ServeStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordQuery(t % 2 == 0);
        stats.RecordCacheHit();
        stats.RecordBatch(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.cache_hits, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.batches, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(ServeStatsTest, ResetZeroesEverything) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordBatch(9);
  stats.RecordCacheMiss();
  stats.RecordLatency(ServeStats::Stage::kTotal, 123);
  stats.Reset();
  const StatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_EQ(snap.batches, 0u);
  EXPECT_EQ(snap.cache_misses, 0u);
  for (const auto& stage : snap.latency_hist) {
    for (uint64_t c : stage) EXPECT_EQ(c, 0u);
  }
}

TEST(ServeStatsTest, ToStringMentionsKeyFields) {
  ServeStats stats;
  stats.RecordQuery(true);
  stats.RecordBatch(2);
  stats.RecordCacheHit();
  const std::string s = stats.Snapshot().ToString();
  EXPECT_NE(s.find("1 queries"), std::string::npos);
  EXPECT_NE(s.find("hit rate"), std::string::npos);
  EXPECT_NE(s.find("batch sizes:"), std::string::npos);
}

}  // namespace
}  // namespace sdea::serve
