// End-to-end integration test: the full SDEA pipeline on a small generated
// benchmark must beat chance by a wide margin, and the w/o-rel ablation
// must run and produce attribute-only embeddings.
#include "core/sdea.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace sdea::core {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
};

Fixture MakeFixture() {
  datagen::GeneratorConfig g;
  g.seed = 77;
  g.num_matched = 150;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;  // Shared names: learnable at this tiny scale.
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.pretrain_sentences = 500;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5);
  return f;
}

SdeaConfig FastConfig() {
  SdeaConfig c;
  c.attribute.text.encoder.dim = 24;
  c.attribute.text.encoder.ff_dim = 48;
  c.attribute.text.encoder.num_layers = 1;
  c.attribute.text.encoder.max_len = 40;
  c.attribute.text.out_dim = 24;
  c.attribute.text.max_epochs = 8;
  c.attribute.text.patience = 4;
  c.attribute.text.negatives_per_pair = 3;
  c.attribute.text.ssl_epochs = 1;
  c.relation.hidden_dim = 16;
  c.relation.joint_dim = 16;
  c.relation.max_epochs = 8;
  c.relation.patience = 4;
  return c;
}

TEST(SdeaEndToEndTest, FullPipelineBeatsChance) {
  Fixture f = MakeFixture();
  SdeaModel model;
  auto report = model.Fit(f.bench.kg1, f.bench.kg2, f.seeds, FastConfig(),
                          f.bench.pretrain_corpus);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->attribute.epochs_run, 0);
  EXPECT_GT(report->relation.epochs_run, 0);

  const eval::RankingMetrics m = model.Evaluate(f.seeds.test);
  EXPECT_EQ(m.num_queries, static_cast<int64_t>(f.seeds.test.size()));
  // Chance H@10 is ~10/190 = 5%; require a wide margin over it.
  EXPECT_GT(m.hits_at_10, 30.0);
  EXPECT_GT(m.mrr, 0.1);

  // Embedding layout: [Hr; Ha; Hm].
  EXPECT_EQ(model.embeddings1().dim(1), 16 + 24 + 16);
  EXPECT_EQ(model.embeddings1().dim(0), f.bench.kg1.num_entities());
  EXPECT_EQ(model.embeddings2().dim(0), f.bench.kg2.num_entities());
}

TEST(SdeaEndToEndTest, AblationWithoutRelationModule) {
  Fixture f = MakeFixture();
  SdeaConfig config = FastConfig();
  config.use_relation_module = false;
  SdeaModel model;
  auto report = model.Fit(f.bench.kg1, f.bench.kg2, f.seeds, config,
                          f.bench.pretrain_corpus);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->relation.epochs_run, 0);
  // Embeddings are the attribute embeddings alone.
  EXPECT_EQ(model.embeddings1().dim(1), 24);
  const eval::RankingMetrics m = model.Evaluate(f.seeds.test);
  EXPECT_GT(m.hits_at_10, 20.0);
}

TEST(SdeaEndToEndTest, DegreeBucketEvaluation) {
  Fixture f = MakeFixture();
  SdeaConfig config = FastConfig();
  config.use_relation_module = false;
  SdeaModel model;
  ASSERT_TRUE(model
                  .Fit(f.bench.kg1, f.bench.kg2, f.seeds, config,
                       f.bench.pretrain_corpus)
                  .ok());
  const auto buckets =
      model.EvaluateByDegree(f.bench.kg1, f.seeds.test, {3, 5, 10});
  ASSERT_EQ(buckets.size(), 4u);
  int64_t total = 0;
  for (const auto& b : buckets) total += b.num_queries;
  EXPECT_EQ(total, static_cast<int64_t>(f.seeds.test.size()));
}

TEST(SdeaEndToEndTest, FitFailsOnEmptyTrainSeeds) {
  Fixture f = MakeFixture();
  kg::AlignmentSeeds empty;
  SdeaModel model;
  auto report =
      model.Fit(f.bench.kg1, f.bench.kg2, empty, FastConfig());
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace sdea::core
