#include "core/alignment_pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/jape.h"
#include "datagen/generator.h"

namespace sdea::core {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
};

Fixture MakeFixture() {
  datagen::GeneratorConfig g;
  g.seed = 88;
  g.num_matched = 150;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.pretrain_sentences = 300;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5);
  return f;
}

PipelineConfig FastConfig() {
  PipelineConfig c;
  c.model.attribute.text.encoder.dim = 24;
  c.model.attribute.text.encoder.num_layers = 1;
  c.model.attribute.text.encoder.ff_dim = 48;
  c.model.attribute.text.encoder.max_len = 40;
  c.model.attribute.text.out_dim = 24;
  c.model.attribute.text.max_epochs = 6;
  c.model.attribute.text.patience = 3;
  c.model.attribute.text.negatives_per_pair = 3;
  c.model.attribute.text.ssl_epochs = 1;
  c.model.relation.max_epochs = 6;
  c.model.relation.patience = 3;
  return c;
}

TEST(PipelineTest, RunProducesDecisionsAndMetrics) {
  Fixture f = MakeFixture();
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds,
                             FastConfig(), f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->pairs.size(), 0u);
  EXPECT_GT(result->test_metrics.hits_at_10, 20.0);
  EXPECT_GE(result->matching_accuracy, 0.0);
  // All accepted pairs meet the similarity threshold and are 1-1.
  std::set<kg::EntityId> targets;
  for (const AlignedPair& p : result->pairs) {
    EXPECT_GE(p.similarity, FastConfig().min_similarity);
    EXPECT_TRUE(targets.insert(p.target).second);
  }
}

TEST(PipelineTest, GreedyModeAllowsSharedTargets) {
  Fixture f = MakeFixture();
  PipelineConfig config = FastConfig();
  config.use_stable_matching = false;
  config.min_similarity = -1.0f;  // Accept everything.
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds, config,
                             f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok());
  // Greedy accepts one pair per source entity.
  EXPECT_EQ(result->pairs.size(),
            static_cast<size_t>(f.bench.kg1.num_entities()));
}

TEST(PipelineTest, ThresholdFiltersWeakMatches) {
  Fixture f = MakeFixture();
  PipelineConfig strict = FastConfig();
  strict.min_similarity = 0.999f;
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds, strict,
                             f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok());
  PipelineConfig lax = FastConfig();
  lax.min_similarity = -1.0f;
  AlignmentPipeline pipeline2;
  auto result2 = pipeline2.Run(f.bench.kg1, f.bench.kg2, f.seeds, lax,
                               f.bench.pretrain_corpus);
  ASSERT_TRUE(result2.ok());
  EXPECT_LT(result->pairs.size(), result2->pairs.size());
}

TEST(PipelineTest, TopTargetsOrderedAndScored) {
  Fixture f = MakeFixture();
  AlignmentPipeline pipeline;
  ASSERT_TRUE(pipeline
                  .Run(f.bench.kg1, f.bench.kg2, f.seeds, FastConfig(),
                       f.bench.pretrain_corpus)
                  .ok());
  const auto top = pipeline.TopTargets(f.seeds.test.front().first, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].similarity, top[i].similarity);
  }
}

TEST(JapeTest, FitsAndUsesBothChannels) {
  Fixture f = MakeFixture();
  baselines::Jape::Config c;
  c.transe.dim = 16;
  c.transe.epochs = 30;
  c.attr_dim = 16;
  baselines::Jape m(c);
  const baselines::AlignInput input{&f.bench.kg1, &f.bench.kg2, &f.seeds};
  ASSERT_TRUE(m.Fit(input).ok());
  EXPECT_EQ(m.name(), "JAPE");
  // Fused embedding = structure block + attribute block.
  EXPECT_EQ(m.embeddings1().dim(1), 16 + 16);
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
}

TEST(JapeTest, RejectsNullInput) {
  baselines::Jape m({});
  EXPECT_FALSE(m.Fit(baselines::AlignInput{}).ok());
}

}  // namespace
}  // namespace sdea::core
