#include "core/embedding_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>

#include "base/fileio.h"

namespace sdea::core {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

EmbeddingStore MakeStore() {
  Tensor emb({3, 2}, {1, 0, 0, 1, 1, 1});
  auto store = EmbeddingStore::Create({"alpha", "beta", "gamma"},
                                      std::move(emb));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

TEST(EmbeddingStoreTest, CreateValidates) {
  EXPECT_FALSE(
      EmbeddingStore::Create({"a"}, Tensor({2, 2})).ok());  // Size mismatch.
  EXPECT_FALSE(
      EmbeddingStore::Create({"a", "a"}, Tensor({2, 2})).ok());  // Dup name.
  EXPECT_TRUE(EmbeddingStore::Create({"a", "b"}, Tensor({2, 2}, 1.0f)).ok());
}

TEST(EmbeddingStoreTest, RowsAreNormalized) {
  const EmbeddingStore store = MakeStore();
  for (int64_t i = 0; i < store.size(); ++i) {
    EXPECT_NEAR(store.embeddings().Row(i).Norm(), 1.0f, 1e-5f);
  }
}

TEST(EmbeddingStoreTest, FindAndGet) {
  const EmbeddingStore store = MakeStore();
  auto id = store.Find("beta");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
  EXPECT_FALSE(store.Find("delta").ok());
  auto row = store.Get("alpha");
  ASSERT_TRUE(row.ok());
  EXPECT_NEAR((*row)[0], 1.0f, 1e-6f);
}

TEST(EmbeddingStoreTest, NearestNeighborsExact) {
  const EmbeddingStore store = MakeStore();
  const auto nn = store.NearestNeighbors(Tensor::FromVector({1, 0.1f}), 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].name, "alpha");
  EXPECT_GE(nn[0].similarity, nn[1].similarity);
}

TEST(EmbeddingStoreTest, NearestNeighborsWithIndex) {
  Rng rng(5);
  const int64_t n = 200;
  Tensor emb = Tensor::RandomNormal({n, 8}, 1.0f, &rng);
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  auto store_r = EmbeddingStore::Create(std::move(names), std::move(emb));
  ASSERT_TRUE(store_r.ok());
  EmbeddingStore store = std::move(store_r).value();
  EXPECT_FALSE(store.has_index());
  store.BuildIndex();
  EXPECT_TRUE(store.has_index());
  // Querying an existing row returns that row first.
  const auto nn = store.NearestNeighbors(store.embeddings().Row(17), 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 17);
  EXPECT_NEAR(nn[0].similarity, 1.0f, 1e-4f);
}

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  const EmbeddingStore store = MakeStore();
  const std::string path = TempPath("sdea_emb_store.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3);
  EXPECT_EQ(loaded->dim(), 2);
  EXPECT_EQ(loaded->names(), store.names());
  for (int64_t i = 0; i < store.embeddings().size(); ++i) {
    EXPECT_EQ(loaded->embeddings()[i], store.embeddings()[i]);
  }
}

TEST(EmbeddingStoreTest, LoadRejectsGarbage) {
  const std::string path = TempPath("sdea_emb_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "nope").ok());
  EXPECT_FALSE(EmbeddingStore::Load(path).ok());
}

TEST(EmbeddingStoreTest, SaveLeavesNoTempResidue) {
  const EmbeddingStore store = MakeStore();
  const std::string path = TempPath("sdea_emb_atomic.bin");
  ASSERT_TRUE(store.Save(path).ok());
  // The atomic-save temp file must be renamed away, never left behind.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(tmp));
  // Overwriting an existing artifact is also atomic and clean.
  ASSERT_TRUE(store.Save(path).ok());
  EXPECT_FALSE(FileExists(tmp));
}

TEST(EmbeddingStoreTest, PartialFileFailsLoadCleanly) {
  // A crash mid-save can no longer produce a partial artifact (temp +
  // rename), but a torn file could still arrive via other channels (e.g.
  // truncated download). Load must reject every prefix cleanly rather
  // than crash or fabricate a store.
  const EmbeddingStore store = MakeStore();
  const std::string path = TempPath("sdea_emb_partial.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string& bytes = *full;
  ASSERT_GT(bytes.size(), 8u);
  const std::string partial_path = TempPath("sdea_emb_partial_cut.bin");
  // Every strict prefix is invalid: cut inside the magic, the header, the
  // name block, and the float payload.
  for (const size_t cut :
       {size_t{4}, size_t{12}, size_t{30}, bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    ASSERT_TRUE(
        WriteStringToFile(partial_path, bytes.substr(0, cut)).ok());
    auto loaded = EmbeddingStore::Load(partial_path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
}

TEST(EmbeddingStoreTest, NearestNeighborsEdgeCases) {
  const EmbeddingStore store = MakeStore();
  const Tensor query = Tensor::FromVector({1, 0.1f});
  // k <= 0 yields an empty answer rather than UB in the partial sort.
  EXPECT_TRUE(store.NearestNeighbors(query, 0).empty());
  EXPECT_TRUE(store.NearestNeighbors(query, -7).empty());
  // k > size clamps.
  EXPECT_EQ(store.NearestNeighbors(query, 100).size(), 3u);
  // An empty store answers nothing, for any query.
  auto empty_r = EmbeddingStore::Create({}, Tensor({0, 2}));
  ASSERT_TRUE(empty_r.ok());
  const EmbeddingStore empty = std::move(empty_r).value();
  EXPECT_EQ(empty.size(), 0);
  EXPECT_TRUE(empty.NearestNeighbors(query, 5).empty());
}

TEST(EmbeddingStoreTest, DimCheckedBeforeEmptyAndKEarlyReturns) {
  // The dim contract must hold in BOTH orders relative to the early
  // returns: a wrong-dim query aborts even when the store is empty or
  // k <= 0 — previously the empty-store return ran first and silently
  // accepted any query shape, while serve's guard rejected it, so the two
  // layers disagreed about the same request.
  auto empty_r = EmbeddingStore::Create({}, Tensor({0, 2}));
  ASSERT_TRUE(empty_r.ok());
  const EmbeddingStore empty = std::move(empty_r).value();
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.dim(), 2);  // Known even with zero rows.
  // Right dim, empty store: clean empty answer.
  EXPECT_TRUE(empty.NearestNeighbors(Tensor::FromVector({1, 0}), 5).empty());
  // Wrong dim dies regardless of which early-return would otherwise fire.
  EXPECT_DEATH(empty.NearestNeighbors(Tensor::FromVector({1, 0, 0}), 5),
               "query.size");
  const EmbeddingStore store = MakeStore();  // 3 rows, dim 2.
  EXPECT_DEATH(store.NearestNeighbors(Tensor::FromVector({1, 0, 0}), 0),
               "query.size");
  EXPECT_DEATH(store.NearestNeighbors(Tensor::FromVector({1}), -7),
               "query.size");
  // A default-constructed store (rank-0 embeddings) reports no dim; only
  // stores built from a rank-2 matrix ever reach NearestNeighbors.
  const EmbeddingStore dimless;
  EXPECT_EQ(dimless.dim(), 0);
}

TEST(EmbeddingStoreTest, EmptyStoreRoundTripKeepsDim) {
  // Encode/Decode must preserve the column dim of an empty [0, d] store so
  // a decoded snapshot enforces the same query contract as the original.
  auto empty_r = EmbeddingStore::Create({}, Tensor({0, 7}));
  ASSERT_TRUE(empty_r.ok());
  const std::string blob = empty_r->Encode();
  auto decoded = EmbeddingStore::Decode(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 0);
  EXPECT_EQ(decoded->dim(), 7);
}

TEST(EmbeddingStoreTest, NearestNeighborsEdgeCasesWithIndex) {
  Rng rng(8);
  Tensor emb = Tensor::RandomNormal({20, 4}, 1.0f, &rng);
  std::vector<std::string> names;
  for (int64_t i = 0; i < 20; ++i) names.push_back("e" + std::to_string(i));
  auto store_r = EmbeddingStore::Create(std::move(names), std::move(emb));
  ASSERT_TRUE(store_r.ok());
  EmbeddingStore store = std::move(store_r).value();
  store.BuildIndex();
  const Tensor query = Tensor::RandomNormal({4}, 1.0f, &rng);
  EXPECT_TRUE(store.NearestNeighbors(query, 0).empty());
  EXPECT_TRUE(store.NearestNeighbors(query, -1).empty());
  EXPECT_LE(store.NearestNeighbors(query, 500).size(), 20u);
}

}  // namespace
}  // namespace sdea::core
