#include "core/embedding_store.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"

namespace sdea::core {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

EmbeddingStore MakeStore() {
  Tensor emb({3, 2}, {1, 0, 0, 1, 1, 1});
  auto store = EmbeddingStore::Create({"alpha", "beta", "gamma"},
                                      std::move(emb));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

TEST(EmbeddingStoreTest, CreateValidates) {
  EXPECT_FALSE(
      EmbeddingStore::Create({"a"}, Tensor({2, 2})).ok());  // Size mismatch.
  EXPECT_FALSE(
      EmbeddingStore::Create({"a", "a"}, Tensor({2, 2})).ok());  // Dup name.
  EXPECT_TRUE(EmbeddingStore::Create({"a", "b"}, Tensor({2, 2}, 1.0f)).ok());
}

TEST(EmbeddingStoreTest, RowsAreNormalized) {
  const EmbeddingStore store = MakeStore();
  for (int64_t i = 0; i < store.size(); ++i) {
    EXPECT_NEAR(store.embeddings().Row(i).Norm(), 1.0f, 1e-5f);
  }
}

TEST(EmbeddingStoreTest, FindAndGet) {
  const EmbeddingStore store = MakeStore();
  auto id = store.Find("beta");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
  EXPECT_FALSE(store.Find("delta").ok());
  auto row = store.Get("alpha");
  ASSERT_TRUE(row.ok());
  EXPECT_NEAR((*row)[0], 1.0f, 1e-6f);
}

TEST(EmbeddingStoreTest, NearestNeighborsExact) {
  const EmbeddingStore store = MakeStore();
  const auto nn = store.NearestNeighbors(Tensor::FromVector({1, 0.1f}), 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].name, "alpha");
  EXPECT_GE(nn[0].similarity, nn[1].similarity);
}

TEST(EmbeddingStoreTest, NearestNeighborsWithIndex) {
  Rng rng(5);
  const int64_t n = 200;
  Tensor emb = Tensor::RandomNormal({n, 8}, 1.0f, &rng);
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  auto store_r = EmbeddingStore::Create(std::move(names), std::move(emb));
  ASSERT_TRUE(store_r.ok());
  EmbeddingStore store = std::move(store_r).value();
  EXPECT_FALSE(store.has_index());
  store.BuildIndex();
  EXPECT_TRUE(store.has_index());
  // Querying an existing row returns that row first.
  const auto nn = store.NearestNeighbors(store.embeddings().Row(17), 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 17);
  EXPECT_NEAR(nn[0].similarity, 1.0f, 1e-4f);
}

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  const EmbeddingStore store = MakeStore();
  const std::string path = TempPath("sdea_emb_store.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3);
  EXPECT_EQ(loaded->dim(), 2);
  EXPECT_EQ(loaded->names(), store.names());
  for (int64_t i = 0; i < store.embeddings().size(); ++i) {
    EXPECT_EQ(loaded->embeddings()[i], store.embeddings()[i]);
  }
}

TEST(EmbeddingStoreTest, LoadRejectsGarbage) {
  const std::string path = TempPath("sdea_emb_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "nope").ok());
  EXPECT_FALSE(EmbeddingStore::Load(path).ok());
}

}  // namespace
}  // namespace sdea::core
