// obs::MetricsRegistry unit tests: stable handle identity, concurrent
// lock-free recording, snapshot consistency, reset, and the Default()
// process-wide instance.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sdea::obs {
namespace {

TEST(ObsRegistryTest, GetCounterIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("queries");
  Counter* b = reg.GetCounter("queries");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_NE(reg.GetCounter("other"), a);
}

TEST(ObsRegistryTest, GetGaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("lr");
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  g->Set(0.5);
  g->Add(0.25);
  EXPECT_DOUBLE_EQ(g->Value(), 0.75);
  EXPECT_EQ(reg.GetGauge("lr"), g);
}

TEST(ObsRegistryTest, GetHistogramIsIdempotentWithSameBounds) {
  MetricsRegistry reg;
  const std::vector<double> bounds = {1.0, 10.0};
  HistogramCell* h = reg.GetHistogram("lat", bounds);
  EXPECT_EQ(reg.GetHistogram("lat", bounds), h);
  h->Record(5.0);
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 1);
  EXPECT_DOUBLE_EQ(snap.min(), 5.0);
  EXPECT_DOUBLE_EQ(snap.max(), 5.0);
  EXPECT_EQ(snap.bucket_counts(), (std::vector<int64_t>{0, 1, 0}));
}

TEST(ObsRegistryTest, EmptyHistogramCellSnapshotsClean) {
  MetricsRegistry reg;
  Histogram snap = reg.GetHistogram("empty", {1.0})->Snapshot();
  EXPECT_EQ(snap.count(), 0);
  EXPECT_DOUBLE_EQ(snap.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.max(), 0.0);
  EXPECT_DOUBLE_EQ(snap.sum(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 0.0);
}

TEST(ObsRegistryTest, ConcurrentCounterIncrementsAllLand) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hits");
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistryTest, ConcurrentHistogramRecordsAllLand) {
  MetricsRegistry reg;
  HistogramCell* h = reg.GetHistogram("lat", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      // Thread t records t+0.5 so every bucket and min/max get traffic.
      const double v = 0.5 + 13.0 * t;
      for (int i = 0; i < kPerThread; ++i) h->Record(v);
    });
  }
  for (auto& t : threads) t.join();
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count());
  EXPECT_DOUBLE_EQ(snap.min(), 0.5);
  EXPECT_DOUBLE_EQ(snap.max(), 0.5 + 13.0 * (kThreads - 1));
}

// Snapshot while writers are live: the copy must be well-formed (buckets
// sum to count; min <= max) even though it is not a consistent cut.
TEST(ObsRegistryTest, SnapshotUnderConcurrentWritesIsWellFormed) {
  MetricsRegistry reg;
  HistogramCell* h = reg.GetHistogram("lat", {1.0, 10.0, 100.0});
  Counter* c = reg.GetCounter("n");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      double v = 0.3 + t;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Record(v);
        c->Increment();
        v = v < 200.0 ? v * 1.7 : 0.3 + t;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot snap = reg.Snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const Histogram& hs = snap.histograms[0].second;
    int64_t total = 0;
    for (int64_t b : hs.bucket_counts()) total += b;
    EXPECT_EQ(total, hs.count());
    if (hs.count() > 0) EXPECT_LE(hs.min(), hs.max());
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(ObsRegistryTest, SnapshotSortsNamesWithinKind) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Increment(2);
  reg.GetCounter("alpha")->Increment(1);
  reg.GetGauge("mid")->Set(7.0);
  reg.GetHistogram("h", {1.0})->Record(0.5);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 1);
}

TEST(ObsRegistryTest, ResetZeroesEverythingHandlesStayValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  HistogramCell* h = reg.GetHistogram("h", {1.0});
  c->Increment(5);
  g->Set(3.0);
  h->Record(0.5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snapshot().count(), 0);
  // Handles still live and recordable.
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

TEST(ObsRegistryTest, DefaultReturnsSameInstance) {
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
  EXPECT_NE(MetricsRegistry::Default(), nullptr);
}

TEST(ObsRegistryTest, SeparateRegistriesAreIsolated) {
  MetricsRegistry a, b;
  a.GetCounter("n")->Increment(4);
  EXPECT_EQ(b.GetCounter("n")->Value(), 0u);
}

}  // namespace
}  // namespace sdea::obs
