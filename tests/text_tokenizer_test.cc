#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sdea::text {
namespace {

std::vector<std::string> SmallCorpus() {
  return {
      "the quick brown fox jumps over the lazy dog",
      "the quick brown cat sleeps",
      "a lazy dog and a quick fox",
      "brown dogs and brown cats",
      "the fox likes the dog",
  };
}

TEST(VocabTest, SpecialTokensFirst) {
  Vocab v;
  EXPECT_EQ(v.size(), kNumSpecialTokens);
  EXPECT_EQ(v.GetToken(kPadId), "[PAD]");
  EXPECT_EQ(v.GetToken(kClsId), "[CLS]");
  EXPECT_EQ(v.GetToken(kUnkId), "[UNK]");
  EXPECT_EQ(v.GetToken(kSepId), "[SEP]");
}

TEST(VocabTest, AddAndLookup) {
  Vocab v;
  const int64_t id = v.AddToken("hello");
  EXPECT_EQ(v.AddToken("hello"), id);  // Idempotent.
  EXPECT_EQ(v.GetId("hello"), id);
  EXPECT_EQ(v.GetId("unknown-token"), kUnkId);
  EXPECT_TRUE(v.Contains("hello"));
  EXPECT_FALSE(v.Contains("nope"));
}

TEST(TokenizerTest, TrainOnEmptyCorpusFails) {
  SubwordTokenizer t;
  EXPECT_FALSE(t.Train({}, TokenizerConfig{}).ok());
  EXPECT_FALSE(t.Train({"", "  "}, TokenizerConfig{}).ok());
}

TEST(TokenizerTest, EncodeKnownWordsWithoutUnk) {
  SubwordTokenizer t;
  ASSERT_TRUE(t.Train(SmallCorpus(), TokenizerConfig{}).ok());
  const auto ids = t.Encode("the quick brown fox");
  EXPECT_FALSE(ids.empty());
  for (int64_t id : ids) EXPECT_NE(id, kUnkId);
}

TEST(TokenizerTest, FrequentWordBecomesSingleToken) {
  SubwordTokenizer t;
  TokenizerConfig c;
  c.num_merges = 256;
  ASSERT_TRUE(t.Train(SmallCorpus(), c).ok());
  // "the" appears often; merges should fuse it into one piece.
  EXPECT_EQ(t.TokenizeWord("the").size(), 1u);
}

TEST(TokenizerTest, UnseenWordSplitsIntoKnownSubwords) {
  SubwordTokenizer t;
  ASSERT_TRUE(t.Train(SmallCorpus(), TokenizerConfig{}).ok());
  // "boxer" is unseen but built of seen characters.
  const auto pieces = t.TokenizeWord("boxer");
  EXPECT_GE(pieces.size(), 1u);
  for (const auto& p : pieces) EXPECT_NE(p, "[UNK]");
}

TEST(TokenizerTest, UnseenCharactersMapToUnk) {
  SubwordTokenizer t;
  ASSERT_TRUE(t.Train(SmallCorpus(), TokenizerConfig{}).ok());
  EXPECT_EQ(t.TokenizeWord("zzz###"), (std::vector<std::string>{"[UNK]"}));
}

TEST(TokenizerTest, EncodeForModelPrependsClsAndTruncates) {
  SubwordTokenizer t;
  ASSERT_TRUE(t.Train(SmallCorpus(), TokenizerConfig{}).ok());
  const auto ids =
      t.EncodeForModel("the quick brown fox jumps over the lazy dog", 5);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], kClsId);
}

TEST(TokenizerTest, ZeroMergesStillEncodes) {
  SubwordTokenizer t;
  TokenizerConfig c;
  c.num_merges = 0;
  ASSERT_TRUE(t.Train(SmallCorpus(), c).ok());
  // Character-level only: every word still tokenizes.
  const auto ids = t.Encode("fox");
  EXPECT_FALSE(ids.empty());
  for (int64_t id : ids) EXPECT_NE(id, kUnkId);
}

TEST(TokenizerTest, DeterministicAcrossRuns) {
  SubwordTokenizer a, b;
  ASSERT_TRUE(a.Train(SmallCorpus(), TokenizerConfig{}).ok());
  ASSERT_TRUE(b.Train(SmallCorpus(), TokenizerConfig{}).ok());
  EXPECT_EQ(a.vocab().size(), b.vocab().size());
  EXPECT_EQ(a.Encode("quick brown dogs"), b.Encode("quick brown dogs"));
}

TEST(TokenizerTest, SaveLoadRoundTrip) {
  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_tok_vocab.txt";
  SubwordTokenizer a;
  ASSERT_TRUE(a.Train(SmallCorpus(), TokenizerConfig{}).ok());
  ASSERT_TRUE(a.Save(path).ok());
  SubwordTokenizer b;
  ASSERT_TRUE(b.Load(path).ok());
  EXPECT_EQ(a.vocab().size(), b.vocab().size());
  EXPECT_EQ(a.Encode("lazy fox"), b.Encode("lazy fox"));
}

TEST(TokenizerTest, MaxWordBytesGuard) {
  SubwordTokenizer t;
  TokenizerConfig c;
  c.max_word_bytes = 8;
  ASSERT_TRUE(t.Train(SmallCorpus(), c).ok());
  EXPECT_EQ(t.TokenizeWord("averyveryverylongword"),
            (std::vector<std::string>{"[UNK]"}));
}

TEST(TokenizerTest, NumbersTokenize) {
  SubwordTokenizer t;
  std::vector<std::string> corpus = SmallCorpus();
  corpus.push_back("born 1935 died 2004 number 42");
  ASSERT_TRUE(t.Train(corpus, TokenizerConfig{}).ok());
  const auto ids = t.Encode("1935");
  EXPECT_FALSE(ids.empty());
  for (int64_t id : ids) EXPECT_NE(id, kUnkId);
}

}  // namespace
}  // namespace sdea::text
