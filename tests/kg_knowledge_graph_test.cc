#include "kg/knowledge_graph.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace sdea::kg {
namespace {

KnowledgeGraph SampleGraph() {
  KnowledgeGraph g;
  const EntityId ronaldo = g.AddEntity("C._Ronaldo");
  const EntityId madrid = g.AddEntity("Real_Madrid_C.F.");
  const EntityId portugal = g.AddEntity("Portugal");
  const RelationId plays_for = g.AddRelation("playsFor");
  const RelationId nationality = g.AddRelation("nationality");
  g.AddRelationalTriple(ronaldo, plays_for, madrid);
  g.AddRelationalTriple(ronaldo, nationality, portugal);
  const AttributeId name = g.AddAttribute("name");
  const AttributeId comment = g.AddAttribute("comment");
  g.AddAttributeTriple(ronaldo, name, "Cristiano Ronaldo");
  g.AddAttributeTriple(ronaldo, comment,
                       "a Portuguese footballer playing in Madrid");
  g.AddAttributeTriple(madrid, name, "Real Madrid");
  return g;
}

TEST(KnowledgeGraphTest, InterningIsIdempotent) {
  KnowledgeGraph g;
  EXPECT_EQ(g.AddEntity("a"), g.AddEntity("a"));
  EXPECT_EQ(g.AddRelation("r"), g.AddRelation("r"));
  EXPECT_EQ(g.AddAttribute("x"), g.AddAttribute("x"));
  EXPECT_EQ(g.num_entities(), 1);
}

TEST(KnowledgeGraphTest, LookupByName) {
  KnowledgeGraph g = SampleGraph();
  auto r = g.FindEntity("Portugal");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(g.entity_name(*r), "Portugal");
  EXPECT_FALSE(g.FindEntity("Messi").ok());
  EXPECT_TRUE(g.FindRelation("playsFor").ok());
  EXPECT_FALSE(g.FindRelation("none").ok());
  EXPECT_TRUE(g.FindAttribute("comment").ok());
  EXPECT_FALSE(g.FindAttribute("none").ok());
}

TEST(KnowledgeGraphTest, NeighborsBothDirections) {
  KnowledgeGraph g = SampleGraph();
  const EntityId ronaldo = *g.FindEntity("C._Ronaldo");
  const EntityId madrid = *g.FindEntity("Real_Madrid_C.F.");
  EXPECT_EQ(g.degree(ronaldo), 2);
  EXPECT_EQ(g.degree(madrid), 1);
  const auto& edges = g.neighbors(madrid);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].neighbor, ronaldo);
  EXPECT_FALSE(edges[0].outgoing);
}

TEST(KnowledgeGraphTest, AttributeTriplesOfEntity) {
  KnowledgeGraph g = SampleGraph();
  const EntityId ronaldo = *g.FindEntity("C._Ronaldo");
  const auto& idx = g.attribute_triples_of(ronaldo);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(g.attribute_triples()[static_cast<size_t>(idx[0])].value,
            "Cristiano Ronaldo");
}

TEST(KnowledgeGraphTest, Statistics) {
  KnowledgeGraph g = SampleGraph();
  const KgStatistics s = g.ComputeStatistics();
  EXPECT_EQ(s.num_entities, 3);
  EXPECT_EQ(s.num_relations, 2);
  EXPECT_EQ(s.num_attributes, 2);
  EXPECT_EQ(s.num_relational_triples, 2);
  EXPECT_EQ(s.num_attribute_triples, 3);
  // All 3 entities have degree in [1,3].
  EXPECT_DOUBLE_EQ(s.degree_le3, 1.0);
  EXPECT_DOUBLE_EQ(s.degree_le10, 1.0);
}

TEST(KnowledgeGraphTest, StatisticsExcludeIsolatedEntities) {
  KnowledgeGraph g;
  g.AddEntity("isolated");
  const KgStatistics s = g.ComputeStatistics();
  EXPECT_DOUBLE_EQ(s.degree_le3, 0.0);
}

TEST(KnowledgeGraphTest, CloneIsDeep) {
  KnowledgeGraph g = SampleGraph();
  KnowledgeGraph c = g.Clone();
  c.AddEntity("new one");
  EXPECT_EQ(g.num_entities(), 3);
  EXPECT_EQ(c.num_entities(), 4);
}

TEST(KnowledgeGraphTest, TsvRoundTrip) {
  const char* dir = std::getenv("TMPDIR");
  const std::string prefix =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_kg_test";
  KnowledgeGraph g = SampleGraph();
  ASSERT_TRUE(g.SaveTsv(prefix).ok());
  auto r = KnowledgeGraph::LoadTsv(prefix);
  ASSERT_TRUE(r.ok());
  const KnowledgeGraph& g2 = *r;
  EXPECT_EQ(g2.num_entities(), g.num_entities());
  EXPECT_EQ(g2.num_relations(), g.num_relations());
  EXPECT_EQ(g2.relational_triples().size(), g.relational_triples().size());
  EXPECT_EQ(g2.attribute_triples().size(), g.attribute_triples().size());
  const EntityId ronaldo = *g2.FindEntity("C._Ronaldo");
  EXPECT_EQ(g2.degree(ronaldo), 2);
}

TEST(KnowledgeGraphTest, LoadMissingFileFails) {
  auto r = KnowledgeGraph::LoadTsv("/tmp/sdea_missing_prefix_xyz");
  EXPECT_FALSE(r.ok());
}

TEST(KnowledgeGraphTest, TsvRoundTripsValuesWithTabsAndNewlines) {
  // Free-text attribute values with embedded field/record separators used
  // to corrupt the TSV row structure (a tab split the value into extra
  // fields that re-joined with spaces; a newline split the row in two).
  const char* dir = std::getenv("TMPDIR");
  const std::string prefix =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_kg_escape_test";
  KnowledgeGraph g;
  const EntityId e = g.AddEntity("e");
  const EntityId f = g.AddEntity("f");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(e, r, f);
  const AttributeId a = g.AddAttribute("desc");
  const std::vector<std::string> values = {
      "plain",
      "tab\tinside",
      "newline\ninside",
      "crlf\r\nboth",
      "backslash \\t literal",
      "\ttabs\tat\tends\t",
      "trailing backslash \\",
  };
  for (const std::string& v : values) g.AddAttributeTriple(e, a, v);

  ASSERT_TRUE(g.SaveTsv(prefix).ok());
  auto loaded = KnowledgeGraph::LoadTsv(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->attribute_triples().size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(loaded->attribute_triples()[i].value, values[i])
        << "value " << i;
  }
}

TEST(KnowledgeGraphTest, SaveTsvRejectsUnescapableNames) {
  // Names are key fields in both TSV files; a tab or newline inside one
  // cannot be written compatibly, so SaveTsv must refuse — not corrupt.
  const char* dir = std::getenv("TMPDIR");
  const std::string prefix =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_kg_badname_test";
  for (const std::string& bad : {"tab\tname", "line\nname", "cr\rname"}) {
    KnowledgeGraph g;
    g.AddEntity(bad);
    const Status s = g.SaveTsv(prefix);
    ASSERT_FALSE(s.ok()) << bad;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  KnowledgeGraph g;
  g.AddEntity("e");
  g.AddRelation("bad\trel");
  EXPECT_EQ(g.SaveTsv(prefix).code(), StatusCode::kInvalidArgument);
  KnowledgeGraph g2;
  g2.AddEntity("e");
  g2.AddAttribute("bad\nattr");
  EXPECT_EQ(g2.SaveTsv(prefix).code(), StatusCode::kInvalidArgument);
}

TEST(KnowledgeGraphTest, OutOfRangeIdsReturnEmptyNotUb) {
  const KnowledgeGraph g = SampleGraph();
  for (const EntityId bad : {EntityId{-1}, EntityId{3}, EntityId{9999}}) {
    EXPECT_TRUE(g.neighbors(bad).empty());
    EXPECT_TRUE(g.attribute_triples_of(bad).empty());
    EXPECT_EQ(g.degree(bad), 0);
  }
}

TEST(AlignmentSeedsTest, SplitRatios) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  for (int i = 0; i < 100; ++i) pairs.emplace_back(i, i);
  const AlignmentSeeds s = AlignmentSeeds::Split(pairs, 3);
  EXPECT_EQ(s.train.size(), 20u);
  EXPECT_EQ(s.valid.size(), 10u);
  EXPECT_EQ(s.test.size(), 70u);
  EXPECT_EQ(s.total(), 100);
}

TEST(AlignmentSeedsTest, SplitIsPartition) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  for (int i = 0; i < 50; ++i) pairs.emplace_back(i, 100 + i);
  const AlignmentSeeds s = AlignmentSeeds::Split(pairs, 5);
  std::set<EntityId> seen;
  for (const auto* split : {&s.train, &s.valid, &s.test}) {
    for (const auto& [a, b] : *split) {
      EXPECT_TRUE(seen.insert(a).second);  // No duplicates across splits.
      EXPECT_EQ(b, a + 100);               // Pairing preserved.
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(AlignmentSeedsTest, DeterministicForSeed) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  for (int i = 0; i < 30; ++i) pairs.emplace_back(i, i);
  const AlignmentSeeds a = AlignmentSeeds::Split(pairs, 7);
  const AlignmentSeeds b = AlignmentSeeds::Split(pairs, 7);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

}  // namespace
}  // namespace sdea::kg
