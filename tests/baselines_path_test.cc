// The path-based baseline group (RSN4EA / IPTransE) and the name-
// initialized GCN (RDGCN-lite).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/iptranse.h"
#include "baselines/rsn4ea.h"
#include "baselines/gcn_align.h"
#include "datagen/generator.h"

namespace sdea::baselines {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
  AlignInput input() const {
    return AlignInput{&bench.kg1, &bench.kg2, &seeds};
  }
};

Fixture MakeFixture(datagen::NameMode mode = datagen::NameMode::kShared) {
  datagen::GeneratorConfig g;
  g.seed = 66;
  g.num_matched = 120;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = mode;
  g.min_degree = 2;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5,
                                      /*train=*/3, /*valid=*/1, /*test=*/6);
  return f;
}

void ExpectFiniteEmbeddings(const EntityAligner& aligner) {
  for (const Tensor* t : {&aligner.embeddings1(), &aligner.embeddings2()}) {
    ASSERT_GT(t->size(), 0);
    for (int64_t i = 0; i < t->size(); ++i) {
      ASSERT_TRUE(std::isfinite((*t)[i]));
    }
  }
}

TEST(Rsn4EaTest, FitsAndEvaluates) {
  Fixture f = MakeFixture();
  Rsn4Ea::Config c;
  c.dim = 16;
  c.epochs = 3;
  c.walks_per_entity = 2;
  Rsn4Ea m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  ExpectFiniteEmbeddings(m);
  EXPECT_EQ(m.name(), "RSN4EA");
  EXPECT_EQ(m.embeddings1().dim(0), f.bench.kg1.num_entities());
  EXPECT_EQ(m.embeddings1().dim(1), 16);
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
}

TEST(Rsn4EaTest, SeedSharedSlotsIdentical) {
  // Seed-aligned entities share an embedding slot, so their vectors match
  // exactly after training.
  Fixture f = MakeFixture();
  Rsn4Ea::Config c;
  c.dim = 12;
  c.epochs = 2;
  c.walks_per_entity = 1;
  Rsn4Ea m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  const auto& [a, b] = f.seeds.train.front();
  EXPECT_LT(tmath::SquaredL2Distance(m.embeddings1().Row(a),
                                     m.embeddings2().Row(b)),
            1e-10f);
}

TEST(Rsn4EaTest, RejectsNullInput) {
  Rsn4Ea m({});
  EXPECT_FALSE(m.Fit(AlignInput{}).ok());
}

TEST(IpTransETest, FitsAndEvaluates) {
  Fixture f = MakeFixture();
  IpTransE::Config c;
  c.transe.dim = 16;
  c.iterations = 2;
  c.epochs_per_iteration = 10;
  c.path_samples_per_epoch = 300;
  IpTransE m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  ExpectFiniteEmbeddings(m);
  EXPECT_EQ(m.name(), "IPTransE");
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
}

TEST(IpTransETest, RejectsNullInput) {
  IpTransE m({});
  EXPECT_FALSE(m.Fit(AlignInput{}).ok());
}

TEST(RdgcnLiteTest, NameInitBeatsRandomInitOnSharedNames) {
  Fixture f = MakeFixture(datagen::NameMode::kShared);
  auto base = GcnConfig();
  base.epochs = 40;
  GcnAlign random_init(base);
  ASSERT_TRUE(random_init.Fit(f.input()).ok());

  auto cfg = RdgcnLiteConfig();
  cfg.epochs = 40;
  GcnAlign name_init(cfg);
  ASSERT_TRUE(name_init.Fit(f.input()).ok());
  EXPECT_EQ(name_init.name(), "RDGCN (lite)");

  const double random_h1 = random_init.Evaluate(f.seeds.test).hits_at_1;
  const double name_h1 = name_init.Evaluate(f.seeds.test).hits_at_1;
  // Name features carry direct alignment signal on shared-name data
  // (Table III/IV: RDGCN/HGCN far above GCN).
  EXPECT_GT(name_h1, random_h1);
}

}  // namespace
}  // namespace sdea::baselines
