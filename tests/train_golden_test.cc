// Golden numerics tests for the train::Trainer migration: the final
// embeddings of every migrated model must be bitwise-identical to what the
// pre-refactor hand-rolled loops produced at the same seeds. The pinned
// hashes below were captured from the legacy loops at commit 8b496dd (the
// last commit before the migration) with tests/golden_capture.cc — the
// exact fixtures and configs of this file. If a Trainer change breaks one
// of these, it changed the RNG stream or the update order somewhere.
#include <cstdint>
#include <gtest/gtest.h>

#include "baselines/iptranse.h"
#include "baselines/mtranse.h"
#include "baselines/transe.h"
#include "baselines/transe_align.h"
#include "baselines/transedge.h"
#include "core/sdea.h"
#include "datagen/generator.h"

namespace sdea {
namespace {

uint64_t HashTensor(const Tensor& t) {
  uint64_t h = 1469598103934665603ULL;
  const auto* b = reinterpret_cast<const unsigned char*>(t.data());
  const int64_t n = t.size() * static_cast<int64_t>(sizeof(float));
  for (int64_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
  baselines::AlignInput input() {
    return baselines::AlignInput{&bench.kg1, &bench.kg2, &seeds};
  }
};

Fixture MakeBaselineFixture() {
  datagen::GeneratorConfig g;
  g.seed = 55;
  g.num_matched = 120;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.min_degree = 2;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5,
                                      /*train=*/3, /*valid=*/1, /*test=*/6);
  return f;
}

TEST(TrainGoldenTest, TransEMatchesLegacyLoop) {
  Fixture f = MakeBaselineFixture();
  baselines::TransEConfig c;
  c.dim = 16;
  c.epochs = 10;
  baselines::TransE model(f.bench.kg1.num_entities(),
                          f.bench.kg1.num_relations(), c);
  const std::vector<int32_t> identity;
  model.Train(f.bench.kg1.relational_triples(), identity);
  EXPECT_EQ(HashTensor(model.EntityEmbeddings(identity)),
            0x455b7a550e696ef8ULL);
}

TEST(TrainGoldenTest, MTransEMatchesLegacyLoop) {
  // Covers the no-negative-sampling TransE stream (two independent models)
  // plus the hand-rolled linear-mapping task.
  Fixture f = MakeBaselineFixture();
  baselines::MTransE::Config c;
  c.transe.dim = 16;
  c.transe.epochs = 8;
  c.mapping_epochs = 30;
  baselines::MTransE m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(HashTensor(m.embeddings1()), 0xaa47e28d3b9c6e98ULL);
  EXPECT_EQ(HashTensor(m.embeddings2()), 0x4590160074647dadULL);
}

TEST(TrainGoldenTest, TransEdgeMatchesLegacyLoop) {
  // Covers the cumulative-shuffle autograd minibatch path (Adam + the
  // extracted MarginHingeLoss) in the seed-sharing joint space.
  Fixture f = MakeBaselineFixture();
  baselines::TransEdge::Config c;
  c.dim = 16;
  c.epochs = 6;
  c.batch_size = 128;
  baselines::TransEdge m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(HashTensor(m.embeddings1()), 0x29029c8ac8d162a8ULL);
  EXPECT_EQ(HashTensor(m.embeddings2()), 0x082b268fdc8482e6ULL);
}

TEST(TrainGoldenTest, IpTransEMatchesLegacyLoop) {
  // Covers the two interleaved RNG streams of IPTransE: the TransE epoch
  // (OnEpochBegin hook, model RNG) and the 2-hop path sampling (TrainBatch,
  // dedicated path RNG), plus the soft-alignment rounds between Trainer
  // invocations.
  Fixture f = MakeBaselineFixture();
  baselines::IpTransE::Config c;
  c.transe.dim = 16;
  c.path_samples_per_epoch = 500;
  c.iterations = 2;
  c.epochs_per_iteration = 8;
  baselines::IpTransE m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(HashTensor(m.embeddings1()), 0x5186ed15577de25dULL);
  EXPECT_EQ(HashTensor(m.embeddings2()), 0x91c757fc374cea97ULL);
}

TEST(TrainGoldenTest, SdeaCoreMatchesLegacyLoops) {
  // Covers both SDEA fine-tuning phases end to end: the text-encoder
  // pre-training (fresh-per-epoch shuffle over the replicated seed list,
  // candidate negatives, early stop + restore-best) and the relation
  // module's joint training (cumulative shuffle, eval on valid Hits@1).
  datagen::GeneratorConfig g;
  g.seed = 77;
  g.num_matched = 100;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.pretrain_sentences = 300;
  datagen::GeneratedBenchmark bench = datagen::BenchmarkGenerator().Generate(g);
  kg::AlignmentSeeds seeds = kg::AlignmentSeeds::Split(bench.ground_truth, 5);

  core::SdeaConfig c;
  c.attribute.text.encoder.dim = 24;
  c.attribute.text.encoder.ff_dim = 48;
  c.attribute.text.encoder.num_layers = 1;
  c.attribute.text.encoder.max_len = 40;
  c.attribute.text.out_dim = 24;
  c.attribute.text.max_epochs = 4;
  c.attribute.text.patience = 2;
  c.attribute.text.negatives_per_pair = 2;
  c.attribute.text.ssl_epochs = 1;
  c.relation.hidden_dim = 16;
  c.relation.joint_dim = 16;
  c.relation.max_epochs = 4;
  c.relation.patience = 2;
  core::SdeaModel model;
  auto report =
      model.Fit(bench.kg1, bench.kg2, seeds, c, bench.pretrain_corpus);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(HashTensor(model.attribute_embeddings1()), 0x1ab9106927da0f1fULL);
  EXPECT_EQ(HashTensor(model.embeddings1()), 0x4d106aae1ae04bf5ULL);
  EXPECT_EQ(HashTensor(model.embeddings2()), 0xbb5e7549daebfda1ULL);
}

}  // namespace
}  // namespace sdea
