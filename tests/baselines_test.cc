// Baseline re-implementations: each must fit on a small generated pair,
// expose sane embeddings, and show its characteristic strength/weakness
// (e.g. BERT-INT-lite collapsing on opaque names).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bert_int_lite.h"
#include "baselines/cea.h"
#include "baselines/gcn_align.h"
#include "baselines/mtranse.h"
#include "baselines/transe_align.h"
#include "datagen/generator.h"

namespace sdea::baselines {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
  AlignInput input() const {
    return AlignInput{&bench.kg1, &bench.kg2, &seeds};
  }
};

Fixture MakeFixture(datagen::NameMode mode = datagen::NameMode::kShared) {
  datagen::GeneratorConfig g;
  g.seed = 55;
  g.num_matched = 120;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = mode;
  g.min_degree = 2;  // Keep the structural baselines fed.
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5,
                                      /*train=*/3, /*valid=*/1, /*test=*/6);
  return f;
}

void ExpectFiniteEmbeddings(const EntityAligner& aligner) {
  for (const Tensor* t : {&aligner.embeddings1(), &aligner.embeddings2()}) {
    ASSERT_GT(t->size(), 0);
    for (int64_t i = 0; i < t->size(); ++i) {
      ASSERT_TRUE(std::isfinite((*t)[i]));
    }
  }
}

TEST(TransETest, TrainingReducesTripleDistance) {
  Fixture f = MakeFixture();
  TransEConfig c;
  c.dim = 16;
  c.epochs = 30;
  TransE model(f.bench.kg1.num_entities(), f.bench.kg1.num_relations(), c);
  const std::vector<int32_t> identity;
  // Average ||h + r - t|| over triples, before vs after training.
  auto avg_distance = [&]() {
    const Tensor e = model.EntityEmbeddings(identity);
    double sum = 0.0;
    for (const auto& t : f.bench.kg1.relational_triples()) {
      const Tensor h = e.Row(t.head);
      const Tensor tt = e.Row(t.tail);
      sum += tmath::SquaredL2Distance(h, tt);
    }
    return sum / f.bench.kg1.relational_triples().size();
  };
  const double before = avg_distance();
  model.Train(f.bench.kg1.relational_triples(), identity);
  // Embeddings must have moved (head/tail of linked triples get related).
  const double after = avg_distance();
  EXPECT_NE(before, after);
}

TEST(MTransETest, FitsAndEvaluates) {
  Fixture f = MakeFixture();
  MTransE::Config c;
  c.transe.dim = 16;
  c.transe.epochs = 30;
  c.mapping_epochs = 50;
  MTransE m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  ExpectFiniteEmbeddings(m);
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
  EXPECT_EQ(m.name(), "MTransE");
}

TEST(TransEAlignTest, SeedSharingBeatsChanceOnHits10) {
  Fixture f = MakeFixture();
  TransEAlign::Config c;
  c.transe.dim = 24;
  c.transe.epochs = 60;
  TransEAlign m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  ExpectFiniteEmbeddings(m);
  const auto metrics = m.Evaluate(f.seeds.test);
  // Chance H@10 ~ 10/126 = 8%.
  EXPECT_GT(metrics.hits_at_10, 12.0);
}

TEST(BootEaTest, BootstrappingAddsPairs) {
  Fixture f = MakeFixture();
  TransEConfig tc;
  tc.dim = 24;
  tc.epochs = 50;
  TransEAlign::Config c = BootEaConfig(tc);
  c.bootstrap_threshold = 0.5f;
  TransEAlign m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(m.name(), "BootEA");
  EXPECT_GE(m.bootstrapped_pairs(), 0);
  ExpectFiniteEmbeddings(m);
}

TEST(GcnAlignTest, AllFlavoursFit) {
  Fixture f = MakeFixture();
  for (GcnAlign::Config c :
       {GcnConfig(), GcnAlignConfig(), GatAlignConfig()}) {
    c.epochs = 30;
    c.feature_dim = 16;
    c.hidden_dim = 16;
    c.out_dim = 16;
    GcnAlign m(c);
    ASSERT_TRUE(m.Fit(f.input()).ok()) << c.display_name;
    ExpectFiniteEmbeddings(m);
    const auto metrics = m.Evaluate(f.seeds.test);
    EXPECT_EQ(metrics.num_queries,
              static_cast<int64_t>(f.seeds.test.size()));
  }
}

TEST(GcnAlignTest, LearnsStructureAboveChance) {
  Fixture f = MakeFixture();
  GcnAlign::Config c = GcnConfig();
  c.epochs = 80;
  GcnAlign m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_GT(metrics.hits_at_10, 12.0);
}

core::TextEncoderConfig TinyTextConfig() {
  core::TextEncoderConfig c;
  c.encoder.dim = 16;
  c.encoder.num_layers = 1;
  c.encoder.ff_dim = 32;
  c.encoder.max_len = 16;
  c.out_dim = 16;
  c.max_epochs = 6;
  c.patience = 3;
  c.ssl_epochs = 1;
  c.pretrain.epochs = 6;
  return c;
}

TEST(BertIntLiteTest, StrongOnSharedNames) {
  Fixture f = MakeFixture(datagen::NameMode::kShared);
  BertIntLite::Config c;
  c.text = TinyTextConfig();
  BertIntLite m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_GT(metrics.hits_at_10, 40.0);
}

TEST(BertIntLiteTest, CollapsesOnOpaqueIds) {
  // The paper's Table V: with Wikidata Q-ids as names, the name-only
  // baseline "does not even work".
  Fixture f = MakeFixture(datagen::NameMode::kOpaqueIds);
  BertIntLite::Config c;
  c.text = TinyTextConfig();
  BertIntLite m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_LT(metrics.hits_at_1, 10.0);
}

TEST(CeaTest, FusedScoresAndStableMatching) {
  Fixture f = MakeFixture();
  Cea::Config c;
  c.gcn.epochs = 30;
  Cea m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(m.fused_scores().dim(0), f.bench.kg1.num_entities());
  EXPECT_EQ(m.fused_scores().dim(1), f.bench.kg2.num_entities());
  const auto emb_metrics = m.Evaluate(f.seeds.test);
  const double stable_h1 = m.StableHits1(f.seeds.test);
  // With near-identical names, string similarity should carry CEA high.
  EXPECT_GT(emb_metrics.hits_at_1, 50.0);
  // Stable matching must not collapse relative to greedy ranking.
  EXPECT_GE(stable_h1, emb_metrics.hits_at_1 - 10.0);
}

TEST(BaselinesTest, NullInputRejected) {
  AlignInput bad;
  MTransE mt({});
  EXPECT_FALSE(mt.Fit(bad).ok());
  TransEAlign ta({});
  EXPECT_FALSE(ta.Fit(bad).ok());
  GcnAlign ga(GcnConfig());
  EXPECT_FALSE(ga.Fit(bad).ok());
  BertIntLite bi({});
  EXPECT_FALSE(bi.Fit(bad).ok());
  Cea cea({});
  EXPECT_FALSE(cea.Fit(bad).ok());
}

}  // namespace
}  // namespace sdea::baselines
