#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace sdea::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

core::EmbeddingStore MakeStore(int64_t n, int64_t d, uint64_t salt) {
  Rng rng(salt);
  Tensor embeddings = Tensor::RandomNormal({n, d}, 1.0f, &rng);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    names.push_back("e" + std::to_string(i));
  }
  auto store = core::EmbeddingStore::Create(std::move(names),
                                            std::move(embeddings));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

// A deterministic per-row encoder: row i depends only on texts[i] (FNV-1a
// hashed character features), so encoding a text inside any batch yields
// the same bits as encoding it alone — the BatchEncoderFn contract.
Tensor HashEncode(const std::vector<std::string>& texts, int64_t dim) {
  Tensor out({static_cast<int64_t>(texts.size()), dim});
  for (size_t i = 0; i < texts.size(); ++i) {
    uint64_t h = 1469598103934665603ull;
    for (char ch : texts[i]) {
      h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
      out.at(static_cast<int64_t>(i), static_cast<int64_t>(h % dim)) +=
          1.0f + static_cast<float>((h >> 32) % 5) * 0.25f;
    }
  }
  return out;
}

void ExpectSameNeighbors(
    const std::vector<Neighbor>& got, const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].id, want[i].id);
    // Exact equality: the batched path must run the identical per-row
    // computation as a serial call, down to the float bits.
    EXPECT_EQ(got[i].similarity, want[i].similarity);
  }
}

TEST(AlignmentServerTest, NoSnapshotFailsCleanly) {
  AlignmentServer server;
  auto result = server.AlignEmbedding(Tensor::FromVector({1.0f, 0.0f}), 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.stats().failed_queries, 1u);
}

TEST(AlignmentServerTest, EmbeddingQueryMatchesDirectStoreCall) {
  AlignmentServer server;
  server.SwapSnapshot(MakeStore(200, 16, 7));
  Rng rng(1);
  const Tensor query = Tensor::RandomNormal({16}, 1.0f, &rng);
  auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);
  const auto expected = snap->store.NearestNeighbors(query, 5);
  auto result = server.AlignEmbedding(query, 5);
  ASSERT_TRUE(result.ok());
  ExpectSameNeighbors(*result, expected);
  EXPECT_EQ(server.stats().embedding_queries, 1u);
}

TEST(AlignmentServerTest, KEdgeCases) {
  AlignmentServer server;
  server.SwapSnapshot(MakeStore(10, 8, 7));
  Rng rng(2);
  const Tensor query = Tensor::RandomNormal({8}, 1.0f, &rng);
  auto zero = server.AlignEmbedding(query, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
  auto negative = server.AlignEmbedding(query, -4);
  ASSERT_TRUE(negative.ok());
  EXPECT_TRUE(negative->empty());
  auto clamped = server.AlignEmbedding(query, 1000);
  ASSERT_TRUE(clamped.ok());
  EXPECT_LE(clamped->size(), 10u);
}

TEST(AlignmentServerTest, DimMismatchFailsOnlyThatRequest) {
  AlignmentServer server;
  server.SwapSnapshot(MakeStore(50, 8, 3));
  Rng rng(3);
  const Tensor good = Tensor::RandomNormal({8}, 1.0f, &rng);
  const Tensor bad = Tensor::RandomNormal({5}, 1.0f, &rng);
  auto good_future = server.AlignEmbeddingAsync(good, 3);
  auto bad_future = server.AlignEmbeddingAsync(bad, 3);
  auto good_result = good_future.get();
  auto bad_result = bad_future.get();
  ASSERT_TRUE(good_result.ok());
  EXPECT_EQ(good_result->size(), 3u);
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlignmentServerTest, TextQueryWithoutEncoderFails) {
  AlignmentServer server;
  server.SwapSnapshot(MakeStore(10, 4, 1));
  auto result = server.AlignText("anything", 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlignmentServerTest, TextQueriesHitTheCache) {
  std::atomic<int> encoder_calls{0};
  std::atomic<int> texts_encoded{0};
  auto encoder = [&](const std::vector<std::string>& texts) {
    encoder_calls.fetch_add(1);
    texts_encoded.fetch_add(static_cast<int>(texts.size()));
    return HashEncode(texts, 16);
  };
  AlignmentServer server(ServerOptions{}, encoder);
  server.SwapSnapshot(MakeStore(100, 16, 5));

  auto first = server.AlignText("Berlin City", 3);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 9; ++i) {
    auto repeat = server.AlignText("Berlin City", 3);
    ASSERT_TRUE(repeat.ok());
    ExpectSameNeighbors(*repeat, *first);
  }
  EXPECT_EQ(texts_encoded.load(), 1);  // Encoded once, then cached.
  const StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 9u);
  EXPECT_EQ(stats.encoded_texts, 1u);
  EXPECT_EQ(stats.text_queries, 10u);
}

TEST(AlignmentServerTest, NormalizationUnifiesSpellings) {
  std::atomic<int> texts_encoded{0};
  auto encoder = [&](const std::vector<std::string>& texts) {
    texts_encoded.fetch_add(static_cast<int>(texts.size()));
    return HashEncode(texts, 16);
  };
  AlignmentServer server(ServerOptions{}, encoder);
  server.SwapSnapshot(MakeStore(100, 16, 5));
  auto a = server.AlignText("Berlin  City", 3);
  auto b = server.AlignText("  berlin city ", 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameNeighbors(*b, *a);
  EXPECT_EQ(texts_encoded.load(), 1);  // One cache entry for both.
}

TEST(AlignmentServerTest, ConcurrentClientsMatchSerialAnswers) {
  // N client threads hammer the server with a mix of text and embedding
  // queries; every answer must be bitwise-equal to the serial
  // one-at-a-time answer computed up front. This is the determinism
  // contract of the whole request path: batching, caching, and pool
  // sharding must not change a single float bit.
  constexpr int64_t kDim = 16;
  constexpr int64_t kK = 5;
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 60;

  auto encoder = [](const std::vector<std::string>& texts) {
    return HashEncode(texts, kDim);
  };
  ServerOptions options;
  options.batcher.max_batch_size = 16;
  options.batcher.max_wait = microseconds(300);
  AlignmentServer server(options, encoder);
  server.SwapSnapshot(MakeStore(400, kDim, 11));

  // Shared query pool: texts overlap across clients so the cache and the
  // in-batch dedup both get exercised.
  std::vector<std::string> texts;
  std::vector<Tensor> embeddings;
  Rng rng(17);
  for (int i = 0; i < 24; ++i) {
    texts.push_back("attribute value " + std::to_string(i));
    embeddings.push_back(Tensor::RandomNormal({kDim}, 1.0f, &rng));
  }

  // Serial reference answers against the same pinned snapshot.
  auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);
  std::vector<std::vector<Neighbor>> expected_text, expected_embedding;
  for (const std::string& text : texts) {
    const Tensor encoded = encoder({text});
    expected_text.push_back(
        snap->store.NearestNeighbors(encoded.Row(0), kK));
  }
  for (const Tensor& e : embeddings) {
    expected_embedding.push_back(snap->store.NearestNeighbors(e, kK));
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const size_t q = static_cast<size_t>(c * 31 + i * 7) % texts.size();
        if ((c + i) % 2 == 0) {
          auto result = server.AlignText(texts[q], kK);
          ASSERT_TRUE(result.ok());
          ExpectSameNeighbors(*result, expected_text[q]);
        } else {
          auto result = server.AlignEmbedding(embeddings[q], kK);
          ASSERT_TRUE(result.ok());
          ExpectSameNeighbors(*result, expected_embedding[q]);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.queries,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.failed_queries, 0u);
  EXPECT_EQ(stats.batched_queries, stats.queries);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.text_queries);
  uint64_t hist_total = 0;
  for (uint64_t c : stats.batch_size_hist) hist_total += c;
  EXPECT_EQ(hist_total, stats.batches);
}

TEST(AlignmentServerTest, HotSwapDuringQueriesServesOneCoherentSnapshot) {
  constexpr int64_t kDim = 8;
  constexpr int64_t kK = 4;
  AlignmentServer server;

  // Two deterministic snapshot generations and their expected answers.
  Rng rng(23);
  std::vector<Tensor> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(Tensor::RandomNormal({kDim}, 1.0f, &rng));
  }
  server.SwapSnapshot(MakeStore(150, kDim, 40));
  auto snap_a = server.snapshot();
  server.SwapSnapshot(MakeStore(150, kDim, 41));
  auto snap_b = server.snapshot();
  std::vector<std::vector<Neighbor>> expected_a, expected_b;
  for (const Tensor& q : queries) {
    expected_a.push_back(snap_a->store.NearestNeighbors(q, kK));
    expected_b.push_back(snap_b->store.NearestNeighbors(q, kK));
  }

  auto matches = [](const std::vector<Neighbor>& got,
                    const std::vector<Neighbor>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].name != want[i].name || got[i].id != want[i].id ||
          got[i].similarity != want[i].similarity) {
        return false;
      }
    }
    return true;
  };

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    for (int round = 0; round < 30; ++round) {
      server.SwapSnapshot(MakeStore(150, kDim, round % 2 == 0 ? 40 : 41));
      std::this_thread::sleep_for(microseconds(200));
    }
    done.store(true);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      size_t q = static_cast<size_t>(c);
      while (!done.load()) {
        q = (q + 1) % queries.size();
        auto result = server.AlignEmbedding(queries[q], kK);
        // Every query issued during a swap must still succeed...
        ASSERT_TRUE(result.ok());
        // ...and must equal one generation's answer exactly — a batch can
        // never straddle two snapshots.
        ASSERT_TRUE(matches(*result, expected_a[q]) ||
                    matches(*result, expected_b[q]));
      }
    });
  }
  swapper.join();
  for (std::thread& t : clients) t.join();
  EXPECT_GE(server.stats().snapshot_swaps, 32u);
  EXPECT_EQ(server.stats().failed_queries, 0u);
}

TEST(AlignmentServerTest, LoadSnapshotServesSavedArtifact) {
  const std::string path = "/tmp/sdea_serve_server_artifact.bin";
  const core::EmbeddingStore original = MakeStore(60, 8, 9);
  SDEA_CHECK_OK(original.Save(path));

  AlignmentServer server;
  auto version = server.LoadSnapshot(path);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  EXPECT_TRUE(server.snapshot()->store.has_index());

  Rng rng(4);
  const Tensor query = Tensor::RandomNormal({8}, 1.0f, &rng);
  auto result = server.AlignEmbedding(query, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  std::remove(path.c_str());
}

TEST(AlignmentServerTest, ReconfigureBatcherKeepsServing) {
  AlignmentServer server;
  server.SwapSnapshot(MakeStore(50, 8, 2));
  Rng rng(5);
  const Tensor query = Tensor::RandomNormal({8}, 1.0f, &rng);
  auto before = server.AlignEmbedding(query, 3);
  ASSERT_TRUE(before.ok());
  server.ReconfigureBatcher({.max_batch_size = 1,
                             .max_wait = microseconds(0)});
  auto after = server.AlignEmbedding(query, 3);
  ASSERT_TRUE(after.ok());
  ExpectSameNeighbors(*after, *before);
}

}  // namespace
}  // namespace sdea::serve
