#include "baselines/hman.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generator.h"

namespace sdea::baselines {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
  AlignInput input() const {
    return AlignInput{&bench.kg1, &bench.kg2, &seeds};
  }
};

Fixture MakeFixture() {
  datagen::GeneratorConfig g;
  g.seed = 77;
  g.num_matched = 120;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.min_degree = 2;
  g.schema_shift = 0.0;  // Shared schema names feed the FNN channels.
  g.kg2_schema_scale = 1.0;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5,
                                      /*train=*/3, /*valid=*/1, /*test=*/6);
  return f;
}

TEST(HmanTest, FitsAndConcatenatesChannels) {
  Fixture f = MakeFixture();
  Hman::Config c;
  c.gcn.epochs = 30;
  c.epochs = 30;
  Hman m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(m.name(), "HMAN");
  // GCN out (default 64) + 2 channels of 32.
  EXPECT_EQ(m.embeddings1().dim(1), 64 + 2 * 32);
  EXPECT_EQ(m.embeddings1().dim(0), f.bench.kg1.num_entities());
  for (int64_t i = 0; i < m.embeddings1().size(); ++i) {
    ASSERT_TRUE(std::isfinite(m.embeddings1()[i]));
  }
}

TEST(HmanTest, MultiAspectBeatsStructureOnly) {
  // With a shared schema, the attribute/relation count channels carry
  // signal the topology-only GCN lacks (the paper's Table III/IV shows
  // HMAN above GCN-Align).
  Fixture f = MakeFixture();
  auto gcn_config = GcnConfig();
  gcn_config.epochs = 60;
  GcnAlign gcn(gcn_config);
  ASSERT_TRUE(gcn.Fit(f.input()).ok());

  Hman::Config c;
  c.gcn.epochs = 60;
  c.epochs = 60;
  Hman hman(c);
  ASSERT_TRUE(hman.Fit(f.input()).ok());

  const double gcn_h10 = gcn.Evaluate(f.seeds.test).hits_at_10;
  const double hman_h10 = hman.Evaluate(f.seeds.test).hits_at_10;
  EXPECT_GE(hman_h10, gcn_h10 * 0.9);  // At least competitive...
  // ...and the extra channels are not degenerate.
  EXPECT_GT(hman_h10, 10.0);
}

TEST(HmanTest, RejectsNullInput) {
  Hman m({});
  EXPECT_FALSE(m.Fit(AlignInput{}).ok());
}

}  // namespace
}  // namespace sdea::baselines
