// No-match handling in the core decision layer: the StableMatch kUnmatched
// sentinel under N > M, dangling-aware MatchingAccuracy, and the pipeline's
// calibrated abstain threshold on benchmarks with dangling entities.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "core/alignment_pipeline.h"
#include "core/stable_matching.h"
#include "datagen/generator.h"
#include "eval/abstention.h"
#include "eval/metrics.h"

namespace sdea::core {
namespace {

Tensor Scores(std::vector<std::vector<float>> rows) {
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t m = n > 0 ? static_cast<int64_t>(rows[0].size()) : 0;
  Tensor t({n, m});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      t[i * m + j] = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  return t;
}

// ---- kUnmatched under N > M ------------------------------------------------

TEST(StableMatchTest, MoreSourcesThanTargetsLeavesUnmatchedSentinels) {
  // 4 sources compete for 2 targets: exactly 2 end kUnmatched, and no
  // consumer may index a target array with those entries.
  const Tensor scores = Scores({{0.9f, 0.1f},
                                {0.8f, 0.7f},
                                {0.3f, 0.6f},
                                {0.2f, 0.1f}});
  const std::vector<int64_t> match = StableMatch(scores);
  ASSERT_EQ(match.size(), 4u);
  int64_t unmatched = 0;
  std::set<int64_t> taken;
  for (int64_t m : match) {
    if (m == kUnmatched) {
      ++unmatched;
      continue;
    }
    ASSERT_GE(m, 0);
    ASSERT_LT(m, 2);  // Never an index outside the target side.
    EXPECT_TRUE(taken.insert(m).second);
  }
  EXPECT_EQ(unmatched, 2);
}

// ---- MatchingAccuracy: dangling vs skip (regression) -----------------------

TEST(MatchingAccuracyTest, AbstainOnDanglingScoresAsCorrect) {
  // Pre-fix, gold -2 was conflated with "skip" and this returned 0.0 over
  // zero queries; a dangling query is now counted, and abstaining on it is
  // the right answer.
  EXPECT_DOUBLE_EQ(
      MatchingAccuracy({kUnmatched}, {eval::kGoldDangling}), 100.0);
}

TEST(MatchingAccuracyTest, ForcedMatchOnDanglingScoresAsWrong) {
  EXPECT_DOUBLE_EQ(MatchingAccuracy({3}, {eval::kGoldDangling}), 0.0);
}

TEST(MatchingAccuracyTest, SkipStaysExcluded) {
  // One correct matchable query + one skip: still 100%.
  EXPECT_DOUBLE_EQ(MatchingAccuracy({1, 5}, {1, eval::kGoldSkip}), 100.0);
}

TEST(MatchingAccuracyTest, MixedPopulations) {
  const std::vector<int64_t> match = {0, kUnmatched, 2, kUnmatched};
  const std::vector<int64_t> gold = {0, eval::kGoldDangling, 1,
                                     eval::kGoldSkip};
  // correct, abstain-correct, mismatch; skip excluded -> 2/3.
  EXPECT_NEAR(MatchingAccuracy(match, gold), 200.0 / 3.0, 1e-9);
}

// ---- Decision layer at 0% / 50% / 100% dangling ----------------------------

// Synthetic score matrices where matchable sources peak at their gold
// column with a clear margin and dangling sources are flat/low, so one
// fixed rule separates them exactly.
TEST(DecisionLayerTest, ThresholdAcrossDanglingMixes) {
  eval::AbstainThreshold rule;
  rule.enabled = true;
  rule.min_similarity = 0.5f;

  struct Mix {
    std::vector<std::vector<float>> rows;
    std::vector<int64_t> gold;
  };
  const Mix mixes[] = {
      // 0% dangling.
      {{{0.9f, 0.1f}, {0.2f, 0.8f}}, {0, 1}},
      // 50% dangling.
      {{{0.9f, 0.1f}, {0.3f, 0.2f}}, {0, eval::kGoldDangling}},
      // 100% dangling.
      {{{0.3f, 0.2f}, {0.1f, 0.4f}},
       {eval::kGoldDangling, eval::kGoldDangling}},
  };
  for (const Mix& mix : mixes) {
    const Tensor scores = Scores(mix.rows);
    std::vector<int64_t> match = StableMatch(scores);
    eval::ApplyAbstainThreshold(scores, rule, &match);
    const eval::DecisionMetrics m = eval::EvaluateDecisions(match, mix.gold);
    // The rule is exact on these mixes: no mismatches, no forced matches,
    // no misses.
    EXPECT_EQ(m.mismatched, 0);
    EXPECT_EQ(m.forced_on_dangling, 0);
    EXPECT_EQ(m.missed, 0);
    EXPECT_EQ(m.correct, m.matchable);
    EXPECT_EQ(m.abstain_correct, m.dangling);
    EXPECT_DOUBLE_EQ(MatchingAccuracy(match, mix.gold), 100.0);
  }
}

// ---- Pipeline integration --------------------------------------------------

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
};

Fixture MakeDanglingFixture(double dangling_frac) {
  datagen::GeneratorConfig g;
  g.seed = 88;
  g.num_matched = 150;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.pretrain_sentences = 300;
  g.dangling_frac_kg1 = dangling_frac;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5);
  return f;
}

PipelineConfig FastConfig() {
  PipelineConfig c;
  c.model.attribute.text.encoder.dim = 24;
  c.model.attribute.text.encoder.num_layers = 1;
  c.model.attribute.text.encoder.ff_dim = 48;
  c.model.attribute.text.encoder.max_len = 40;
  c.model.attribute.text.out_dim = 24;
  c.model.attribute.text.max_epochs = 12;
  c.model.attribute.text.patience = 4;
  c.model.attribute.text.negatives_per_pair = 3;
  c.model.attribute.text.ssl_epochs = 1;
  c.model.relation.max_epochs = 12;
  c.model.relation.patience = 4;
  return c;
}

// The dangling-aware gold over all KG1 sources: test pairs keep their
// target, the given dangling sources demand abstention, everything else is
// skipped.
std::vector<int64_t> DanglingGold(const Fixture& f,
                                  const std::vector<kg::EntityId>& dangling) {
  std::vector<int64_t> gold(static_cast<size_t>(f.bench.kg1.num_entities()),
                            eval::kGoldSkip);
  for (const auto& [a, b] : f.seeds.test) {
    gold[static_cast<size_t>(a)] = b;
  }
  for (kg::EntityId e : dangling) {
    gold[static_cast<size_t>(e)] = eval::kGoldDangling;
  }
  return gold;
}

TEST(PipelineNoMatchTest, DecisionsVectorIsMergeShaped) {
  Fixture f = MakeDanglingFixture(0.3);
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds,
                             FastConfig(), f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(static_cast<int64_t>(result->decisions.size()),
            f.bench.kg1.num_entities());
  const int64_t m = f.bench.kg2.num_entities();
  for (int64_t d : result->decisions) {
    EXPECT_TRUE(d == kUnmatched || (d >= 0 && d < m));
  }
  EXPECT_TRUE(result->threshold.enabled);  // The fixed floor, wrapped.
}

TEST(PipelineNoMatchTest, InjectedThresholdCanAbstainEverything) {
  Fixture f = MakeDanglingFixture(0.0);
  PipelineConfig config = FastConfig();
  config.threshold.enabled = true;
  config.threshold.min_similarity = 2.0f;  // Above any cosine.
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds, config,
                             f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pairs.empty());
  for (int64_t d : result->decisions) EXPECT_EQ(d, kUnmatched);
  // Every test query abstained: decision accuracy collapses to 0 but the
  // run is well-defined end to end.
  EXPECT_DOUBLE_EQ(result->matching_accuracy, 0.0);
  EXPECT_EQ(result->decision_metrics.missed,
            result->decision_metrics.matchable);
}

TEST(PipelineNoMatchTest, CalibratedAbstainBeatsForcedMatchingOnDangling) {
  Fixture f = MakeDanglingFixture(0.3);
  // Forced matching: greedy per-source argmax, accept every decision. The
  // threshold question is well-posed for argmax decisions (score IS the
  // row top-1); Gale–Shapley already abstains structurally under N > M,
  // which would conflate two effects in this comparison.
  PipelineConfig forced_config = FastConfig();
  forced_config.use_stable_matching = false;
  forced_config.min_similarity = -std::numeric_limits<float>::infinity();
  AlignmentPipeline pipeline;
  auto result = pipeline.Run(f.bench.kg1, f.bench.kg2, f.seeds,
                             forced_config, f.bench.pretrain_corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Even dangling sources calibrate; odd ones are held out for scoring.
  std::vector<kg::EntityId> dev_dangling, held_dangling;
  for (size_t i = 0; i < f.bench.dangling_kg1.size(); ++i) {
    (i % 2 == 0 ? dev_dangling : held_dangling)
        .push_back(f.bench.dangling_kg1[i]);
  }
  const std::vector<int64_t> gold = DanglingGold(f, held_dangling);
  const eval::DecisionMetrics forced =
      eval::EvaluateDecisions(result->decisions, gold);
  ASSERT_GT(forced.dangling, 0);

  // Calibrate on dev = valid seed pairs + the dev half of the dangling
  // sources, then re-threshold the SAME model's decisions.
  Tensor e1 = pipeline.model().embeddings1();
  Tensor e2 = pipeline.model().embeddings2();
  tmath::L2NormalizeRowsInPlace(&e1);
  tmath::L2NormalizeRowsInPlace(&e2);
  const Tensor scores = tmath::MatmulTransposeB(e1, e2);
  const int64_t m = scores.dim(1);

  std::vector<int64_t> dev_sources, dev_gold;
  for (const auto& [a, b] : f.seeds.valid) {
    dev_sources.push_back(a);
    dev_gold.push_back(b);
  }
  for (kg::EntityId e : dev_dangling) {
    dev_sources.push_back(e);
    dev_gold.push_back(eval::kGoldDangling);
  }
  Tensor dev({static_cast<int64_t>(dev_sources.size()), m});
  for (size_t i = 0; i < dev_sources.size(); ++i) {
    dev.SetRow(static_cast<int64_t>(i), scores.Row(dev_sources[i]));
  }
  // The dev set is dangling-heavy relative to the traffic being scored
  // (few held-out seeds, many labeled danglings): declare the deployment
  // prior so the sweep optimizes for the right class balance.
  eval::CalibrationOptions options;
  options.dangling_prior =
      static_cast<double>(held_dangling.size()) /
      static_cast<double>(f.seeds.test.size() + held_dangling.size());
  const eval::AbstainThreshold rule =
      eval::CalibrateAbstainThreshold(dev, dev_gold, options);
  ASSERT_TRUE(rule.enabled);

  std::vector<int64_t> decisions = result->decisions;
  eval::ApplyAbstainThreshold(scores, rule, &decisions);
  const eval::DecisionMetrics abstain =
      eval::EvaluateDecisions(decisions, gold);

  // The calibrated rule abstains on dangling sources it was never shown
  // (the held-out half) without giving up the matchable queries wholesale.
  EXPECT_GT(abstain.abstain_correct, forced.abstain_correct);
  EXPECT_LT(abstain.forced_on_dangling, forced.forced_on_dangling);
  EXPECT_GE(abstain.precision, forced.precision);
  EXPECT_GE(abstain.f1, forced.f1);
}

}  // namespace
}  // namespace sdea::core
