// base/logging tests: level parsing, the SDEA_LOG_LEVEL environment hook,
// sequential thread ids, and the emitted stderr line format (captured by
// redirecting fd 2 into a temp file).
#include "base/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <unistd.h>

#include "base/fileio.h"
#include "base/strings.h"

namespace sdea {
namespace {

TEST(LoggingTest, ParseLogLevelNamesAndNumbers) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("  info \n", &level));  // Whitespace trimmed.
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbageAndLeavesOutput) {
  LogLevel level = LogLevel::kWarning;
  for (const char* bad : {"", "verbose", "4", "-1", "infoo"}) {
    EXPECT_FALSE(ParseLogLevel(bad, &level)) << bad;
    EXPECT_EQ(level, LogLevel::kWarning) << bad;
  }
}

TEST(LoggingTest, InitLogLevelFromEnvAppliesAndIgnoresGarbage) {
  const LogLevel before = GetLogLevel();
  ::setenv("SDEA_LOG_LEVEL", "error", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Unparsable values leave the level unchanged.
  ::setenv("SDEA_LOG_LEVEL", "shouty", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::unsetenv("SDEA_LOG_LEVEL");
  InitLogLevelFromEnv();  // Unset: unchanged.
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, ThreadIdIsStableAndDistinctAcrossThreads) {
  const uint32_t mine = ThreadId();
  EXPECT_GT(mine, 0u);
  EXPECT_EQ(ThreadId(), mine);  // Stable within a thread.
  uint32_t other1 = 0, other2 = 0;
  std::thread t1([&] { other1 = ThreadId(); });
  t1.join();
  std::thread t2([&] { other2 = ThreadId(); });
  t2.join();
  EXPECT_NE(other1, mine);
  EXPECT_NE(other2, mine);
  EXPECT_NE(other1, other2);
}

// Redirects fd 2 into a temp file around `fn` and returns what was
// written. Works regardless of gtest's own stderr use because the
// redirect window only spans the log calls.
std::string CaptureStderr(const std::function<void()>& fn) {
  std::fflush(stderr);
  const std::string path =
      ::testing::TempDir() + "/sdea_logging_capture.txt";
  const int saved = ::dup(2);
  EXPECT_GE(saved, 0);
  FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  ::dup2(::fileno(f), 2);
  fn();
  std::fflush(stderr);
  ::dup2(saved, 2);
  ::close(saved);
  std::fclose(f);
  auto contents = ReadFileToString(path);
  std::remove(path.c_str());
  return contents.ok() ? *contents : std::string();
}

TEST(LoggingTest, LogMessageFormatHasTimeThreadAndLevel) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  const std::string out = CaptureStderr(
      [] { SDEA_LOG_INFO("hello from the logging test"); });
  SetLogLevel(before);
  // "[HH:MM:SS tN INFO] message".
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(" INFO] hello from the logging test\n"),
            std::string::npos)
      << out;
  const std::string tid_token = StrFormat(" t%u ", ThreadId());
  EXPECT_NE(out.find(tid_token), std::string::npos) << out;
  // Timestamp shape: "[HH:MM:SS" — colons at fixed offsets.
  ASSERT_GE(out.size(), 9u);
  EXPECT_EQ(out[3], ':');
  EXPECT_EQ(out[6], ':');
}

TEST(LoggingTest, MessagesBelowLevelAreDropped) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  const std::string out = CaptureStderr([] {
    SDEA_LOG_DEBUG("dropped-debug");
    SDEA_LOG_INFO("dropped-info");
    SDEA_LOG_WARNING("dropped-warning");
    SDEA_LOG_ERROR("kept-error");
  });
  SetLogLevel(before);
  EXPECT_EQ(out.find("dropped-debug"), std::string::npos) << out;
  EXPECT_EQ(out.find("dropped-info"), std::string::npos) << out;
  EXPECT_EQ(out.find("dropped-warning"), std::string::npos) << out;
  EXPECT_NE(out.find("ERROR] kept-error"), std::string::npos) << out;
}

}  // namespace
}  // namespace sdea
