// The train→serve bridge: freshly trained embeddings become a served
// snapshot (hot-swapped, versioned), optionally with an on-disk artifact a
// separate server process can LoadAndSwap.
#include "train/serve_bridge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/snapshot.h"

namespace sdea::train {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

Tensor MakeEmbeddings(int64_t n, int64_t d, float scale) {
  Tensor t({n, d});
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = scale * static_cast<float>((i % 7) - 3);
  }
  return t;
}

std::vector<std::string> MakeNames(int64_t n) {
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  return names;
}

TEST(ServeBridgeTest, PublishSwapsVersionedSnapshot) {
  serve::SnapshotManager manager;
  EXPECT_FALSE(manager.has_snapshot());

  PublishOptions opts;
  opts.build_index = false;
  auto v1 = PublishEmbeddings(MakeNames(12), MakeEmbeddings(12, 4, 1.0f),
                              &manager, opts);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1u);
  ASSERT_TRUE(manager.has_snapshot());
  EXPECT_EQ(manager.version(), 1u);
  auto snap = manager.Current();
  EXPECT_EQ(snap->store.size(), 12);
  EXPECT_EQ(snap->store.dim(), 4);
  EXPECT_EQ(snap->store.names()[3], "e3");

  // Re-publishing (the per-epoch refresh path) bumps the version while an
  // in-flight reader keeps its pinned snapshot alive.
  auto v2 = PublishEmbeddings(MakeNames(12), MakeEmbeddings(12, 4, 2.0f),
                              &manager, opts);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(manager.version(), 2u);
  EXPECT_EQ(snap->version, 1u);  // The pinned snapshot is untouched.
}

TEST(ServeBridgeTest, PublishedStoreAnswersQueries) {
  serve::SnapshotManager manager;
  auto v = PublishEmbeddings(MakeNames(30), MakeEmbeddings(30, 8, 1.0f),
                             &manager);  // Default: index built.
  ASSERT_TRUE(v.ok());
  auto snap = manager.Current();
  const Tensor query = snap->store.embeddings().Row(5);
  auto nn = snap->store.NearestNeighbors(query, 3);
  ASSERT_FALSE(nn.empty());
  // The entity's own (normalized) row is its nearest neighbor.
  EXPECT_EQ(nn[0].name, snap->store.names()[5]);
}

TEST(ServeBridgeTest, ArtifactRoundTripsThroughLoadAndSwap) {
  const std::string path = TempPath("sdea_bridge_artifact.bin");
  std::remove(path.c_str());

  serve::SnapshotManager trainer_side;
  PublishOptions opts;
  opts.artifact_path = path;
  opts.build_index = false;
  ASSERT_TRUE(PublishEmbeddings(MakeNames(10), MakeEmbeddings(10, 4, 1.0f),
                                &trainer_side, opts)
                  .ok());

  // A separately running server picks the artifact up from disk.
  serve::SnapshotManager server_side;
  auto v = server_side.LoadAndSwap(path, /*build_index=*/false);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto served = server_side.Current();
  auto trained = trainer_side.Current();
  ASSERT_EQ(served->store.size(), trained->store.size());
  EXPECT_EQ(served->store.names(), trained->store.names());
  for (int64_t i = 0; i < served->store.embeddings().size(); ++i) {
    // Load re-normalizes the already-normalized rows, which may wiggle the
    // low bit; the values are otherwise identical.
    EXPECT_FLOAT_EQ(served->store.embeddings()[i],
                    trained->store.embeddings()[i]);
  }
}

TEST(ServeBridgeTest, RejectsMismatchedInput) {
  serve::SnapshotManager manager;
  auto r = PublishEmbeddings(MakeNames(5), MakeEmbeddings(4, 4, 1.0f),
                             &manager);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(manager.has_snapshot());
}

}  // namespace
}  // namespace sdea::train
