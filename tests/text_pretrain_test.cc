#include "text/pretrain.h"

#include <gtest/gtest.h>

namespace sdea::text {
namespace {

// A corpus where "sun"/"sol" and "moon"/"luna" always co-occur (a tiny
// comparable corpus), while "rock" floats alone.
std::vector<std::string> ParallelCorpus() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("sun sol bright day");
    corpus.push_back("moon luna dark night");
    corpus.push_back("rock stone heavy");
  }
  return corpus;
}

TEST(PretrainTest, RequiresTrainedTokenizer) {
  SubwordTokenizer tok;
  CooccurrencePretrainer pre;
  auto r = pre.Train({"a b"}, tok, PretrainConfig{});
  EXPECT_FALSE(r.ok());
}

TEST(PretrainTest, EmptyCorpusFails) {
  SubwordTokenizer tok;
  ASSERT_TRUE(tok.Train({"a b c"}, TokenizerConfig{}).ok());
  CooccurrencePretrainer pre;
  EXPECT_FALSE(pre.Train({}, tok, PretrainConfig{}).ok());
}

TEST(PretrainTest, OutputShapeMatchesVocab) {
  SubwordTokenizer tok;
  auto corpus = ParallelCorpus();
  ASSERT_TRUE(tok.Train(corpus, TokenizerConfig{}).ok());
  PretrainConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 4;
  CooccurrencePretrainer pre;
  auto r = pre.Train(corpus, tok, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->shape(),
            (std::vector<int64_t>{tok.vocab().size(), 16}));
}

TEST(PretrainTest, CooccurringWordsEndUpCloser) {
  SubwordTokenizer tok;
  auto corpus = ParallelCorpus();
  TokenizerConfig tc;
  tc.num_merges = 512;
  ASSERT_TRUE(tok.Train(corpus, tc).ok());
  PretrainConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 24;
  CooccurrencePretrainer pre;
  auto r = pre.Train(corpus, tok, cfg);
  ASSERT_TRUE(r.ok());
  const Tensor& table = *r;
  auto vec = [&](const std::string& w) {
    return table.Row(tok.vocab().GetId(w));
  };
  // Words from the same sentences must be closer than words from different
  // sentences.
  const float same = tmath::CosineSimilarity(vec("sun"), vec("sol"));
  const float diff = tmath::CosineSimilarity(vec("sun"), vec("luna"));
  EXPECT_GT(same, diff);
}

TEST(PretrainTest, Deterministic) {
  SubwordTokenizer tok;
  auto corpus = ParallelCorpus();
  ASSERT_TRUE(tok.Train(corpus, TokenizerConfig{}).ok());
  PretrainConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 3;
  CooccurrencePretrainer pre;
  auto a = pre.Train(corpus, tok, cfg);
  auto b = pre.Train(corpus, tok, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]);
  }
}

}  // namespace
}  // namespace sdea::text
