#include "kg/binary_io.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"
#include "datagen/generator.h"

namespace sdea::kg {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(BinaryIoTest, RoundTripGeneratedGraph) {
  datagen::GeneratorConfig cfg;
  cfg.num_matched = 200;
  const auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  const std::string path = TempPath("sdea_kg_roundtrip.bin");
  ASSERT_TRUE(SaveBinary(bench.kg1, path).ok());

  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_entities(), bench.kg1.num_entities());
  EXPECT_EQ(loaded->num_relations(), bench.kg1.num_relations());
  EXPECT_EQ(loaded->num_attributes(), bench.kg1.num_attributes());
  ASSERT_EQ(loaded->relational_triples().size(),
            bench.kg1.relational_triples().size());
  ASSERT_EQ(loaded->attribute_triples().size(),
            bench.kg1.attribute_triples().size());
  // Spot-check exact content (names and triples preserve order).
  for (EntityId e = 0; e < loaded->num_entities(); e += 37) {
    EXPECT_EQ(loaded->entity_name(e), bench.kg1.entity_name(e));
  }
  EXPECT_EQ(loaded->relational_triples()[0],
            bench.kg1.relational_triples()[0]);
  EXPECT_EQ(loaded->attribute_triples().back(),
            bench.kg1.attribute_triples().back());
}

TEST(BinaryIoTest, RejectsGarbage) {
  const std::string path = TempPath("sdea_kg_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "definitely not a kg").ok());
  EXPECT_FALSE(LoadBinary(path).ok());
}

TEST(BinaryIoTest, RejectsTruncation) {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);
  const std::string path = TempPath("sdea_kg_trunc.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Chop off the tail and expect a clean error, not a crash.
  for (size_t cut : {contents->size() - 3, contents->size() / 2, size_t{9}}) {
    ASSERT_TRUE(
        WriteStringToFile(path, contents->substr(0, cut)).ok());
    EXPECT_FALSE(LoadBinary(path).ok()) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, EmptyGraphRoundTrips) {
  KnowledgeGraph g;
  const std::string path = TempPath("sdea_kg_empty.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entities(), 0);
  EXPECT_TRUE(loaded->relational_triples().empty());
}

TEST(BinaryIoTest, ValuesWithTabsAndNewlinesSurvive) {
  // The binary format, unlike TSV, is content-agnostic.
  KnowledgeGraph g;
  const EntityId e = g.AddEntity("e");
  const AttributeId a = g.AddAttribute("comment");
  const std::string nasty = "line1\nline2\tand\ttabs \"quotes\"";
  g.AddAttributeTriple(e, a, nasty);
  const std::string path = TempPath("sdea_kg_nasty.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->attribute_triples()[0].value, nasty);
}

}  // namespace
}  // namespace sdea::kg
