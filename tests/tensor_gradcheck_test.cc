// Numerical gradient checks for every differentiable op, plus composed
// networks. These are the load-bearing correctness tests of the autograd
// engine: each op's analytic backward is compared against central finite
// differences.
#include "tensor/gradcheck.h"

#include <gtest/gtest.h>

#include <functional>

#include "nn/loss.h"

namespace sdea {
namespace {

// Builds a scalar loss from `body`, which maps parameter nodes to an
// output node; the loss is SumAll(output) unless the body already returns
// a scalar.
struct OpCheck {
  std::vector<Parameter*> params;
  std::function<NodeId(Graph*)> body;

  float Run(float eps = 1e-2f) {
    auto loss_value = [&]() {
      Graph g;
      NodeId out = body(&g);
      NodeId loss = (g.Value(out).size() == 1) ? out : g.SumAll(out);
      return g.Value(loss)[0];
    };
    auto backward = [&]() {
      Graph g;
      NodeId out = body(&g);
      NodeId loss = (g.Value(out).size() == 1) ? out : g.SumAll(out);
      g.Backward(loss);
    };
    return MaxGradCheckError(loss_value, backward, params, eps,
                             /*max_coords_per_param=*/24);
  }
};

Parameter MakeParam(const std::string& name, std::vector<int64_t> shape,
                    uint64_t seed) {
  Rng rng(seed);
  return Parameter(name, Tensor::RandomNormal(std::move(shape), 0.7f, &rng));
}

constexpr float kTol = 5e-2f;  // float32 + eps=1e-2 central differences.

TEST(GradCheckTest, Matmul) {
  Parameter a = MakeParam("a", {3, 4}, 1);
  Parameter b = MakeParam("b", {4, 2}, 2);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              return g->Matmul(g->Param(&a), g->Param(&b));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, Transpose) {
  Parameter a = MakeParam("a", {3, 4}, 3);
  Parameter b = MakeParam("b", {3, 2}, 4);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              return g->Matmul(g->Transpose(g->Param(&a)), g->Param(&b));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, AddSubMul) {
  Parameter a = MakeParam("a", {2, 3}, 5);
  Parameter b = MakeParam("b", {2, 3}, 6);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              NodeId x = g->Param(&a);
              NodeId y = g->Param(&b);
              return g->Mul(g->Add(x, y), g->Sub(x, y));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, ScaleAddConst) {
  Parameter a = MakeParam("a", {5}, 7);
  OpCheck c{{&a}, [&](Graph* g) {
              return g->AddConst(g->Scale(g->Param(&a), -2.5f), 3.0f);
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, Sigmoid) {
  Parameter a = MakeParam("a", {2, 4}, 8);
  OpCheck c{{&a}, [&](Graph* g) { return g->Sigmoid(g->Param(&a)); }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, Tanh) {
  Parameter a = MakeParam("a", {2, 4}, 9);
  OpCheck c{{&a}, [&](Graph* g) { return g->Tanh(g->Param(&a)); }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, AddRowBroadcast) {
  Parameter a = MakeParam("a", {3, 4}, 10);
  Parameter b = MakeParam("b", {4}, 11);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              return g->AddRowBroadcast(g->Param(&a), g->Param(&b));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, MulColBroadcast) {
  Parameter a = MakeParam("a", {3, 4}, 12);
  Parameter w = MakeParam("w", {3}, 13);
  OpCheck c{{&a, &w}, [&](Graph* g) {
              return g->MulColBroadcast(g->Param(&a), g->Param(&w));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, ConcatAndSlice) {
  Parameter a = MakeParam("a", {2, 3}, 14);
  Parameter b = MakeParam("b", {2, 2}, 15);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              NodeId cat = g->ConcatCols(g->Param(&a), g->Param(&b));
              return g->SliceCols(cat, 1, 4);
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, ConcatRowsAndSliceRows) {
  Parameter a = MakeParam("a", {2, 3}, 16);
  Parameter b = MakeParam("b", {1, 3}, 17);
  OpCheck c{{&a, &b}, [&](Graph* g) {
              NodeId cat = g->ConcatRows(g->Param(&a), g->Param(&b));
              return g->SliceRows(cat, 1, 3);
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, MeanRowsMeanAll) {
  Parameter a = MakeParam("a", {4, 3}, 18);
  OpCheck c{{&a}, [&](Graph* g) { return g->MeanRows(g->Param(&a)); }};
  EXPECT_LT(c.Run(), kTol);
  OpCheck c2{{&a}, [&](Graph* g) { return g->MeanAll(g->Param(&a)); }};
  EXPECT_LT(c2.Run(), kTol);
}

TEST(GradCheckTest, SoftmaxRows) {
  Parameter a = MakeParam("a", {3, 5}, 19);
  Parameter w = MakeParam("w", {3, 5}, 20);
  // Weighted sum so the gradient is not uniform across the row.
  OpCheck c{{&a, &w}, [&](Graph* g) {
              return g->Mul(g->SoftmaxRows(g->Param(&a)), g->Param(&w));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, LayerNormRows) {
  Parameter a = MakeParam("a", {3, 6}, 21);
  Parameter gain = MakeParam("g", {6}, 22);
  Parameter bias = MakeParam("b", {6}, 23);
  Parameter w = MakeParam("w", {3, 6}, 24);
  OpCheck c{{&a, &gain, &bias, &w}, [&](Graph* g) {
              NodeId ln = g->LayerNormRows(g->Param(&a), g->Param(&gain),
                                           g->Param(&bias));
              return g->Mul(ln, g->Param(&w));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, L2NormalizeRows) {
  Parameter a = MakeParam("a", {3, 4}, 25);
  Parameter w = MakeParam("w", {3, 4}, 26);
  OpCheck c{{&a, &w}, [&](Graph* g) {
              return g->Mul(g->L2NormalizeRows(g->Param(&a)), g->Param(&w));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, Gather) {
  Parameter t = MakeParam("t", {5, 3}, 27);
  Parameter w = MakeParam("w", {4, 3}, 28);
  OpCheck c{{&t, &w}, [&](Graph* g) {
              NodeId got = g->Gather(g->Param(&t), {4, 0, 0, 2});
              return g->Mul(got, g->Param(&w));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, SparseMatmul) {
  CsrMatrix adj = CsrMatrix::FromTriplets(
      3, 4,
      {{0, 0, 0.5f}, {0, 3, -1.0f}, {1, 1, 2.0f}, {2, 2, 1.5f}, {2, 0, 1.0f}});
  Parameter x = MakeParam("x", {4, 3}, 29);
  OpCheck c{{&x}, [&](Graph* g) {
              return g->SparseMatmul(&adj, g->Param(&x));
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, MarginRankingLoss) {
  Parameter a = MakeParam("a", {4, 5}, 30);
  Parameter p = MakeParam("p", {4, 5}, 31);
  Parameter n = MakeParam("n", {4, 5}, 32);
  OpCheck c{{&a, &p, &n}, [&](Graph* g) {
              return nn::MarginRankingLoss(g, g->Param(&a), g->Param(&p),
                                           g->Param(&n), 1.0f);
            }};
  EXPECT_LT(c.Run(), kTol);
}

TEST(GradCheckTest, ComposedMlpLikeNetwork) {
  Parameter w0 = MakeParam("w0", {4, 6}, 33);
  Parameter b0 = MakeParam("b0", {6}, 34);
  Parameter w1 = MakeParam("w1", {6, 2}, 35);
  Parameter x = MakeParam("x", {3, 4}, 36);
  OpCheck c{{&w0, &b0, &w1, &x}, [&](Graph* g) {
              NodeId h = g->Relu(g->AddRowBroadcast(
                  g->Matmul(g->Param(&x), g->Param(&w0)), g->Param(&b0)));
              return g->Matmul(h, g->Param(&w1));
            }};
  EXPECT_LT(c.Run(), 8e-2f);  // ReLU kinks inflate the numeric error.
}

}  // namespace
}  // namespace sdea
