#include "core/ann_index.h"

#include <gtest/gtest.h>

#include <set>

#include "core/candidate_generator.h"

namespace sdea::core {
namespace {

TEST(IvfIndexTest, SmallDataExactlyMatchesBruteForce) {
  // With one probe covering everything (clusters=1), IVF equals exact.
  Rng rng(1);
  Tensor tgt = Tensor::RandomNormal({30, 8}, 1.0f, &rng);
  Tensor src = Tensor::RandomNormal({5, 8}, 1.0f, &rng);
  IvfOptions opt;
  opt.num_clusters = 1;
  opt.num_probes = 1;
  const auto approx = GenerateCandidatesApprox(src, tgt, 5, opt);
  const auto exact = GenerateCandidates(src, tgt, 5);
  EXPECT_EQ(approx, exact);
}

TEST(IvfIndexTest, HighRecallAtModerateProbes) {
  Rng rng(2);
  Tensor tgt = Tensor::RandomNormal({1000, 16}, 1.0f, &rng);
  Tensor src = Tensor::RandomNormal({50, 16}, 1.0f, &rng);
  IvfOptions opt;
  opt.num_probes = 8;
  const auto approx = GenerateCandidatesApprox(src, tgt, 10, opt);
  const auto exact = GenerateCandidates(src, tgt, 10);
  int64_t hits = 0, total = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    const std::set<int64_t> a(approx[i].begin(), approx[i].end());
    for (int64_t id : exact[i]) {
      ++total;
      if (a.count(id)) ++hits;
    }
  }
  const double recall = static_cast<double>(hits) / total;
  EXPECT_GT(recall, 0.6);  // Random data is the hardest case for IVF.
}

TEST(IvfIndexTest, Top1OfEasyClustersIsExact) {
  // Well-separated clusters: the nearest neighbor of a near-duplicate
  // query must be found even with 1 probe.
  Rng rng(3);
  Tensor tgt({40, 4});
  for (int64_t i = 0; i < 40; ++i) {
    Tensor row({4});
    row[i % 4] = 10.0f;
    for (int64_t j = 0; j < 4; ++j) {
      row[j] += static_cast<float>(rng.Normal(0.0, 0.1));
    }
    tgt.SetRow(i, row);
  }
  IvfOptions opt;
  opt.num_clusters = 4;
  opt.num_probes = 1;
  const IvfIndex index(tgt, opt);
  for (int64_t q = 0; q < 40; ++q) {
    Tensor query = tgt.Row(q);
    // Normalize query as the index does.
    Tensor qm({1, 4});
    qm.SetRow(0, query);
    tmath::L2NormalizeRowsInPlace(&qm);
    const auto got = index.Query(qm.data(), 4, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], q);  // Its own row is the top hit.
  }
}

TEST(IvfIndexTest, KCappedByCandidatesScanned) {
  Rng rng(4);
  Tensor tgt = Tensor::RandomNormal({20, 4}, 1.0f, &rng);
  IvfOptions opt;
  opt.num_clusters = 10;
  opt.num_probes = 1;
  const IvfIndex index(tgt, opt);
  Tensor q = Tensor::RandomNormal({1, 4}, 1.0f, &rng);
  tmath::L2NormalizeRowsInPlace(&q);
  const auto got = index.Query(q.data(), 4, 50);
  EXPECT_LE(got.size(), 20u);
  std::set<int64_t> distinct(got.begin(), got.end());
  EXPECT_EQ(distinct.size(), got.size());
}

TEST(IvfIndexTest, DefaultClusterHeuristic) {
  Rng rng(5);
  Tensor tgt = Tensor::RandomNormal({400, 8}, 1.0f, &rng);
  const IvfIndex index(tgt, IvfOptions{});
  EXPECT_EQ(index.num_clusters(), 20);  // sqrt(400).
}

TEST(IvfIndexTest, ReseededEmptyClusterOwnsItsCell) {
  // 15 identical rows along e0 plus one along e1. Both initial seeds land
  // in the e0 group (all its rows are identical), so the first assignment
  // sends every row to cluster 0 and cluster 1 is reseeded during the
  // centroid update. With kmeans_iters = 1 that reseed is the *final*
  // centroid state; before the final-assignment fix, cells_ was built from
  // the stale pre-reseed assignment, leaving the reseeded cluster with an
  // empty cell and single-probe queries with zero results.
  Tensor rows({16, 4});
  for (int64_t i = 0; i < 15; ++i) {
    rows.SetRow(i, Tensor::FromVector({1.0f, 0.0f, 0.0f, 0.0f}));
  }
  rows.SetRow(15, Tensor::FromVector({0.0f, 1.0f, 0.0f, 0.0f}));
  IvfOptions opt;
  opt.num_clusters = 2;
  opt.num_probes = 1;
  opt.kmeans_iters = 1;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    opt.seed = seed;
    const IvfIndex index(rows, opt);
    Tensor q({1, 4});
    q.SetRow(0, Tensor::FromVector({1.0f, 0.0f, 0.0f, 0.0f}));
    const auto got = index.Query(q.data(), 4, 5);
    ASSERT_EQ(got.size(), 5u) << "seed " << seed;
    for (int64_t id : got) EXPECT_LT(id, 15);  // All from the e0 group.
  }
}

TEST(IvfIndexTest, KNonPositiveReturnsEmpty) {
  Rng rng(7);
  Tensor tgt = Tensor::RandomNormal({50, 4}, 1.0f, &rng);
  const IvfIndex index(tgt, IvfOptions{});
  Tensor q = Tensor::RandomNormal({1, 4}, 1.0f, &rng);
  tmath::L2NormalizeRowsInPlace(&q);
  // k <= 0 previously made the partial_sort middle iterator negative (UB);
  // now it degrades to "no candidates".
  EXPECT_TRUE(index.Query(q.data(), 4, 0).empty());
  EXPECT_TRUE(index.Query(q.data(), 4, -3).empty());
  const auto batch = index.QueryBatch(Tensor::RandomNormal({5, 4}, 1.0f,
                                                           &rng), 0);
  ASSERT_EQ(batch.size(), 5u);
  for (const auto& row : batch) EXPECT_TRUE(row.empty());
}

TEST(IvfIndexTest, EmptyIndexReturnsEmpty) {
  const IvfIndex index(Tensor({0, 4}), IvfOptions{});
  EXPECT_EQ(index.num_clusters(), 0);
  const float query[4] = {1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_TRUE(index.Query(query, 4, 5).empty());
  Rng rng(8);
  const auto batch =
      index.QueryBatch(Tensor::RandomNormal({3, 4}, 1.0f, &rng), 5);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& row : batch) EXPECT_TRUE(row.empty());
}

TEST(IvfIndexTest, EmptyQueryBatchReturnsEmpty) {
  Rng rng(9);
  Tensor tgt = Tensor::RandomNormal({20, 4}, 1.0f, &rng);
  const IvfIndex index(tgt, IvfOptions{});
  EXPECT_TRUE(index.QueryBatch(Tensor({0, 4}), 5).empty());
  EXPECT_TRUE(index.QueryBatch(Tensor(), 5).empty());
}

TEST(IvfIndexTest, KLargerThanIndexClamps) {
  Rng rng(10);
  Tensor tgt = Tensor::RandomNormal({12, 4}, 1.0f, &rng);
  IvfOptions opt;
  opt.num_clusters = 1;  // One probe scans everything: exactly 12 results.
  opt.num_probes = 1;
  const IvfIndex index(tgt, opt);
  Tensor q = Tensor::RandomNormal({1, 4}, 1.0f, &rng);
  tmath::L2NormalizeRowsInPlace(&q);
  EXPECT_EQ(index.Query(q.data(), 4, 1000).size(), 12u);
}

TEST(IvfIndexTest, DuplicateCentroidsProbeLowestCellsFirst) {
  // All rows identical -> every centroid is the same vector (empty clusters
  // reseed from identical rows) and every cell score ties exactly. The cell
  // ranking must break those ties by ascending cell index, landing on cell
  // 0 — the one that owns all the rows. The old comparator ordered cells by
  // score only, so a full tie left the probe set implementation-defined and
  // a single probe could pick an empty cell and return nothing.
  Tensor rows({24, 4});
  for (int64_t i = 0; i < 24; ++i) {
    rows.SetRow(i, Tensor::FromVector({0.5f, -0.5f, 0.5f, -0.5f}));
  }
  IvfOptions opt;
  opt.num_clusters = 6;
  opt.num_probes = 1;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    opt.seed = seed;
    const IvfIndex index(rows, opt);
    Tensor q({1, 4});
    q.SetRow(0, Tensor::FromVector({0.5f, -0.5f, 0.5f, -0.5f}));
    tmath::L2NormalizeRowsInPlace(&q);
    const auto got = index.Query(q.data(), 4, 10);
    ASSERT_EQ(got.size(), 10u) << "seed " << seed;
    // Row ties inside the scanned cell also break ascending.
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<int64_t>(i)) << "seed " << seed;
    }
  }
}

TEST(IvfIndexTest, Deterministic) {
  Rng rng(6);
  Tensor tgt = Tensor::RandomNormal({100, 8}, 1.0f, &rng);
  Tensor src = Tensor::RandomNormal({10, 8}, 1.0f, &rng);
  const auto a = GenerateCandidatesApprox(src, tgt, 5);
  const auto b = GenerateCandidatesApprox(src, tgt, 5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sdea::core
