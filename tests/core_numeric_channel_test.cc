#include "core/numeric_channel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdea::core {
namespace {

Tensor Embed(double v) {
  Tensor t({kNumericFeatureDim});
  EmbedNumber(v, t.data());
  return t;
}

TEST(ParseNumericTest, AcceptsAndRejects) {
  double v = 0.0;
  EXPECT_TRUE(ParseNumeric("1987", &v));
  EXPECT_DOUBLE_EQ(v, 1987.0);
  EXPECT_TRUE(ParseNumeric(" -3.5 ", &v));
  EXPECT_DOUBLE_EQ(v, -3.5);
  EXPECT_FALSE(ParseNumeric("abc", &v));
  EXPECT_FALSE(ParseNumeric("1987 born", &v));
  EXPECT_FALSE(ParseNumeric("", &v));
}

TEST(EmbedNumberTest, SignAndFractionFlags) {
  EXPECT_EQ(Embed(5.0)[0], 1.0f);
  EXPECT_EQ(Embed(-5.0)[0], -1.0f);
  EXPECT_EQ(Embed(5.0)[15], 0.0f);
  EXPECT_EQ(Embed(5.5)[15], 1.0f);
}

TEST(EmbedNumberTest, CloseMagnitudesAreCloserThanFarOnes) {
  const Tensor y1985 = Embed(1985);
  const Tensor y1987 = Embed(1987);
  const Tensor big = Embed(52'000'000);
  EXPECT_GT(tmath::CosineSimilarity(y1985, y1987),
            tmath::CosineSimilarity(y1985, big));
}

TEST(EmbedNumberTest, LeadingDigitsEncoded) {
  const Tensor a = Embed(1987);
  EXPECT_NEAR(a[12], 1.0f / 9.0f, 1e-6f);
  EXPECT_NEAR(a[13], 9.0f / 9.0f, 1e-6f);
  EXPECT_NEAR(a[14], 8.0f / 9.0f, 1e-6f);
}

TEST(NumericFeaturesTest, PerEntityAggregation) {
  kg::KnowledgeGraph g;
  const kg::EntityId with_numbers = g.AddEntity("a");
  const kg::EntityId text_only = g.AddEntity("b");
  const kg::AttributeId attr = g.AddAttribute("x");
  g.AddAttributeTriple(with_numbers, attr, "1987");
  g.AddAttributeTriple(with_numbers, attr, "2001");
  g.AddAttributeTriple(text_only, attr, "hello world");
  const Tensor f = ComputeNumericFeatures(g);
  EXPECT_EQ(f.shape(), (std::vector<int64_t>{2, kNumericFeatureDim}));
  EXPECT_NEAR(f.Row(with_numbers).Norm(), 1.0f, 1e-5f);  // Normalized.
  EXPECT_EQ(f.Row(text_only).Norm(), 0.0f);              // No numbers.
}

TEST(NumericFeaturesTest, MatchedEntitiesShareProfile) {
  kg::KnowledgeGraph g1, g2;
  const kg::AttributeId a1 = g1.AddAttribute("year");
  const kg::AttributeId a2 = g2.AddAttribute("datum");  // Different schema.
  const kg::EntityId e1 = g1.AddEntity("x");
  const kg::EntityId e2 = g2.AddEntity("y");
  g1.AddAttributeTriple(e1, a1, "1987");
  g2.AddAttributeTriple(e2, a2, "1987");
  const Tensor f1 = ComputeNumericFeatures(g1);
  const Tensor f2 = ComputeNumericFeatures(g2);
  EXPECT_NEAR(tmath::CosineSimilarity(f1.Row(e1), f2.Row(e2)), 1.0f, 1e-5f);
}

TEST(ConcatNumericChannelTest, LayoutAndWeight) {
  Tensor base({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor numeric({2, 2}, {1, 0, 0, 1});
  const Tensor out = ConcatNumericChannel(base, numeric, 0.5f);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 5}));
  EXPECT_EQ(out.at(0, 2), 3.0f);
  EXPECT_EQ(out.at(0, 3), 0.5f);
  EXPECT_EQ(out.at(1, 4), 0.5f);
}

// Property sweep: for any pair of positive numbers, similarity decreases
// as the log-magnitude gap grows.
class MagnitudeGapTest : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeGapTest, MonotoneInMagnitudeGap) {
  const double base = GetParam();
  const Tensor ref = Embed(base);
  const float near = tmath::CosineSimilarity(ref, Embed(base * 1.5));
  const float far = tmath::CosineSimilarity(ref, Embed(base * 1000.0));
  EXPECT_GT(near, far);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, MagnitudeGapTest,
                         ::testing::Values(3.0, 42.0, 1987.0, 123456.0));

}  // namespace
}  // namespace sdea::core
