#include "eval/csv.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"
#include "base/strings.h"

namespace sdea::eval {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvEscape("SDEA"), "SDEA");
  EXPECT_EQ(CsvEscape("zh_en"), "zh_en");
}

TEST(CsvEscapeTest, QuotesSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(ResultsToCsvTest, HeaderAndRows) {
  ResultRecord r;
  r.method = "SDEA";
  r.dataset = "zh_en";
  r.metrics.hits_at_1 = 87.0;
  r.metrics.hits_at_10 = 96.6;
  r.metrics.mrr = 0.91;
  r.metrics.num_queries = 10500;
  r.seconds = 42.5;
  const std::string csv = ResultsToCsv({r});
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "method,dataset,hits_at_1,hits_at_10,mrr,num_queries,seconds");
  EXPECT_EQ(lines[1], "SDEA,zh_en,87.0000,96.6000,0.910000,10500,42.500");
}

TEST(ResultsToCsvTest, EmptyHasOnlyHeader) {
  const auto lines = Split(ResultsToCsv({}), '\n');
  EXPECT_EQ(lines.size(), 2u);  // Header + trailing empty.
}

TEST(WriteResultsCsvTest, WritesFile) {
  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_results.csv";
  ResultRecord r;
  r.method = "CEA, full";  // Comma forces quoting.
  r.dataset = "d_w_15k_v1";
  ASSERT_TRUE(WriteResultsCsv({r}, path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"CEA, full\""), std::string::npos);
}

}  // namespace
}  // namespace sdea::eval
