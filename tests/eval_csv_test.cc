#include "eval/csv.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"
#include "base/strings.h"

namespace sdea::eval {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvEscape("SDEA"), "SDEA");
  EXPECT_EQ(CsvEscape("zh_en"), "zh_en");
}

TEST(CsvEscapeTest, QuotesSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(ResultsToCsvTest, HeaderAndRows) {
  ResultRecord r;
  r.method = "SDEA";
  r.dataset = "zh_en";
  r.metrics.hits_at_1 = 87.0;
  r.metrics.hits_at_10 = 96.6;
  r.metrics.mrr = 0.91;
  r.metrics.num_queries = 10500;
  r.metrics.num_invalid = 3;
  r.seconds = 42.5;
  const std::string csv = ResultsToCsv({r});
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "method,dataset,hits_at_1,hits_at_10,mrr,num_queries,"
            "num_invalid,seconds");
  EXPECT_EQ(lines[1], "SDEA,zh_en,87.0000,96.6000,0.910000,10500,3,42.500");
}

TEST(DecisionsToCsvTest, HeaderAndRows) {
  DecisionRecord r;
  r.method = "SDEA+abstain";
  r.dataset = "adversarial_30";
  r.metrics.matchable = 80;
  r.metrics.dangling = 20;
  r.metrics.correct = 60;
  r.metrics.mismatched = 10;
  r.metrics.missed = 10;
  r.metrics.abstain_correct = 15;
  r.metrics.forced_on_dangling = 5;
  r.metrics.precision = 0.8;
  r.metrics.recall = 0.75;
  r.metrics.f1 = 0.7742;
  r.metrics.abstain_rate = 0.25;
  const auto lines = Split(DecisionsToCsv({r}), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "method,dataset,precision,recall,f1,abstain_rate,matchable,"
            "dangling,correct,mismatched,missed,abstain_correct,"
            "forced_on_dangling");
  EXPECT_EQ(lines[1],
            "SDEA+abstain,adversarial_30,0.8000,0.7500,0.7742,0.2500,"
            "80,20,60,10,10,15,5");
}

TEST(ResultsToCsvTest, EmptyHasOnlyHeader) {
  const auto lines = Split(ResultsToCsv({}), '\n');
  EXPECT_EQ(lines.size(), 2u);  // Header + trailing empty.
}

TEST(WriteResultsCsvTest, WritesFile) {
  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_results.csv";
  ResultRecord r;
  r.method = "CEA, full";  // Comma forces quoting.
  r.dataset = "d_w_15k_v1";
  ASSERT_TRUE(WriteResultsCsv({r}, path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"CEA, full\""), std::string::npos);
}

}  // namespace
}  // namespace sdea::eval
