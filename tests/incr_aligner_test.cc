// incr::IncrementalAligner: the zero-diff golden (an empty stream leaves
// every embedding bitwise-identical), affected-neighborhood masking (rows
// outside the k-hop set come out of an increment bitwise-intact), the
// bootstrap/repair lifecycle, and the SwapWithKg publish path.
#include "incr/aligner.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "incr/update_log.h"
#include "kg/knowledge_graph.h"
#include "serve/snapshot.h"

namespace sdea::incr {
namespace {

/// A ring of `n` entities (e_i -r-> e_{i+1}) with an attribute per entity;
/// built once per side with different prefixes, structurally isomorphic.
void BuildRing(kg::KnowledgeGraph* g, const std::string& prefix, int64_t n) {
  g->BeginBulkLoad();
  const kg::RelationId r = g->AddRelation("r");
  const kg::AttributeId at = g->AddAttribute("label");
  std::vector<kg::EntityId> ids;
  for (int64_t i = 0; i < n; ++i) {
    ids.push_back(g->AddEntity(prefix + std::to_string(i)));
  }
  for (int64_t i = 0; i < n; ++i) {
    g->AddRelationalTriple(ids[static_cast<size_t>(i)], r,
                           ids[static_cast<size_t>((i + 1) % n)]);
    g->AddAttributeTriple(ids[static_cast<size_t>(i)], at,
                          prefix + std::to_string(i));
  }
  g->EndBulkLoad();
}

std::vector<std::pair<kg::EntityId, kg::EntityId>> IdentitySeeds(int64_t k) {
  std::vector<std::pair<kg::EntityId, kg::EntityId>> seeds;
  for (int64_t i = 0; i < k; ++i) seeds.emplace_back(i, i);
  return seeds;
}

IncrementalAlignerOptions SmallOptions() {
  IncrementalAlignerOptions opts;
  opts.dim = 16;
  opts.base_epochs = 25;
  opts.incr_epochs = 10;
  return opts;
}

TEST(IncrementalAlignerTest, ValidationErrors) {
  kg::KnowledgeGraph empty1, empty2;
  IncrementalAligner bare(&empty1, &empty2, SmallOptions());
  EXPECT_FALSE(bare.ProcessIncrement().ok());
  EXPECT_EQ(bare.FitBase({}).code(), StatusCode::kInvalidArgument);

  kg::KnowledgeGraph kg1, kg2;
  BuildRing(&kg1, "e", 6);
  BuildRing(&kg2, "f", 6);
  IncrementalAligner aligner(&kg1, &kg2, SmallOptions());
  EXPECT_EQ(aligner.FitBase({{0, 99}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(aligner.FitBase({{0, 0}, {0, 1}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(aligner.FitBase({{0, 0}, {1, 0}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalAlignerTest, ZeroDiffStreamIsBitwiseNoOp) {
  kg::KnowledgeGraph kg1, kg2;
  BuildRing(&kg1, "e", 10);
  BuildRing(&kg2, "f", 10);
  IncrementalAligner aligner(&kg1, &kg2, SmallOptions());
  ASSERT_TRUE(aligner.FitBase(IdentitySeeds(5)).ok());

  const Tensor base1 = aligner.embeddings1();
  const Tensor base2 = aligner.embeddings2();

  // Stream an *empty* batch through the replay path: the bulk-load commit
  // advances nothing, the diff is empty, and the increment must leave the
  // model untouched down to the last bit.
  ApplyUpdate(KgUpdate{}, &kg1);
  ApplyUpdate(KgUpdate{}, &kg2);
  auto rep = aligner.ProcessIncrement();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->no_op);
  EXPECT_EQ(rep->diff_rows, 0);
  EXPECT_EQ(rep->trained_triples, 0);

  ASSERT_EQ(aligner.embeddings1().size(), base1.size());
  EXPECT_EQ(std::memcmp(aligner.embeddings1().data(), base1.data(),
                        sizeof(float) * static_cast<size_t>(base1.size())),
            0);
  EXPECT_EQ(std::memcmp(aligner.embeddings2().data(), base2.data(),
                        sizeof(float) * static_cast<size_t>(base2.size())),
            0);
}

TEST(IncrementalAlignerTest, IncrementFreezesOutsideTheNeighborhood) {
  kg::KnowledgeGraph kg1, kg2;
  BuildRing(&kg1, "e", 30);
  BuildRing(&kg2, "f", 30);
  IncrementalAlignerOptions opts = SmallOptions();
  opts.k_hops = 1;
  IncrementalAligner aligner(&kg1, &kg2, opts);
  ASSERT_TRUE(aligner.FitBase(IdentitySeeds(10)).ok());
  const Tensor before1 = aligner.embeddings1();

  // One new entity per side, attached to e0/f0 — exactly the shape of a
  // streamed arrival batch.
  KgUpdate up1;
  up1.relational = {{"e0", "r", "e_new"}};
  KgUpdate up2;
  up2.relational = {{"f0", "r", "f_new"}};
  ApplyUpdate(up1, &kg1);
  ApplyUpdate(up2, &kg2);

  auto rep = aligner.ProcessIncrement();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep->no_op);
  EXPECT_EQ(rep->new_entities, 2);
  EXPECT_EQ(rep->diff_rows, 2);
  EXPECT_GT(rep->affected, 0);
  // touched = {e0, e_new} expanded 1 hop = {e29, e0, e1, e_new} per side.
  EXPECT_LE(rep->affected, 8);
  EXPECT_LT(rep->affected_frac(), 0.2);
  EXPECT_GT(rep->trained_triples, 0);
  EXPECT_LT(rep->trained_triples, 60);

  // A row far from the arrival (e15: two hops is the horizon, it is ~14
  // away) must come out bitwise-identical — the trainable mask gates every
  // SGD write.
  const int64_t d = opts.dim;
  EXPECT_EQ(std::memcmp(aligner.embeddings1().data() + 15 * d,
                        before1.data() + 15 * d,
                        sizeof(float) * static_cast<size_t>(d)),
            0);

  // The epoch cursor advanced: a follow-up with no changes is a no-op.
  auto rep2 = aligner.ProcessIncrement();
  ASSERT_TRUE(rep2.ok());
  EXPECT_TRUE(rep2->no_op);

  const auto metrics = aligner.Evaluate(IdentitySeeds(10));
  EXPECT_EQ(metrics.num_queries, 10);
}

TEST(IncrementalAlignerTest, BootstrapPromotesAndRepairDemotes) {
  kg::KnowledgeGraph kg1, kg2;
  BuildRing(&kg1, "e", 8);
  BuildRing(&kg2, "f", 8);
  IncrementalAlignerOptions opts = SmallOptions();
  // Make the whole ring affected so every eligible entity is a bootstrap
  // candidate, then promote any mutually-nearest eligible pair; demote
  // everything at the next repair (no cosine reaches 2.0).
  opts.k_hops = 8;
  opts.affected_frac_cap = 0.0;
  opts.bootstrap_threshold = -1.0f;
  opts.bootstrap_margin = 0.0f;
  opts.bootstrap_cap = 2;
  opts.repair_threshold = 2.0f;
  IncrementalAligner aligner(&kg1, &kg2, opts);
  ASSERT_TRUE(aligner.FitBase(IdentitySeeds(4)).ok());
  EXPECT_TRUE(aligner.promoted_pairs().empty());

  KgUpdate up;
  up.relational = {{"e0", "r", "e_extra"}};
  ApplyUpdate(up, &kg1);
  auto rep1 = aligner.ProcessIncrement();
  ASSERT_TRUE(rep1.ok()) << rep1.status().ToString();
  EXPECT_GT(rep1->promoted, 0);
  EXPECT_LE(rep1->promoted, 2);
  EXPECT_EQ(static_cast<int64_t>(aligner.promoted_pairs().size()),
            rep1->promoted);
  // Promoted pairs are never gold-merged and never duplicated.
  for (const auto& [a, b] : aligner.promoted_pairs()) {
    EXPECT_GE(a, 4);
    EXPECT_GE(b, 4);
  }

  // No graph changes, but the impossible repair threshold demotes every
  // promoted pair — a demotion-only increment re-embeds (not a no-op).
  auto rep2 = aligner.ProcessIncrement();
  ASSERT_TRUE(rep2.ok()) << rep2.status().ToString();
  EXPECT_FALSE(rep2->no_op);
  EXPECT_EQ(rep2->demoted, rep1->promoted);
  EXPECT_GT(rep2->trained_triples, 0);
}

TEST(IncrementalAlignerTest, PublishPairsEmbeddingsWithPinnedKg) {
  kg::KnowledgeGraph kg1, kg2;
  BuildRing(&kg1, "e", 6);
  BuildRing(&kg2, "f", 6);
  IncrementalAligner aligner(&kg1, &kg2, SmallOptions());

  serve::SnapshotManager manager;
  EXPECT_FALSE(aligner.Publish(&manager).ok());  // Before FitBase.

  ASSERT_TRUE(aligner.FitBase(IdentitySeeds(3)).ok());
  auto version = aligner.Publish(&manager);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1u);

  auto snap = manager.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->has_kg());
  EXPECT_EQ(snap->size(), 6);
  EXPECT_EQ(snap->kg.num_entities(), 6);
  EXPECT_EQ(snap->kg.epoch(), kg2.Snapshot().epoch());
}

}  // namespace
}  // namespace sdea::incr
