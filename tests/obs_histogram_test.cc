// obs::Histogram unit tests: bucketing semantics, the factories, the
// quantile edge cases (the regression suite for the old train::Histogram
// bugs), merge associativity/commutativity, and FromParts round-trips.
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace sdea::obs {
namespace {

TEST(ObsHistogramTest, BucketsByUpperBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // Boundary values land in the bucket whose bound they equal.
  for (double v : {0.5, 1.0, 10.0, 100.0, 101.0}) h.Record(v);
  EXPECT_EQ(h.bucket_counts(), (std::vector<int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 101.0);
  EXPECT_DOUBLE_EQ(h.sum(), 212.5);
  EXPECT_DOUBLE_EQ(h.mean(), 42.5);
}

TEST(ObsHistogramTest, ExponentialFactory) {
  Histogram h = Histogram::Exponential(1.0, 2.0, 4);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(h.bucket_counts().size(), 5u);  // One unbounded tail.
}

TEST(ObsHistogramTest, LinearFactory) {
  Histogram h = Histogram::Linear(10.0, 5.0, 3);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{10.0, 15.0, 20.0}));
}

// --- Quantile edge-case regressions ------------------------------------
// The old train::Histogram returned an arbitrary bound for an empty
// histogram, undefined values for q outside (0, 1), and the last *bound*
// (not the observed max) for values past it. Each case is pinned here.

TEST(ObsHistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 10.0});
  for (double q : {-1.0, 0.0, 0.5, 0.99, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, QuantileAtZeroIsMinAtOneIsMax) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 50.0}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), 50.0);
}

TEST(ObsHistogramTest, QuantileBeyondLastBoundReportsObservedMax) {
  Histogram h({1.0, 10.0});
  h.Record(5000.0);  // Lands in the unbounded tail.
  h.Record(0.5);
  // p99 falls in the tail bucket: no defined bound, so report max().
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 5000.0);
}

TEST(ObsHistogramTest, QuantileClampsBoundToObservedMax) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(2.0);  // Bucket bound 10, but nothing observed above 2.
  // Every quantile of a single-value histogram is that value, not the
  // containing bucket's (much larger) upper bound.
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 2.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, QuantileInteriorPicksSmallestCoveringBound) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 0.7, 5.0, 50.0, 500.0}) h.Record(v);
  // P(v <= 1) = 0.4, P(v <= 10) = 0.6.
  EXPECT_DOUBLE_EQ(h.Quantile(0.4), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.6), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.8), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 500.0);  // Tail: observed max.
}

// --- Merge --------------------------------------------------------------

Histogram Filled(const std::vector<double>& values) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : values) h.Record(v);
  return h;
}

void ExpectSame(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(ObsHistogramTest, MergeFoldsCountsAndAggregates) {
  Histogram a = Filled({0.5, 5.0});
  Histogram b = Filled({50.0, 500.0});
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.bucket_counts(), (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 500.0);
  EXPECT_DOUBLE_EQ(a.sum(), 555.5);
}

TEST(ObsHistogramTest, MergeWithEmptySidesIsIdentity) {
  Histogram empty({1.0, 10.0, 100.0});
  Histogram a = Filled({0.5, 5.0});
  Histogram a_copy = a;
  a.Merge(empty);
  ExpectSame(a, a_copy);  // Right identity.
  Histogram e2({1.0, 10.0, 100.0});
  e2.Merge(a);
  ExpectSame(e2, a);  // Left identity.
}

TEST(ObsHistogramTest, MergeIsAssociativeAndCommutative) {
  const std::vector<std::vector<double>> parts = {
      {0.5, 5.0}, {50.0}, {500.0, 0.1, 7.0}};
  // (a + b) + c.
  Histogram left = Filled(parts[0]);
  left.Merge(Filled(parts[1]));
  left.Merge(Filled(parts[2]));
  // a + (b + c).
  Histogram bc = Filled(parts[1]);
  bc.Merge(Filled(parts[2]));
  Histogram right = Filled(parts[0]);
  right.Merge(bc);
  ExpectSame(left, right);
  // c + b + a.
  Histogram rev = Filled(parts[2]);
  rev.Merge(Filled(parts[1]));
  rev.Merge(Filled(parts[0]));
  ExpectSame(left, rev);
}

TEST(ObsHistogramTest, FromPartsRoundTripsSnapshot) {
  Histogram h = Filled({0.5, 5.0, 500.0});
  Histogram rebuilt =
      Histogram::FromParts(h.upper_bounds(), h.bucket_counts(), h.count(),
                           h.sum(), h.min(), h.max());
  ExpectSame(h, rebuilt);
  EXPECT_DOUBLE_EQ(rebuilt.Quantile(0.5), h.Quantile(0.5));
}

TEST(ObsHistogramTest, SummaryMentionsKeyFields) {
  Histogram h = Filled({0.5, 5.0});
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=2"), std::string::npos) << s;
  EXPECT_NE(s.find("p50"), std::string::npos) << s;
  EXPECT_NE(s.find("p99"), std::string::npos) << s;
}

}  // namespace
}  // namespace sdea::obs
