#include "kg/subgraph.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace sdea::kg {
namespace {

// A star (hub + 5 spokes) plus a detached low-degree chain.
KnowledgeGraph StarAndChain() {
  KnowledgeGraph g;
  const EntityId hub = g.AddEntity("hub");
  const RelationId r = g.AddRelation("r");
  for (int i = 0; i < 5; ++i) {
    const EntityId spoke = g.AddEntity("spoke" + std::to_string(i));
    g.AddRelationalTriple(hub, r, spoke);
  }
  const EntityId c1 = g.AddEntity("chain1");
  const EntityId c2 = g.AddEntity("chain2");
  g.AddRelationalTriple(c1, r, c2);
  const AttributeId name = g.AddAttribute("name");
  g.AddAttributeTriple(hub, name, "The Hub");
  g.AddAttributeTriple(c1, name, "Chain One");
  return g;
}

TEST(CondenseTest, KeepsPopularEndpointsOnly) {
  KnowledgeGraph g = StarAndChain();
  CondenseOptions opt;
  opt.popularity_fraction = 0.75;  // Chain endpoints (degree 1) fall out.
  std::vector<EntityId> remap;
  const KnowledgeGraph condensed = CondenseByPopularity(g, opt, &remap);
  // The hub star survives, the chain is gone.
  EXPECT_TRUE(condensed.FindEntity("hub").ok());
  EXPECT_FALSE(condensed.FindEntity("chain1").ok());
  EXPECT_LT(condensed.num_entities(), g.num_entities());
  // Remap marks dropped entities invalid.
  EXPECT_EQ(remap[static_cast<size_t>(*g.FindEntity("chain1"))],
            kInvalidEntity);
  EXPECT_NE(remap[static_cast<size_t>(*g.FindEntity("hub"))],
            kInvalidEntity);
}

TEST(CondenseTest, AttributesFollowSurvivingEntities) {
  KnowledgeGraph g = StarAndChain();
  CondenseOptions opt;
  opt.popularity_fraction = 0.75;
  const KnowledgeGraph condensed = CondenseByPopularity(g, opt);
  const EntityId hub = *condensed.FindEntity("hub");
  ASSERT_EQ(condensed.attribute_triples_of(hub).size(), 1u);
  // Chain1's attribute dropped with its entity.
  EXPECT_EQ(condensed.attribute_triples().size(), 1u);
}

TEST(CondenseTest, MinTriplesBackfills) {
  KnowledgeGraph g = StarAndChain();
  CondenseOptions opt;
  opt.popularity_fraction = 0.01;  // Almost nothing is "popular"...
  opt.min_triples = 3;             // ...but we demand 3 triples.
  const KnowledgeGraph condensed = CondenseByPopularity(g, opt);
  EXPECT_GE(condensed.relational_triples().size(), 3u);
}

TEST(CondenseTest, FullFractionKeepsEverything) {
  KnowledgeGraph g = StarAndChain();
  CondenseOptions opt;
  opt.popularity_fraction = 1.0;
  const KnowledgeGraph condensed = CondenseByPopularity(g, opt);
  EXPECT_EQ(condensed.relational_triples().size(),
            g.relational_triples().size());
  EXPECT_EQ(condensed.num_entities(), g.num_entities());
}

TEST(CondenseTest, RaisesDensityOnGeneratedData) {
  // The purpose of DBP15K's condensed version: higher average degree.
  datagen::GeneratorConfig cfg;
  cfg.num_matched = 300;
  cfg.degree_zipf_s = 1.8;  // Sparse, long-tailed.
  const auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  CondenseOptions opt;
  opt.popularity_fraction = 0.4;
  const KnowledgeGraph condensed =
      CondenseByPopularity(bench.kg1, opt);
  auto mean_degree = [](const KnowledgeGraph& g) {
    return 2.0 * static_cast<double>(g.relational_triples().size()) /
           static_cast<double>(g.num_entities());
  };
  EXPECT_GT(mean_degree(condensed), mean_degree(bench.kg1));
}

TEST(DegreeHistogramTest, CountsAndClamps) {
  KnowledgeGraph g = StarAndChain();
  const auto hist = DegreeHistogram(g, 3);
  // Degrees: hub=5 (clamped to 3), 5 spokes=1, chain1=1, chain2=1.
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0);
  EXPECT_EQ(hist[1], 7);
  EXPECT_EQ(hist[2], 0);
  EXPECT_EQ(hist[3], 1);
}

}  // namespace
}  // namespace sdea::kg
