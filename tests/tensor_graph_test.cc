#include "tensor/graph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdea {
namespace {

TEST(GraphTest, InputHoldsValue) {
  Graph g;
  NodeId x = g.Input(Tensor({2}, {1, 2}));
  EXPECT_EQ(g.Value(x)[1], 2.0f);
}

TEST(GraphTest, ParamGradientAccumulates) {
  Parameter p("p", Tensor({2}, {3, 4}));
  Graph g;
  NodeId x = g.Param(&p);
  NodeId loss = g.SumAll(x);
  g.Backward(loss);
  EXPECT_EQ(p.grad[0], 1.0f);
  EXPECT_EQ(p.grad[1], 1.0f);
  // A second graph accumulates on top.
  Graph g2;
  NodeId x2 = g2.Param(&p);
  g2.Backward(g2.SumAll(x2));
  EXPECT_EQ(p.grad[0], 2.0f);
}

TEST(GraphTest, MatmulForwardBackward) {
  Parameter a("a", Tensor({1, 2}, {1, 2}));
  Parameter b("b", Tensor({2, 1}, {3, 4}));
  Graph g;
  NodeId c = g.Matmul(g.Param(&a), g.Param(&b));
  EXPECT_FLOAT_EQ(g.Value(c)[0], 11.0f);
  g.Backward(g.SumAll(c));
  EXPECT_FLOAT_EQ(a.grad[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad[1], 4.0f);
  EXPECT_FLOAT_EQ(b.grad[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad[1], 2.0f);
}

TEST(GraphTest, AddSubMulScaleValues) {
  Graph g;
  NodeId a = g.Input(Tensor({2}, {1, 2}));
  NodeId b = g.Input(Tensor({2}, {3, 5}));
  EXPECT_EQ(g.Value(g.Add(a, b))[1], 7.0f);
  EXPECT_EQ(g.Value(g.Sub(a, b))[0], -2.0f);
  EXPECT_EQ(g.Value(g.Mul(a, b))[1], 10.0f);
  EXPECT_EQ(g.Value(g.Scale(a, -2.0f))[0], -2.0f);
  EXPECT_EQ(g.Value(g.AddConst(a, 10.0f))[1], 12.0f);
}

TEST(GraphTest, ActivationValues) {
  Graph g;
  NodeId x = g.Input(Tensor({3}, {-1, 0, 1}));
  const Tensor& s = g.Value(g.Sigmoid(x));
  EXPECT_NEAR(s[1], 0.5f, 1e-6f);
  const Tensor& t = g.Value(g.Tanh(x));
  EXPECT_NEAR(t[2], std::tanh(1.0f), 1e-6f);
  const Tensor& r = g.Value(g.Relu(x));
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[2], 1.0f);
}

TEST(GraphTest, ConcatColsAndSlice) {
  Graph g;
  NodeId a = g.Input(Tensor({2, 2}, {1, 2, 3, 4}));
  NodeId b = g.Input(Tensor({2, 1}, {5, 6}));
  NodeId c = g.ConcatCols(a, b);
  EXPECT_EQ(g.Value(c).shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(g.Value(c).at(1, 2), 6.0f);
  NodeId s = g.SliceCols(c, 1, 3);
  EXPECT_EQ(g.Value(s).at(0, 0), 2.0f);
  EXPECT_EQ(g.Value(s).at(1, 1), 6.0f);
}

TEST(GraphTest, ConcatRowsAndSliceRows) {
  Graph g;
  NodeId a = g.Input(Tensor({1, 2}, {1, 2}));
  NodeId b = g.Input(Tensor({2, 2}, {3, 4, 5, 6}));
  NodeId c = g.ConcatRows(a, b);
  EXPECT_EQ(g.Value(c).shape(), (std::vector<int64_t>{3, 2}));
  NodeId s = g.SliceRows(c, 2, 3);
  EXPECT_EQ(g.Value(s).at(0, 1), 6.0f);
}

TEST(GraphTest, ReductionValues) {
  Graph g;
  NodeId a = g.Input(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_FLOAT_EQ(g.Value(g.SumAll(a))[0], 10.0f);
  EXPECT_FLOAT_EQ(g.Value(g.MeanAll(a))[0], 2.5f);
  const Tensor& m = g.Value(g.MeanRows(a));
  EXPECT_EQ(m.shape(), (std::vector<int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(m[0], 2.0f);
  EXPECT_FLOAT_EQ(m[1], 3.0f);
}

TEST(GraphTest, SoftmaxRowsValue) {
  Graph g;
  NodeId a = g.Input(Tensor({1, 2}, {0, 0}));
  const Tensor& s = g.Value(g.SoftmaxRows(a));
  EXPECT_NEAR(s[0], 0.5f, 1e-6f);
}

TEST(GraphTest, L2NormalizeRowsValue) {
  Graph g;
  NodeId a = g.Input(Tensor({1, 2}, {3, 4}));
  const Tensor& n = g.Value(g.L2NormalizeRows(a));
  EXPECT_NEAR(n[0], 0.6f, 1e-6f);
  EXPECT_NEAR(n[1], 0.8f, 1e-6f);
}

TEST(GraphTest, GatherForwardBackward) {
  Parameter table("t", Tensor({3, 2}, {1, 2, 3, 4, 5, 6}));
  Graph g;
  NodeId out = g.Gather(g.Param(&table), {2, 0, 2});
  EXPECT_EQ(g.Value(out).shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(g.Value(out).at(0, 0), 5.0f);
  EXPECT_EQ(g.Value(out).at(1, 1), 2.0f);
  g.Backward(g.SumAll(out));
  // Row 2 gathered twice -> grad 2; row 0 once; row 1 never.
  EXPECT_EQ(table.grad.at(2, 0), 2.0f);
  EXPECT_EQ(table.grad.at(0, 0), 1.0f);
  EXPECT_EQ(table.grad.at(1, 0), 0.0f);
}

TEST(GraphTest, DropoutInferenceIsIdentity) {
  Rng rng(1);
  Graph g;
  NodeId a = g.Input(Tensor({4}, {1, 2, 3, 4}));
  NodeId d = g.Dropout(a, 0.5f, /*training=*/false, &rng);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(g.Value(d)[i], g.Value(a)[i]);
}

TEST(GraphTest, DropoutTrainingZeroesAndScales) {
  Rng rng(1);
  Graph g;
  NodeId a = g.Input(Tensor({1000}, 1.0f));
  NodeId d = g.Dropout(a, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = g.Value(d)[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
}

TEST(GraphTest, MulColBroadcast) {
  Graph g;
  NodeId a = g.Input(Tensor({2, 2}, {1, 2, 3, 4}));
  NodeId w = g.Input(Tensor({2}, {10, 100}));
  const Tensor& out = g.Value(g.MulColBroadcast(a, w));
  EXPECT_EQ(out.at(0, 1), 20.0f);
  EXPECT_EQ(out.at(1, 0), 300.0f);
}

TEST(GraphTest, SparseMatmulMatchesDense) {
  CsrMatrix adj = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
  Parameter x("x", Tensor({3, 2}, {1, 2, 3, 4, 5, 6}));
  Graph g;
  NodeId out = g.SparseMatmul(&adj, g.Param(&x));
  // Row 0: 1*[1,2] + 2*[5,6] = [11,14]; row 1: 3*[3,4] = [9,12].
  EXPECT_FLOAT_EQ(g.Value(out).at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(g.Value(out).at(0, 1), 14.0f);
  EXPECT_FLOAT_EQ(g.Value(out).at(1, 0), 9.0f);
  g.Backward(g.SumAll(out));
  EXPECT_FLOAT_EQ(x.grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.grad.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(x.grad.at(2, 0), 2.0f);
}

TEST(GraphTest, ChainedBackwardThroughMultipleOps) {
  // loss = mean(relu(a @ b + c)); verifies multi-op plumbing end to end.
  Parameter a("a", Tensor({2, 2}, {1, -1, 2, 0.5f}));
  Parameter b("b", Tensor({2, 2}, {0.5f, 1, -1, 2}));
  Parameter c("c", Tensor({2}, {0.1f, -0.2f}));
  Graph g;
  NodeId out = g.Relu(
      g.AddRowBroadcast(g.Matmul(g.Param(&a), g.Param(&b)), g.Param(&c)));
  NodeId loss = g.MeanAll(out);
  g.Backward(loss);
  // Gradients exist and are finite.
  for (Parameter* p : {&a, &b, &c}) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      EXPECT_TRUE(std::isfinite(p->grad[i]));
    }
  }
  EXPECT_GT(a.grad.AbsMax(), 0.0f);
}

}  // namespace
}  // namespace sdea
