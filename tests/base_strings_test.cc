#include "base/strings.h"

#include <gtest/gtest.h>

namespace sdea {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a\tb\tc", '\t'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("AbC 123 Xy"), "abc 123 xy");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("same", "same"), 1.0);
  EXPECT_NEAR(EditSimilarity("abcd", "wxyz"), 0.0, 1e-9);
  EXPECT_GT(EditSimilarity("tokyo", "tokio"), 0.7);
}

TEST(LooksNumericTest, Accepts) {
  EXPECT_TRUE(LooksNumeric("123"));
  EXPECT_TRUE(LooksNumeric("-42"));
  EXPECT_TRUE(LooksNumeric("+3.14"));
  EXPECT_TRUE(LooksNumeric(" 7 "));
}

TEST(LooksNumericTest, Rejects) {
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric("12a"));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("."));
}

}  // namespace
}  // namespace sdea
