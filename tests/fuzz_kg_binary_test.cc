// Fuzz + fault-injection regression suite for the KG binary decoders
// (SDEAKGB2 chunked columnar + legacy SDEAKGB1): truncation at every
// offset, thousands of seeded mutations per format, the crafted corrupt
// counts that used to spin ~4B failed-read iterations, evil v2 chunk
// headers (zero chunk size, unknown encodings, lying dictionaries), the
// duplicate-name blobs that used to abort inside AddRelationalTriple's
// SDEA_CHECK, and the atomic-save guarantee for kg::SaveBinary.
#include "kg/binary_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "base/fileio.h"
#include "datagen/generator.h"
#include "testing/faults.h"
#include "testing/fuzz.h"

namespace sdea::kg {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

KnowledgeGraph SmallGraph() {
  datagen::GeneratorConfig cfg;
  cfg.num_matched = 40;
  auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  return std::move(bench.kg1);
}

sdea::testing::DecodeFn Decoder() {
  return [](const std::string& blob) { return DecodeBinary(blob).status(); };
}

TEST(KgBinaryFuzzTest, ValidBlobDecodes) {
  const KnowledgeGraph g = SmallGraph();
  const std::string blob = EncodeBinary(g);
  EXPECT_EQ(blob.substr(0, 8), "SDEAKGB2");
  auto decoded = DecodeBinary(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_entities(), g.num_entities());
  EXPECT_EQ(decoded->relational_triples().size(),
            g.relational_triples().size());
  // The decoded graph re-encodes to the identical bytes: the chunked
  // format round-trips exactly.
  EXPECT_EQ(EncodeBinary(*decoded), blob);
}

TEST(KgBinaryFuzzTest, LegacyV1BlobStillLoads) {
  const KnowledgeGraph g = SmallGraph();
  const std::string v1 = EncodeBinaryV1(g);
  EXPECT_EQ(v1.substr(0, 8), "SDEAKGB1");
  auto decoded = DecodeBinary(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_entities(), g.num_entities());
  ASSERT_EQ(decoded->relational_triples().size(),
            g.relational_triples().size());
  ASSERT_EQ(decoded->attribute_triples().size(),
            g.attribute_triples().size());
  for (size_t i = 0; i < g.attribute_triples().size(); ++i) {
    EXPECT_EQ(decoded->attribute_triples()[i].value,
              g.attribute_triples()[i].value);
  }
  // Loading legacy bytes and re-saving produces the current format with
  // the same content.
  EXPECT_EQ(EncodeBinary(*decoded), EncodeBinary(g));
}

TEST(KgBinaryFuzzTest, TruncationAtEveryOffset) {
  const std::string blob = EncodeBinary(SmallGraph());
  sdea::testing::FuzzStats stats;
  const Status verdict =
      sdea::testing::CheckTruncationRobustness(blob, Decoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, static_cast<int64_t>(blob.size()));
  // Every strict prefix must be rejected — none may "load as garbage".
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(KgBinaryFuzzTest, TruncationAtEveryOffsetV1) {
  const std::string blob = EncodeBinaryV1(SmallGraph());
  sdea::testing::FuzzStats stats;
  const Status verdict =
      sdea::testing::CheckTruncationRobustness(blob, Decoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(KgBinaryFuzzTest, SeededMutations) {
  const std::string blob = EncodeBinary(SmallGraph());
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      blob, Decoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, options.iterations);
  // The corpus must actually exercise the reject path.
  EXPECT_GT(stats.rejected, 0);
}

TEST(KgBinaryFuzzTest, SeededMutationsV1) {
  const std::string blob = EncodeBinaryV1(SmallGraph());
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  options.seed = 0x5dea2;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      blob, Decoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_GT(stats.rejected, 0);
}

TEST(KgBinaryFuzzTest, HugeEntityCountRejectsInConstantTime) {
  std::string blob = EncodeBinary(SmallGraph());
  // The entity count lives right after the 8-byte magic.
  const uint32_t evil = 0xFFFFFFFFu;
  std::memcpy(blob.data() + 8, &evil, 4);
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgBinaryFuzzTest, DuplicateRelationNameRejectedNotAborted) {
  // Hand-built blob: 2 entities, a relation table declaring 2 entries that
  // intern to the same id, and a triple referencing relation 1 — which
  // exists per the declared count but not in the interned table. The old
  // decoder ran this straight into AddRelationalTriple's SDEA_CHECK.
  std::string blob = "SDEAKGB1";
  AppendU32(&blob, 2);  // entities
  AppendString(&blob, "a");
  AppendString(&blob, "b");
  AppendU32(&blob, 2);  // relations (duplicates!)
  AppendString(&blob, "r");
  AppendString(&blob, "r");
  AppendU32(&blob, 0);  // attributes
  AppendU32(&blob, 1);  // relational triples
  AppendU32(&blob, 0);  // head
  AppendU32(&blob, 1);  // relation id 1: declared, never interned
  AppendU32(&blob, 1);  // tail
  AppendU32(&blob, 0);  // attribute triples
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// Minimal valid v2 prologue: 1 entity "a", 0 relations, 1 attribute "p",
// empty relational section. Callers append the attribute section.
std::string V2Prologue() {
  std::string blob = "SDEAKGB2";
  AppendU32(&blob, 1);  // entities
  AppendString(&blob, "a");
  AppendU32(&blob, 0);  // relations
  AppendU32(&blob, 1);  // attributes
  AppendString(&blob, "p");
  AppendU32(&blob, 0);     // relational rows
  AppendU32(&blob, 4096);  // relational chunk size
  return blob;
}

TEST(KgBinaryFuzzTest, V2ZeroChunkSizeRejectedNotLooped) {
  // rows > 0 with chunk size 0 would loop forever advancing base by 0.
  std::string blob = "SDEAKGB2";
  AppendU32(&blob, 1);
  AppendString(&blob, "a");
  AppendU32(&blob, 1);
  AppendString(&blob, "r");
  AppendU32(&blob, 0);  // attributes
  AppendU32(&blob, 8);  // relational rows
  AppendU32(&blob, 0);  // chunk size: evil
  for (int i = 0; i < 24; ++i) AppendU32(&blob, 0);
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgBinaryFuzzTest, V2UnknownChunkEncodingRejected) {
  std::string blob = V2Prologue();
  AppendU32(&blob, 1);     // attribute rows
  AppendU32(&blob, 2048);  // chunk size
  AppendU32(&blob, 0);     // entity column
  AppendU32(&blob, 0);     // attribute column
  blob.push_back(7);       // encoding byte: neither plain nor dict
  AppendString(&blob, "x");
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgBinaryFuzzTest, V2DictLargerThanChunkRejected) {
  std::string blob = V2Prologue();
  AppendU32(&blob, 1);     // attribute rows
  AppendU32(&blob, 2048);  // chunk size
  AppendU32(&blob, 0);     // entity column
  AppendU32(&blob, 0);     // attribute column
  blob.push_back(1);       // dict encoding
  AppendU32(&blob, 2);     // dict entries: more than the chunk's 1 row
  AppendString(&blob, "x");
  AppendString(&blob, "y");
  AppendU32(&blob, 0);  // code
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgBinaryFuzzTest, V2DictCodePastDictionaryRejected) {
  std::string blob = V2Prologue();
  AppendU32(&blob, 2);     // attribute rows
  AppendU32(&blob, 2048);  // chunk size
  AppendU32(&blob, 0);     // entity column x2
  AppendU32(&blob, 0);
  AppendU32(&blob, 0);  // attribute column x2
  AppendU32(&blob, 0);
  blob.push_back(1);    // dict encoding
  AppendU32(&blob, 1);  // one dict entry
  AppendString(&blob, "x");
  AppendU32(&blob, 0);  // code 0: fine
  AppendU32(&blob, 5);  // code 5: past the dictionary
  auto decoded = DecodeBinary(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgBinaryFuzzTest, V2HugeRowCountsRejectInConstantTime) {
  for (const size_t patch_at : {8u, 0u}) {
    std::string blob = EncodeBinary(SmallGraph());
    const uint32_t evil = 0xFFFFFFFFu;
    // Patch the entity count (offset 8) and, separately, leave the magic
    // but splat the relational row count region by brute force: every u32
    // in the blob gets tried by the mutation corpus anyway, so here just
    // check the entity-count case and a mid-blob splat.
    const size_t off = patch_at == 0 ? blob.size() / 2 : patch_at;
    std::memcpy(blob.data() + off, &evil, 4);
    auto decoded = DecodeBinary(blob);
    // Either rejected or (for the mid-blob splat) decoded if the bytes
    // happened to be value payload — never a hang or crash.
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(KgBinaryFuzzTest, SaveBinaryIsAtomicUnderInjectedFaults) {
  const KnowledgeGraph g = SmallGraph();
  const std::string path = TempPath("sdea_kg_atomic_fuzz.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  KnowledgeGraph replacement;
  replacement.AddEntity("only");

  // Break the save at each stage (hard write failure, 10-byte short
  // write, failed rename): the file on disk must still load as the
  // original complete graph every time.
  for (const auto& plan :
       {sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kWrite},
        sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kWrite,
                                 .short_write_bytes = 10},
        sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kRename}}) {
    sdea::testing::CountdownFaultInjector injector{plan};
    {
      ScopedFaultInjector scope(&injector);
      EXPECT_FALSE(SaveBinary(replacement, path).ok());
    }
    EXPECT_EQ(injector.faults_injected(), 1);
    auto loaded = LoadBinary(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_entities(), g.num_entities());
    EXPECT_EQ(loaded->relational_triples().size(),
              g.relational_triples().size());
  }
}

}  // namespace
}  // namespace sdea::kg
