#include "text/normalizer.h"

#include <gtest/gtest.h>

namespace sdea::text {
namespace {

TEST(NormalizerTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeText("Hello   WORLD"), "hello world");
}

TEST(NormalizerTest, PunctuationToSpaces) {
  EXPECT_EQ(NormalizeText("a-b_c(d)"), "a b c d");
}

TEST(NormalizerTest, KeepsNumbersWithDecimalPoints) {
  EXPECT_EQ(NormalizeText("pi is 3.14"), "pi is 3.14");
}

TEST(NormalizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("   \t\n "), "");
}

TEST(NormalizerTest, KeepsNonAsciiBytes) {
  const std::string s = "caf\xc3\xa9";
  EXPECT_EQ(NormalizeText(s), s);
}

TEST(NormalizeAndSplitTest, Words) {
  EXPECT_EQ(NormalizeAndSplit("Fabian Wendelin Bruskewitz, 1935!"),
            (std::vector<std::string>{"fabian", "wendelin", "bruskewitz",
                                      "1935"}));
}

TEST(NormalizeAndSplitTest, StripsDanglingDots) {
  // A sentence-final period must not glue to the word.
  EXPECT_EQ(NormalizeAndSplit("end."),
            (std::vector<std::string>{"end"}));
  EXPECT_EQ(NormalizeAndSplit("3.14."),
            (std::vector<std::string>{"3.14"}));
}

TEST(NormalizeAndSplitTest, PureSeparatorWordsDropped) {
  EXPECT_TRUE(NormalizeAndSplit("... , .").empty());
}

}  // namespace
}  // namespace sdea::text
