// End-to-end QuantizedStore: write → mmap-open → query, the exactness
// contract against the full-precision EmbeddingStore, compression
// accounting, fault injection on the open path, and compressed candidate
// generation (Hits@1 preserved on a generated pair).
#include "store/quantized_store.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "base/fileio.h"
#include "base/rng.h"
#include "base/threadpool.h"
#include "core/candidate_generator.h"
#include "core/embedding_store.h"
#include "obs/registry.h"
#include "store/candidates.h"
#include "testing/faults.h"
#include "tensor/tensor.h"

namespace sdea::store {
namespace {

std::string TempDir(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Tensor t({n, d});
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  return t;
}

std::vector<std::string> Names(int64_t n) {
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) {
    names.push_back("entity/" + std::to_string(i));
  }
  return names;
}

TEST(QuantizedStoreTest, WriteOpenRoundTripInt8) {
  const std::string dir = TempDir("sdea_qstore_int8");
  const int64_t n = 300, d = 32;
  const Tensor rows = RandomRows(n, d, 10);
  StoreWriteOptions options;
  options.rows_per_shard = 128;  // Forces 3 shards.
  ASSERT_TRUE(QuantizedStore::Write(dir, Names(n), rows, options).ok());

  auto open = QuantizedStore::Open(dir);
  ASSERT_TRUE(open.ok()) << open.status().message();
  EXPECT_EQ(open->size(), n);
  EXPECT_EQ(open->dim(), d);
  EXPECT_EQ(open->quantization(), Quantization::kInt8);
  EXPECT_TRUE(open->has_full_precision());
  EXPECT_EQ(open->name(0), "entity/0");
  EXPECT_EQ(open->name(200), "entity/200");  // Crosses a shard boundary.
  EXPECT_EQ(open->name(n - 1), "entity/299");

  // fp32 rows must be byte-identical to EmbeddingStore's normalization.
  auto reference = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(reference.ok());
  for (int64_t id : {0L, 127L, 128L, 255L, 256L, 299L}) {
    const float* got = open->row(id);
    ASSERT_NE(got, nullptr);
    for (int64_t j = 0; j < d; ++j) {
      EXPECT_EQ(got[j], reference->embeddings().data()[id * d + j])
          << "row " << id << " component " << j;
    }
  }

  // The headline memory claim: int8 codes are exactly dim bytes/row — a
  // 4x reduction over the fp32 region.
  EXPECT_EQ(open->compressed_bytes(), n * d);
  EXPECT_EQ(open->full_precision_bytes(), n * d * 4);
}

TEST(QuantizedStoreTest, RerankReproducesFullPrecisionTop1) {
  // The acceptance contract: ADC candidate generation + exact rerank
  // returns the SAME top-1 (name, id, bitwise score) as the
  // full-precision store, for every query in a held-out batch.
  const std::string dir = TempDir("sdea_qstore_exact");
  const int64_t n = 500, d = 64, queries = 40;
  const Tensor rows = RandomRows(n, d, 20);
  ASSERT_TRUE(QuantizedStore::Write(dir, Names(n), rows, {}).ok());
  auto qstore = QuantizedStore::Open(dir);
  ASSERT_TRUE(qstore.ok());
  auto reference = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(reference.ok());

  const Tensor probe = RandomRows(queries, d, 77);
  int64_t hits10_agree = 0;
  for (int64_t i = 0; i < queries; ++i) {
    const Tensor q = probe.Row(i);
    const auto full = reference->NearestNeighbors(q, 10);
    const auto quant = qstore->NearestNeighbors(q, 10);
    ASSERT_EQ(full.size(), quant.size());
    // Top-1 must match exactly — id, name, and the float score bit.
    EXPECT_EQ(quant[0].id, full[0].id) << "query " << i;
    EXPECT_EQ(quant[0].name, full[0].name) << "query " << i;
    EXPECT_EQ(quant[0].similarity, full[0].similarity) << "query " << i;
    // Documented Hits@10 tolerance: the ADC pool may miss deep-tail
    // entries; >= 9 of the full-precision top-10 survive per query here.
    std::set<int64_t> full_ids, quant_ids;
    for (const auto& nb : full) full_ids.insert(nb.id);
    for (const auto& nb : quant) quant_ids.insert(nb.id);
    int64_t overlap = 0;
    for (int64_t id : full_ids) overlap += quant_ids.count(id);
    EXPECT_GE(overlap, 9) << "query " << i;
    if (overlap == 10) ++hits10_agree;
  }
  // In aggregate nearly all queries agree on the full top-10 too.
  EXPECT_GE(hits10_agree, queries * 9 / 10);
}

TEST(QuantizedStoreTest, PqStoreServesAndReranksExactly) {
  const std::string dir = TempDir("sdea_qstore_pq");
  const int64_t n = 400, d = 32;
  const Tensor rows = RandomRows(n, d, 30);
  StoreWriteOptions options;
  options.quantization = Quantization::kPq;
  options.pq.num_subspaces = 4;
  options.pq.num_centroids = 64;
  options.rows_per_shard = 150;
  ASSERT_TRUE(QuantizedStore::Write(dir, Names(n), rows, options).ok());
  auto qstore = QuantizedStore::Open(dir);
  ASSERT_TRUE(qstore.ok()) << qstore.status().message();
  EXPECT_EQ(qstore->quantization(), Quantization::kPq);
  // PQ codes are num_subspaces bytes/row: 32x smaller than fp32 here.
  EXPECT_EQ(qstore->compressed_bytes(), n * 4);
  EXPECT_EQ(qstore->full_precision_bytes(), n * d * 4);

  auto reference = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(reference.ok());
  const Tensor probe = RandomRows(20, d, 31);
  StoreQueryOptions query_options;
  query_options.rerank_pool = 64;  // PQ is coarser; widen the pool.
  int64_t top1_match = 0;
  for (int64_t i = 0; i < 20; ++i) {
    const Tensor q = probe.Row(i);
    const auto full = reference->NearestNeighbors(q, 1);
    const auto quant = qstore->NearestNeighbors(q, 1, query_options);
    ASSERT_EQ(quant.size(), 1u);
    if (quant[0].id == full[0].id &&
        quant[0].similarity == full[0].similarity) {
      ++top1_match;
    }
  }
  EXPECT_EQ(top1_match, 20);
}

TEST(QuantizedStoreTest, AdcOnlyModeAndCandidates) {
  const std::string dir = TempDir("sdea_qstore_adconly");
  const int64_t n = 200, d = 16;
  const Tensor rows = RandomRows(n, d, 40);
  StoreWriteOptions options;
  options.store_full_precision = false;
  ASSERT_TRUE(QuantizedStore::Write(dir, Names(n), rows, options).ok());
  auto qstore = QuantizedStore::Open(dir);
  ASSERT_TRUE(qstore.ok()) << qstore.status().message();
  EXPECT_FALSE(qstore->has_full_precision());
  EXPECT_EQ(qstore->row(0), nullptr);
  EXPECT_EQ(qstore->full_precision_bytes(), 0);

  const Tensor q = RandomRows(1, d, 41).Row(0);
  // Without fp32 the rerank silently degrades to ADC scores.
  const auto adc = qstore->NearestNeighbors(q, 5);
  ASSERT_EQ(adc.size(), 5u);
  const std::vector<int64_t> pool = qstore->Candidates(q, 20);
  ASSERT_EQ(pool.size(), 20u);
  // The ADC top-k heads the candidate pool in the same order.
  for (size_t i = 0; i < adc.size(); ++i) {
    EXPECT_EQ(pool[i], adc[i].id);
  }
}

TEST(QuantizedStoreTest, EmptyAndEdgeCases) {
  const std::string dir = TempDir("sdea_qstore_empty");
  ASSERT_TRUE(
      QuantizedStore::Write(dir, {}, Tensor({0, 8}), {}).ok());
  auto qstore = QuantizedStore::Open(dir);
  ASSERT_TRUE(qstore.ok()) << qstore.status().message();
  EXPECT_EQ(qstore->size(), 0);
  EXPECT_EQ(qstore->dim(), 8);
  const Tensor q = RandomRows(1, 8, 1).Row(0);
  EXPECT_TRUE(qstore->NearestNeighbors(q, 5).empty());
  EXPECT_TRUE(qstore->Candidates(q, 5).empty());

  // Duplicate names are rejected before anything lands on disk.
  EXPECT_FALSE(QuantizedStore::Write(TempDir("sdea_qstore_dup"),
                                     {"a", "a"}, RandomRows(2, 8, 2), {})
                   .ok());
}

TEST(QuantizedStoreTest, OpenFaultsAndCorruptionAreClean) {
  const std::string dir = TempDir("sdea_qstore_faults");
  const int64_t n = 50, d = 8;
  ASSERT_TRUE(
      QuantizedStore::Write(dir, Names(n), RandomRows(n, d, 50), {}).ok());

  // Missing manifest: IoError from the read layer.
  EXPECT_EQ(QuantizedStore::Open(TempDir("sdea_qstore_nowhere"))
                .status()
                .code(),
            StatusCode::kIoError);

  // Injected mmap failure on the shard file (the kMap hook).
  {
    sdea::testing::CountdownFaultInjector injector{sdea::testing::FaultPlan{
        .op = FaultInjector::FileOp::kMap, .repeat = true}};
    ScopedFaultInjector scope(&injector);
    auto open = QuantizedStore::Open(dir);
    ASSERT_FALSE(open.ok());
    EXPECT_EQ(open.status().code(), StatusCode::kIoError);
    EXPECT_GE(injector.faults_injected(), 1);
  }

  // A shard that shrinks after the manifest was written must be caught
  // by the size cross-check.
  auto shard_blob = ReadFileToString(ShardPath(dir, 0));
  ASSERT_TRUE(shard_blob.ok());
  ASSERT_TRUE(WriteStringToFile(ShardPath(dir, 0),
                                shard_blob->substr(0, shard_blob->size() / 2))
                  .ok());
  auto open = QuantizedStore::Open(dir);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kInvalidArgument);
  // Restore for any later run reusing the directory.
  ASSERT_TRUE(WriteStringToFile(ShardPath(dir, 0), *shard_blob).ok());

  // Healthy opens bump the obs counters.
  const uint64_t opens_before = obs::MetricsRegistry::Default()
                                    ->GetCounter("store.opens")
                                    ->Value();
  ASSERT_TRUE(QuantizedStore::Open(dir).ok());
  EXPECT_GT(obs::MetricsRegistry::Default()
                ->GetCounter("store.opens")
                ->Value(),
            opens_before);
}

TEST(QuantizedStoreTest, CompressedCandidatesPreserveHits1) {
  // The satellite pair test: target entities plus noisy source copies (a
  // generated alignment pair in miniature). Full-precision candidate
  // generation puts the aligned target at rank 1; the compressed path
  // must preserve every one of those Hits@1 — and agree with the exact
  // path's ranking wholesale, since both end in an exact rerank.
  const int64_t n = 300, d = 32;
  const Tensor tgt = RandomRows(n, d, 60);
  Tensor src = tgt;
  Rng noise(61);
  for (int64_t i = 0; i < src.size(); ++i) {
    src.data()[i] += 0.01f * noise.UniformFloat(-1.0f, 1.0f);
  }

  const auto exact = core::GenerateCandidates(src, tgt, 5);
  for (Quantization quant : {Quantization::kInt8, Quantization::kPq}) {
    CompressedCandidateOptions options;
    options.quantization = quant;
    options.pq.num_subspaces = 4;
    options.pq.num_centroids = 128;
    options.rerank_pool = 48;
    const auto compressed =
        GenerateCandidatesCompressed(src, tgt, 5, options);
    ASSERT_EQ(compressed.size(), exact.size());
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_FALSE(compressed[static_cast<size_t>(i)].empty());
      EXPECT_EQ(compressed[static_cast<size_t>(i)][0],
                exact[static_cast<size_t>(i)][0])
          << QuantizationName(quant) << " row " << i;
    }
  }
}

TEST(QuantizedStoreTest, CompressedCandidatesDeterministicAcrossThreads) {
  const Tensor src = RandomRows(60, 16, 70);
  const Tensor tgt = RandomRows(200, 16, 71);
  std::vector<std::vector<int64_t>> baseline;
  for (int threads : {1, 4}) {
    base::ThreadPool::SetGlobalNumThreads(threads);
    const auto out = GenerateCandidatesCompressed(src, tgt, 5, {});
    if (threads == 1) {
      baseline = out;
    } else {
      EXPECT_EQ(out, baseline);
    }
  }
  base::ThreadPool::SetGlobalNumThreads(base::ThreadPool::DefaultNumThreads());
}

}  // namespace
}  // namespace sdea::store
