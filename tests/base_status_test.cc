#include "base/status.h"

#include <gtest/gtest.h>

namespace sdea {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello world");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello world");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SDEA_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailThenOk(bool fail) {
  SDEA_RETURN_IF_ERROR(fail ? Status::IoError("io") : Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailThenOk(false).ok());
  EXPECT_EQ(FailThenOk(true).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sdea
