// Serve-layer no-match handling: non-finite similarities are never served
// (regression: an all-NaN snapshot row used to be returned as the "best"
// neighbor), and the calibrated abstain rule turns weak/ambiguous answers
// into explicit OK-but-empty no-match responses.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/embedding_store.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace sdea::serve {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

core::EmbeddingStore StoreFromRows(
    const std::vector<std::vector<float>>& rows) {
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t d = static_cast<int64_t>(rows[0].size());
  Tensor embeddings({n, d});
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) {
    names.push_back("e" + std::to_string(i));
    for (int64_t j = 0; j < d; ++j) {
      embeddings[i * d + j] =
          rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  auto store = core::EmbeddingStore::Create(std::move(names),
                                            std::move(embeddings));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

ServerOptions NoIndexOptions() {
  ServerOptions options;
  options.build_index = false;  // Tiny stores: exact scan.
  return options;
}

TEST(ServeNoMatchTest, NaNRowsAreNeverServed) {
  // One diverged (all-NaN) row among finite ones: it must not appear in
  // any answer, whatever its NaN "similarity" compares like in top-k.
  AlignmentServer server(NoIndexOptions());
  server.SwapSnapshot(StoreFromRows({{1.0f, 0.0f},
                                     {0.0f, 1.0f},
                                     {kNaN, kNaN},
                                     {0.7f, 0.7f}}));
  auto result =
      server.AlignEmbedding(Tensor::FromVector({1.0f, 0.0f}), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  for (const Neighbor& nb : *result) {
    EXPECT_TRUE(std::isfinite(nb.similarity));
    EXPECT_NE(nb.name, "e2");
  }
}

TEST(ServeNoMatchTest, AllNaNSnapshotYieldsEmptyOkAnswer) {
  // Pre-fix this returned NaN-scored neighbors with status OK.
  AlignmentServer server(NoIndexOptions());
  server.SwapSnapshot(StoreFromRows({{kNaN, kNaN}, {kNaN, kNaN}}));
  auto result =
      server.AlignEmbedding(Tensor::FromVector({1.0f, 0.0f}), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ServeNoMatchTest, AbstainThresholdTurnsWeakBestIntoNoMatch) {
  ServerOptions options = NoIndexOptions();
  options.abstain.enabled = true;
  options.abstain.min_similarity = 0.9f;
  AlignmentServer server(options);
  server.SwapSnapshot(StoreFromRows({{1.0f, 0.0f}, {0.0f, 1.0f}}));

  // Strong best candidate: served normally.
  auto hit = server.AlignEmbedding(Tensor::FromVector({1.0f, 0.05f}), 1);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ(hit->front().name, "e0");

  // Equidistant query: best similarity ~0.707 fails the floor, so the
  // explicit no-match answer is OK + empty, counted in the stats.
  auto miss = server.AlignEmbedding(Tensor::FromVector({1.0f, 1.0f}), 2);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
  const StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.no_match_answers, 1u);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.failed_queries, 0u);
}

TEST(ServeNoMatchTest, MarginRuleRejectsAmbiguousAnswers) {
  ServerOptions options = NoIndexOptions();
  options.abstain.enabled = true;
  options.abstain.min_margin = 0.1f;
  AlignmentServer server(options);
  // Two near-duplicate entries plus a distant one.
  server.SwapSnapshot(StoreFromRows({{1.0f, 0.0f},
                                     {0.998f, 0.063f},
                                     {0.0f, 1.0f}}));

  // Query near the duplicates: top1-top2 margin is tiny -> no-match.
  auto ambiguous =
      server.AlignEmbedding(Tensor::FromVector({1.0f, 0.03f}), 3);
  ASSERT_TRUE(ambiguous.ok());
  EXPECT_TRUE(ambiguous->empty());

  // k = 1 returns a single candidate: no runner-up in the answer, so the
  // margin criterion cannot reject it.
  auto single = server.AlignEmbedding(Tensor::FromVector({1.0f, 0.03f}), 1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->size(), 1u);
}

TEST(ServeNoMatchTest, DisabledAbstainKeepsForcedAnswers) {
  AlignmentServer server(NoIndexOptions());
  server.SwapSnapshot(StoreFromRows({{1.0f, 0.0f}, {0.0f, 1.0f}}));
  auto result = server.AlignEmbedding(Tensor::FromVector({1.0f, 1.0f}), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // Weak but served: no rule configured.
  EXPECT_EQ(server.stats().no_match_answers, 0u);
}

}  // namespace
}  // namespace sdea::serve
