#include "core/relation_embedding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdea::core {
namespace {

// Two tiny star-shaped KGs whose entity i corresponds across sides.
struct TinyKgs {
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;
  Tensor ha1;
  Tensor ha2;
  kg::AlignmentSeeds seeds;
};

TinyKgs MakeKgs() {
  TinyKgs t;
  Rng rng(3);
  auto build = [&](kg::KnowledgeGraph* g, const std::string& prefix) {
    for (int i = 0; i < 8; ++i) {
      g->AddEntity(prefix + std::to_string(i));
    }
    const kg::RelationId r = g->AddRelation("rel");
    // Entity 0 is a hub; entity 7 is isolated.
    for (int i = 1; i <= 5; ++i) {
      g->AddRelationalTriple(0, r, static_cast<kg::EntityId>(i));
    }
    g->AddRelationalTriple(5, r, 6);
  };
  build(&t.kg1, "a");
  build(&t.kg2, "b");
  // Attribute embeddings: aligned entities share (noisy) vectors.
  t.ha1 = Tensor::RandomNormal({8, 6}, 1.0f, &rng);
  t.ha2 = t.ha1;
  for (int64_t i = 0; i < t.ha2.size(); ++i) {
    t.ha2[i] += static_cast<float>(rng.Normal(0.0, 0.05));
  }
  tmath::L2NormalizeRowsInPlace(&t.ha1);
  tmath::L2NormalizeRowsInPlace(&t.ha2);
  for (int i = 0; i < 5; ++i) t.seeds.train.emplace_back(i, i);
  t.seeds.valid.emplace_back(5, 5);
  t.seeds.test.emplace_back(6, 6);
  t.seeds.test.emplace_back(7, 7);
  return t;
}

RelationModuleConfig TinyConfig() {
  RelationModuleConfig c;
  c.hidden_dim = 8;
  c.joint_dim = 8;
  c.max_epochs = 4;
  c.patience = 4;
  c.batch_size = 4;
  return c;
}

TEST(RelationModuleTest, InitValidatesArguments) {
  TinyKgs t = MakeKgs();
  RelationEmbeddingModule m;
  EXPECT_FALSE(m.Init(t.kg1, t.kg2, 0, TinyConfig()).ok());
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, TinyConfig()).ok());
  EXPECT_EQ(m.Init(t.kg1, t.kg2, 6, TinyConfig()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RelationModuleTest, NeighborListsCappedAndFallback) {
  TinyKgs t = MakeKgs();
  RelationModuleConfig c = TinyConfig();
  c.max_neighbors = 3;
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, c).ok());
  EXPECT_EQ(m.neighbor_list(1, 0).size(), 3u);  // Hub capped at 3.
  // Isolated entity falls back to itself.
  const auto& isolated = m.neighbor_list(1, 7);
  ASSERT_EQ(isolated.size(), 1u);
  EXPECT_EQ(isolated[0], 7);
}

TEST(RelationModuleTest, ForwardShapesAndNorms) {
  TinyKgs t = MakeKgs();
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, TinyConfig()).ok());
  Graph g;
  NodeId hr, hm;
  m.ForwardEntity(&g, 1, 0, t.ha1, &hr, &hm);
  EXPECT_EQ(g.Value(hr).shape(), (std::vector<int64_t>{1, 8}));
  EXPECT_EQ(g.Value(hm).shape(), (std::vector<int64_t>{1, 8}));
  EXPECT_NEAR(g.Value(hr).Norm(), 1.0f, 1e-4f);
  EXPECT_NEAR(g.Value(hm).Norm(), 1.0f, 1e-4f);
}

TEST(RelationModuleTest, EntityEmbeddingLayout) {
  TinyKgs t = MakeKgs();
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, TinyConfig()).ok());
  EXPECT_EQ(m.entity_embedding_dim(), 8 + 6 + 8);
  const Tensor ent = m.ComputeEntityEmbeddings(1, t.ha1);
  EXPECT_EQ(ent.shape(), (std::vector<int64_t>{8, 22}));
  // Middle block is the (normalized) attribute embedding.
  for (int64_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(ent.at(2, 8 + j), t.ha1.at(2, j), 1e-4f);
  }
}

TEST(RelationModuleTest, TrainRunsAndReports) {
  TinyKgs t = MakeKgs();
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, TinyConfig()).ok());
  auto report = m.Train(t.ha1, t.ha2, t.seeds);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->epochs_run, 0);
}

TEST(RelationModuleTest, TrainRejectsEmptySeeds) {
  TinyKgs t = MakeKgs();
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, TinyConfig()).ok());
  kg::AlignmentSeeds empty;
  EXPECT_EQ(m.Train(t.ha1, t.ha2, empty).status().code(),
            StatusCode::kInvalidArgument);
}

// Aggregation ablation parameterized over all three strategies: every
// variant must produce valid, unit-norm embeddings.
class AggregationTest
    : public ::testing::TestWithParam<NeighborAggregation> {};

TEST_P(AggregationTest, ForwardWorks) {
  TinyKgs t = MakeKgs();
  RelationModuleConfig c = TinyConfig();
  c.aggregation = GetParam();
  RelationEmbeddingModule m;
  ASSERT_TRUE(m.Init(t.kg1, t.kg2, 6, c).ok());
  for (kg::EntityId e = 0; e < 8; ++e) {
    Graph g;
    NodeId hr, hm;
    m.ForwardEntity(&g, 1, e, t.ha1, &hr, &hm);
    EXPECT_NEAR(g.Value(hr).Norm(), 1.0f, 1e-4f);
    for (int64_t i = 0; i < g.Value(hr).size(); ++i) {
      EXPECT_TRUE(std::isfinite(g.Value(hr)[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, AggregationTest,
    ::testing::Values(NeighborAggregation::kBiGruAttention,
                      NeighborAggregation::kMeanPooling,
                      NeighborAggregation::kAttentionOnly),
    [](const ::testing::TestParamInfo<NeighborAggregation>& info) {
      switch (info.param) {
        case NeighborAggregation::kBiGruAttention:
          return "BiGruAttention";
        case NeighborAggregation::kMeanPooling:
          return "MeanPooling";
        case NeighborAggregation::kAttentionOnly:
          return "AttentionOnly";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace sdea::core
