// Fuzz regression suite for the SDEAEMB1 embedding-store decoder:
// truncation at every offset, thousands of seeded mutations, and the
// crafted count/dim headers that used to throw length_error from a huge
// reserve, wrap `count * dim`, or hand the Tensor constructor a negative
// dimension and abort (count == 0 with an evil dim was a separate path to
// the same abort).
#include "core/embedding_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "testing/fuzz.h"

namespace sdea::core {
namespace {

EmbeddingStore SampleStore() {
  Tensor emb({4, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1});
  auto store = EmbeddingStore::Create(
      {"alpha", "beta", "gamma", "delta"}, std::move(emb));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

sdea::testing::DecodeFn Decoder() {
  return [](const std::string& blob) {
    return EmbeddingStore::Decode(blob).status();
  };
}

TEST(EmbeddingStoreFuzzTest, ValidBlobDecodes) {
  const EmbeddingStore store = SampleStore();
  const std::string blob = store.Encode();
  auto decoded = EmbeddingStore::Decode(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), store.size());
  EXPECT_EQ(decoded->dim(), store.dim());
  EXPECT_EQ(decoded->names(), store.names());
}

TEST(EmbeddingStoreFuzzTest, TruncationAtEveryOffset) {
  const std::string blob = SampleStore().Encode();
  sdea::testing::FuzzStats stats;
  const Status verdict =
      sdea::testing::CheckTruncationRobustness(blob, Decoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, static_cast<int64_t>(blob.size()));
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(EmbeddingStoreFuzzTest, SeededMutations) {
  const std::string blob = SampleStore().Encode();
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      blob, Decoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, options.iterations);
  EXPECT_GT(stats.rejected, 0);
}

TEST(EmbeddingStoreFuzzTest, EvilCountAndDimRejectInConstantTime) {
  const std::string good = SampleStore().Encode();
  // Layout: 8-byte magic, u64 count, u64 dim.
  const std::vector<std::pair<uint64_t, uint64_t>> evil_headers = {
      {~uint64_t{0}, 3},
      {4, ~uint64_t{0}},
      {0, uint64_t{1} << 63},          // count==0 path to a negative dim.
      {uint64_t{1} << 32, uint64_t{1} << 32},  // Product wraps int64.
  };
  for (const auto& [count, dim] : evil_headers) {
    std::string blob = good;
    std::memcpy(blob.data() + 8, &count, 8);
    std::memcpy(blob.data() + 16, &dim, 8);
    auto decoded = EmbeddingStore::Decode(blob);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace sdea::core
