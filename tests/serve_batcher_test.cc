#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sdea::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// A batch function that answers each request with a single neighbor
// echoing the request's own fields, so a mis-routed answer is detectable.
void EchoBatch(std::vector<ServeRequest>* batch) {
  for (ServeRequest& request : *batch) {
    std::vector<Neighbor> answer;
    answer.push_back(Neighbor{request.text, request.k, 1.0f});
    request.promise.set_value(AlignResult(std::move(answer)));
  }
}

ServeRequest TextRequest(const std::string& text, int64_t k) {
  ServeRequest request;
  request.is_text = true;
  request.text = text;
  request.k = k;
  return request;
}

TEST(RequestBatcherTest, SingleRequestRoundTrip) {
  RequestBatcher batcher({.max_batch_size = 8, .max_wait = microseconds(100)},
                         EchoBatch);
  auto future = batcher.Submit(TextRequest("hello", 3));
  AlignResult result = future.get();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].name, "hello");
  EXPECT_EQ((*result)[0].id, 3);
}

TEST(RequestBatcherTest, EveryAnswerRoutesToItsOwnCaller) {
  RequestBatcher batcher(
      {.max_batch_size = 16, .max_wait = microseconds(200)}, EchoBatch);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&batcher, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string text =
            "req-" + std::to_string(t) + "-" + std::to_string(i);
        const int64_t k = t * 1000 + i;
        AlignResult result = batcher.Submit(TextRequest(text, k)).get();
        ASSERT_TRUE(result.ok());
        ASSERT_EQ(result->size(), 1u);
        // The answer must echo THIS request, not a batch-mate's.
        ASSERT_EQ((*result)[0].name, text);
        ASSERT_EQ((*result)[0].id, k);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(RequestBatcherTest, CoalescesConcurrentRequests) {
  std::mutex mu;
  std::vector<size_t> batch_sizes;
  RequestBatcher batcher(
      {.max_batch_size = 64, .max_wait = milliseconds(20)},
      [&](std::vector<ServeRequest>* batch) {
        {
          std::lock_guard<std::mutex> lock(mu);
          batch_sizes.push_back(batch->size());
        }
        // Slow batches let the queue build up behind them.
        std::this_thread::sleep_for(milliseconds(2));
        EchoBatch(batch);
      });
  constexpr int kRequests = 48;
  std::vector<std::future<AlignResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(batcher.Submit(TextRequest(std::to_string(i), i)));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().ok());
  }
  std::lock_guard<std::mutex> lock(mu);
  size_t total = 0, max_size = 0;
  for (size_t s : batch_sizes) {
    total += s;
    max_size = std::max(max_size, s);
  }
  EXPECT_EQ(total, static_cast<size_t>(kRequests));
  // Requests submitted while a batch was executing must have coalesced.
  EXPECT_GT(max_size, 1u);
  EXPECT_LT(batch_sizes.size(), static_cast<size_t>(kRequests));
}

TEST(RequestBatcherTest, MaxBatchSizeIsALimit) {
  std::mutex mu;
  std::vector<size_t> batch_sizes;
  std::atomic<bool> first_batch_started{false};
  RequestBatcher batcher(
      {.max_batch_size = 4, .max_wait = microseconds(100)},
      [&](std::vector<ServeRequest>* batch) {
        {
          std::lock_guard<std::mutex> lock(mu);
          batch_sizes.push_back(batch->size());
        }
        first_batch_started.store(true);
        std::this_thread::sleep_for(milliseconds(1));
        EchoBatch(batch);
      });
  std::vector<std::future<AlignResult>> futures;
  futures.push_back(batcher.Submit(TextRequest("warmup", 0)));
  while (!first_batch_started.load()) std::this_thread::yield();
  // These 31 queue behind the in-flight batch; the 4-cap must split them.
  for (int i = 0; i < 31; ++i) {
    futures.push_back(batcher.Submit(TextRequest(std::to_string(i), i)));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().ok());
  }
  std::lock_guard<std::mutex> lock(mu);
  for (size_t s : batch_sizes) EXPECT_LE(s, 4u);
}

TEST(RequestBatcherTest, DestructorDrainsPendingRequests) {
  std::vector<std::future<AlignResult>> futures;
  {
    RequestBatcher batcher(
        {.max_batch_size = 4, .max_wait = milliseconds(50)},
        [](std::vector<ServeRequest>* batch) {
          std::this_thread::sleep_for(milliseconds(1));
          EchoBatch(batch);
        });
    for (int i = 0; i < 20; ++i) {
      futures.push_back(batcher.Submit(TextRequest(std::to_string(i), i)));
    }
    // Destructor runs here with most requests still queued.
  }
  for (auto& future : futures) {
    AlignResult result = future.get();  // Must not hang or be abandoned.
    ASSERT_TRUE(result.ok());
  }
}

TEST(RequestBatcherTest, NormalizesDegenerateOptions) {
  RequestBatcher batcher(
      {.max_batch_size = -3, .max_wait = microseconds(-5)}, EchoBatch);
  EXPECT_EQ(batcher.options().max_batch_size, 1);
  EXPECT_GE(batcher.options().max_wait.count(), 0);
  auto result = batcher.Submit(TextRequest("x", 1)).get();
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace sdea::serve
