#include "datagen/lexicon.h"

#include <gtest/gtest.h>

#include <set>

namespace sdea::datagen {
namespace {

TEST(LexiconTest, Deterministic) {
  const LanguageSpec lang{7};
  EXPECT_EQ(Lexicon::Word(lang, 42), Lexicon::Word(lang, 42));
}

TEST(LexiconTest, DifferentIndicesUsuallyDiffer) {
  const LanguageSpec lang{7};
  std::set<std::string> words;
  for (int64_t i = 0; i < 500; ++i) words.insert(Lexicon::Word(lang, i));
  // Some hash collisions are tolerable; mass collision is a bug.
  EXPECT_GT(words.size(), 480u);
}

TEST(LexiconTest, SameIndexDiffersAcrossLanguages) {
  const LanguageSpec l1{1}, l2{2};
  int same = 0;
  for (int64_t i = 0; i < 200; ++i) {
    if (Lexicon::Word(l1, i) == Lexicon::Word(l2, i)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(LexiconTest, SameSeedSameSurface) {
  const LanguageSpec l1{5}, l2{5};
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(Lexicon::Word(l1, i), Lexicon::Word(l2, i));
  }
}

TEST(LexiconTest, WordsArePronounceableAscii) {
  const LanguageSpec lang{3};
  for (int64_t i = 0; i < 100; ++i) {
    const std::string w = Lexicon::Word(lang, i);
    EXPECT_GE(w.size(), 4u);   // At least two syllables.
    EXPECT_LE(w.size(), 8u);   // At most four.
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(LexiconTest, Phrase) {
  const LanguageSpec lang{9};
  const std::vector<int64_t> idx{1, 2};
  const std::string phrase = Lexicon::Phrase(lang, idx);
  EXPECT_EQ(phrase,
            Lexicon::Word(lang, 1) + " " + Lexicon::Word(lang, 2));
  EXPECT_EQ(Lexicon::Phrase(lang, std::vector<int64_t>{}), "");
}

}  // namespace
}  // namespace sdea::datagen
