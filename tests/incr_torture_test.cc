// Seeded ingest-while-serving torture: one writer streams update batches
// into the graph and publishes each increment through SwapWithKg while
// reader threads concurrently pin serving snapshots, pin KG snapshots, and
// query — the invariant is that a pinned pair is never torn (store size
// always equals the pinned KG's entity count) and graph snapshots only move
// forward. Runs under TSan in CI via the `incr` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "core/embedding_store.h"
#include "incr/update_log.h"
#include "kg/knowledge_graph.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace sdea::incr {
namespace {

constexpr int64_t kDim = 8;

/// Deterministic per-entity embedding so readers can verify rows without
/// coordinating with the writer.
Tensor EmbeddingsFor(const kg::KgSnapshot& snap) {
  Tensor t({snap.num_entities(), kDim});
  for (int64_t i = 0; i < snap.num_entities(); ++i) {
    for (int64_t k = 0; k < kDim; ++k) {
      t.data()[i * kDim + k] =
          static_cast<float>((i * 31 + k) % 17) / 17.0f + 0.01f;
    }
  }
  return t;
}

TEST(IncrTortureTest, IngestWhileServing) {
  kg::KnowledgeGraph graph;
  graph.BeginBulkLoad();
  const kg::RelationId r = graph.AddRelation("r");
  for (int i = 0; i < 50; ++i) {
    graph.AddEntity("base" + std::to_string(i));
  }
  for (int i = 0; i < 50; ++i) {
    graph.AddRelationalTriple(i, r, (i + 1) % 50);
  }
  graph.EndBulkLoad();

  serve::SnapshotManager manager;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> published{0};

  constexpr int kIncrements = 40;
  std::thread writer([&] {
    for (int inc = 0; inc < kIncrements; ++inc) {
      KgUpdate up;
      const std::string name = "new" + std::to_string(inc);
      up.new_entities = {name};
      up.relational = {{name, "r", "base" + std::to_string(inc % 50)}};
      ApplyUpdate(up, &graph);

      const kg::KgSnapshot snap = graph.Snapshot();
      std::vector<std::string> names;
      names.reserve(static_cast<size_t>(snap.num_entities()));
      for (int64_t e = 0; e < snap.num_entities(); ++e) {
        names.push_back(snap.entity_name(e));
      }
      auto store =
          core::EmbeddingStore::Create(std::move(names), EmbeddingsFor(snap));
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      published.store(manager.SwapWithKg(std::move(*store), snap),
                      std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<int64_t> reads{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      uint64_t last_graph_epoch = 0;
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire) ||
             reads.load(std::memory_order_relaxed) < 100) {
        // Serving-pair invariant: the published store always matches the
        // KG snapshot it was computed from, no matter when we pin.
        if (auto snap = manager.Current(); snap != nullptr) {
          ASSERT_TRUE(snap->has_kg());
          ASSERT_EQ(snap->size(), snap->kg.num_entities());
          ASSERT_GE(snap->version, last_version);
          last_version = snap->version;
          const auto id = static_cast<kg::EntityId>(
              rng.UniformInt(static_cast<uint64_t>(snap->kg.num_entities())));
          ASSERT_FALSE(snap->kg.entity_name(id).empty());
          if (reads.load(std::memory_order_relaxed) % 8 == 0) {
            Tensor q({1, kDim});
            for (int64_t k = 0; k < kDim; ++k) {
              q.data()[k] = rng.UniformFloat(-1.0f, 1.0f);
            }
            const auto nn = snap->NearestNeighbors(q, 3);
            ASSERT_LE(nn.size(), 3u);
            for (const auto& hit : nn) {
              ASSERT_GE(hit.id, 0);
              ASSERT_LT(hit.id, snap->size());
            }
          }
        }
        // Direct graph pins move forward and are internally consistent
        // while the writer commits.
        const kg::KgSnapshot gsnap = graph.Snapshot();
        ASSERT_GE(gsnap.epoch(), last_graph_epoch);
        last_graph_epoch = gsnap.epoch();
        ASSERT_GE(gsnap.num_entities(), 50);
        int64_t rows = 0;
        gsnap.ForEachRelational(
            [&](int64_t, kg::EntityId h, kg::RelationId, kg::EntityId tl) {
              ASSERT_LT(h, gsnap.num_entities());
              ASSERT_LT(tl, gsnap.num_entities());
              ++rows;
            });
        ASSERT_EQ(rows, gsnap.num_relational_triples());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  writer.join();
  for (std::thread& rt : readers) rt.join();

  EXPECT_EQ(published.load(), static_cast<uint64_t>(kIncrements));
  EXPECT_EQ(graph.num_entities(), 50 + kIncrements);
  auto final_snap = manager.Current();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->size(), 50 + kIncrements);
}

}  // namespace
}  // namespace sdea::incr
