// Property tests for tmath::TopK (radix select): on every input — including
// the adversarial float zoo of ties, ±0.0, NaN/Inf, and denormals — it must
// return exactly what std::partial_sort returns under the documented total
// order (score desc, NaN below -inf, -0.0 == +0.0, ties by ascending
// index / tie id).
#include "tensor/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "base/rng.h"
#include "tensor/kernels.h"

namespace sdea {
namespace {

// True when x ranks strictly above y under the documented score order
// (independent of index). Written in the float domain — deliberately NOT
// via the radix key transform — so the test checks the implementation
// against the contract, not against itself.
bool RanksAbove(float x, float y) {
  const bool xn = std::isnan(x), yn = std::isnan(y);
  if (xn || yn) return !xn && yn;  // Any real value outranks any NaN.
  if (x != y) return x > y;        // Note: -0.0 == +0.0 here.
  return false;
}

// Reference top-k: partial_sort over the same total order. Unlike the raw
// float comparator the call sites used to hand-roll, this one is a valid
// strict weak ordering even with NaNs present, so partial_sort's result is
// fully defined and unique.
std::vector<int64_t> ReferenceTopK(const std::vector<float>& scores,
                                   int64_t k,
                                   const std::vector<int64_t>* tie_ids) {
  const int64_t m = static_cast<int64_t>(scores.size());
  if (k <= 0 || m == 0) return {};
  const int64_t kk = std::min(k, m);
  const auto tie = [&](int64_t pos) {
    return tie_ids != nullptr ? (*tie_ids)[static_cast<size_t>(pos)] : pos;
  };
  std::vector<int64_t> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(
      order.begin(), order.begin() + kk, order.end(),
      [&](int64_t a, int64_t b) {
        const float sa = scores[static_cast<size_t>(a)];
        const float sb = scores[static_cast<size_t>(b)];
        if (RanksAbove(sa, sb)) return true;
        if (RanksAbove(sb, sa)) return false;
        return tie(a) < tie(b);
      });
  order.resize(static_cast<size_t>(kk));
  return order;
}

void ExpectMatchesReference(const std::vector<float>& scores, int64_t k,
                            const std::vector<int64_t>* tie_ids = nullptr) {
  const std::vector<int64_t> expected = ReferenceTopK(scores, k, tie_ids);
  const std::vector<int64_t> got =
      tie_ids == nullptr
          ? tmath::TopK(scores, k)
          : tmath::TopKWithTieIds(scores.data(),
                                  static_cast<int64_t>(scores.size()), k,
                                  tie_ids->data());
  EXPECT_EQ(got, expected) << "m=" << scores.size() << " k=" << k;
}

// Adversarial value pool: every equivalence-class edge the total order has.
float AdversarialValue(Rng* rng) {
  static const float kZoo[] = {
      0.0f,
      -0.0f,
      1.0f,
      -1.0f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      -std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min() / 2,  // Denormal.
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
      std::nextafterf(1.0f, 2.0f),  // 1.0 + 1 ulp.
      0.5f,
      0.5f,  // Doubled weight: plenty of exact ties.
  };
  return kZoo[rng->UniformInt(sizeof(kZoo) / sizeof(kZoo[0]))];
}

TEST(TopKTest, EmptyAndDegenerateK) {
  EXPECT_TRUE(tmath::TopK(nullptr, 0, 5).empty());
  const std::vector<float> scores = {3.0f, 1.0f, 2.0f};
  EXPECT_TRUE(tmath::TopK(scores, 0).empty());
  EXPECT_TRUE(tmath::TopK(scores, -4).empty());
  // k == m and k > m both return the full ranking.
  const std::vector<int64_t> want = {0, 2, 1};
  EXPECT_EQ(tmath::TopK(scores, 3), want);
  EXPECT_EQ(tmath::TopK(scores, 4), want);
  EXPECT_EQ(tmath::TopK(scores, 1), (std::vector<int64_t>{0}));
}

TEST(TopKTest, TiesBreakByAscendingIndex) {
  const std::vector<float> scores = {2.0f, 5.0f, 5.0f, 2.0f, 5.0f};
  const std::vector<int64_t> want = {1, 2, 4, 0};
  EXPECT_EQ(tmath::TopK(scores, 4), want);
}

TEST(TopKTest, SignedZerosAreEqual) {
  // -0.0 and +0.0 tie, so index order decides — exactly like the float
  // comparator (where -0.0f != 0.0f is false).
  const std::vector<float> scores = {-0.0f, 1.0f, 0.0f, -0.0f};
  const std::vector<int64_t> want = {1, 0, 2, 3};
  EXPECT_EQ(tmath::TopK(scores, 4), want);
}

TEST(TopKTest, NanRanksBelowNegativeInfinity) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> scores = {nan, -inf, inf, -nan, 0.0f};
  // inf > 0 > -inf > both NaNs (which tie and fall back to index order).
  const std::vector<int64_t> want = {2, 4, 1, 0, 3};
  EXPECT_EQ(tmath::TopK(scores, 5), want);
  // A NaN never displaces a real score from the top k.
  EXPECT_EQ(tmath::TopK(scores, 3), (std::vector<int64_t>{2, 4, 1}));
}

TEST(TopKTest, TieIdsOverridePositionOrder) {
  const std::vector<float> scores = {7.0f, 7.0f, 7.0f, 9.0f};
  const std::vector<int64_t> ids = {30, 10, 20, 5};
  // Returned values are positions, ranked by (score desc, id asc).
  const std::vector<int64_t> want = {3, 1, 2, 0};
  EXPECT_EQ(tmath::TopKWithTieIds(scores.data(), 4, 4, ids.data()), want);
  EXPECT_EQ(tmath::TopKWithTieIds(scores.data(), 4, 2, ids.data()),
            (std::vector<int64_t>{3, 1}));
}

TEST(TopKTest, PropertyMatchesPartialSortOnAdversarialInputs) {
  Rng rng(1234);
  for (int trial = 0; trial < 400; ++trial) {
    const int64_t m = static_cast<int64_t>(rng.UniformInt(40));
    std::vector<float> scores(static_cast<size_t>(m));
    for (float& s : scores) {
      // Half the values from the adversarial zoo, half smooth randoms.
      s = rng.UniformInt(2) == 0
              ? AdversarialValue(&rng)
              : rng.UniformFloat(-2.0f, 2.0f);
    }
    for (const int64_t k :
         {int64_t{0}, int64_t{1}, m / 2, m - 1, m, m + 1}) {
      ExpectMatchesReference(scores, k);
    }
  }
}

TEST(TopKTest, PropertyMatchesPartialSortAtScale) {
  // Larger arrays cross several radix levels and exercise the exact-fit
  // bucket early exit; a coarse value grid forces massive tie classes.
  Rng rng(99);
  for (const int64_t m : {int64_t{1000}, int64_t{5000}}) {
    std::vector<float> scores(static_cast<size_t>(m));
    for (float& s : scores) {
      s = static_cast<float>(rng.UniformInt(17)) * 0.25f - 2.0f;
    }
    for (const int64_t k : {int64_t{1}, int64_t{10}, int64_t{999}, m}) {
      ExpectMatchesReference(scores, k);
    }
  }
}

// Above m = 16384 TopK tries a sampled prefilter (threshold scan +
// select among candidates) before the full radix select. These tests pin
// that the fast path — and every one of its fallbacks — still returns
// exactly the reference answer, at every available SIMD level (the
// candidate scan dispatches through kernels::FilterGe).

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(tmath::SimdLevel level)
      : saved_(tmath::ActiveSimdLevel()) {
    tmath::SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { tmath::SetSimdLevel(saved_); }

 private:
  tmath::SimdLevel saved_;
};

void ExpectMatchesReferenceAtAllSimdLevels(
    const std::vector<float>& scores, int64_t k,
    const std::vector<int64_t>* tie_ids = nullptr) {
  for (const tmath::SimdLevel level :
       {tmath::SimdLevel::kScalar, tmath::SimdLevel::kAvx2}) {
    if (level == tmath::SimdLevel::kAvx2 && !tmath::Avx2Supported()) continue;
    ScopedSimdLevel scoped(level);
    ExpectMatchesReference(scores, k, tie_ids);
  }
}

TEST(TopKTest, PrefilterPathMatchesReferenceOnSmoothScores) {
  // Smooth i.i.d. scores: the sampled threshold is selective, so the
  // prefilter path actually runs (no fallback). Straddle the minimum-m
  // boundary too, so both sides of the size gate are covered.
  Rng rng(2024);
  for (const int64_t m :
       {int64_t{16383}, int64_t{16384}, int64_t{20000}, int64_t{65536}}) {
    std::vector<float> scores(static_cast<size_t>(m));
    for (float& s : scores) s = rng.UniformFloat(-2.0f, 2.0f);
    for (const int64_t k : {int64_t{1}, int64_t{10}, int64_t{100}}) {
      ExpectMatchesReferenceAtAllSimdLevels(scores, k);
    }
  }
}

TEST(TopKTest, PrefilterFallsBackOnMassiveTiePlateau) {
  // Five distinct values over 20k elements: the sample max ties ~1/5 of
  // the input, blowing past the candidate cap. The count > cap fallback
  // must hand the whole input to the full select, unchanged.
  Rng rng(31);
  std::vector<float> scores(20000);
  for (float& s : scores) {
    s = static_cast<float>(rng.UniformInt(5)) * 0.5f - 1.0f;
  }
  for (const int64_t k : {int64_t{1}, int64_t{64}, int64_t{19999}}) {
    ExpectMatchesReferenceAtAllSimdLevels(scores, k);
  }
}

TEST(TopKTest, PrefilterFallsBackWhenSampleIsAllNan) {
  // Every sampled position is NaN (key 0), so no usable threshold exists.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> scores(20000, nan);
  // Pure NaN input: order is by ascending index.
  ExpectMatchesReferenceAtAllSimdLevels(scores, 7);
  // A handful of real scores hidden between sample points (the sample
  // stride is m / 4096 >= 4; positions != 0 mod stride are never probed).
  scores[1] = 0.25f;
  scores[2] = -3.0f;
  scores[19999] = 1.5f;
  ExpectMatchesReferenceAtAllSimdLevels(scores, 5);
}

TEST(TopKTest, PrefilterPathHonorsTieIds) {
  // Large-m duplicates + shuffled tie ids: the prefilter must carry the
  // ORIGINAL ids into the candidate select, not candidate-local indices.
  Rng rng(555);
  const int64_t m = 20000;
  std::vector<float> scores(static_cast<size_t>(m));
  for (float& s : scores) {
    // 256-value grid over 20k elements: ~78 ties per class, so the top
    // class fits inside the candidate cap (~103 here) and the prefilter
    // path genuinely runs while its winners contain exact ties.
    s = static_cast<float>(rng.UniformInt(256)) * (1.0f / 64.0f);
  }
  std::vector<int64_t> ids(static_cast<size_t>(m));
  std::iota(ids.begin(), ids.end(), 5000);
  for (int64_t i = m - 1; i > 0; --i) {
    std::swap(ids[static_cast<size_t>(i)],
              ids[rng.UniformInt(static_cast<uint64_t>(i + 1))]);
  }
  for (const int64_t k : {int64_t{1}, int64_t{25}, int64_t{100}}) {
    ExpectMatchesReferenceAtAllSimdLevels(scores, k, &ids);
  }
}

TEST(TopKTest, PropertyWithTieIdsMatchesReference) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t m = 1 + static_cast<int64_t>(rng.UniformInt(30));
    std::vector<float> scores(static_cast<size_t>(m));
    for (float& s : scores) s = AdversarialValue(&rng);
    // Unique ids in shuffled order (the IVF scan's row ids).
    std::vector<int64_t> ids(static_cast<size_t>(m));
    std::iota(ids.begin(), ids.end(), 100);
    for (int64_t i = m - 1; i > 0; --i) {
      std::swap(ids[static_cast<size_t>(i)],
                ids[rng.UniformInt(static_cast<uint64_t>(i + 1))]);
    }
    for (const int64_t k : {int64_t{1}, m / 2, m}) {
      ExpectMatchesReference(scores, k, &ids);
    }
  }
}

}  // namespace
}  // namespace sdea
