#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sdea {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  t.at(1, 1) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(TensorTest, NegativeDimIndex) {
  Tensor t({2, 5});
  EXPECT_EQ(t.dim(-1), 5);
  EXPECT_EQ(t.dim(-2), 2);
}

TEST(TensorTest, RowAndSetRow) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Row(1);
  EXPECT_EQ(r.rank(), 1);
  EXPECT_EQ(r[0], 4.0f);
  t.SetRow(0, Tensor::FromVector({7, 8, 9}));
  EXPECT_EQ(t.at(0, 2), 9.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, SumNormAbsMax) {
  Tensor t({3}, {3, -4, 0});
  EXPECT_EQ(t.Sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.Norm(), 5.0f);
  EXPECT_EQ(t.AbsMax(), 4.0f);
}

TEST(TensorTest, RandomInitBounds) {
  Rng rng(3);
  Tensor u = Tensor::RandomUniform({100, 10}, 0.5f, &rng);
  EXPECT_LE(u.AbsMax(), 0.5f);
  Tensor n = Tensor::RandomNormal({100, 10}, 1.0f, &rng);
  EXPECT_NEAR(n.Sum() / n.size(), 0.0, 0.1);
}

TEST(TMathTest, Matmul) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = tmath::Matmul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TMathTest, MatmulTransposeVariantsAgree) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal({4, 6}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({5, 6}, 1.0f, &rng);
  // a @ b^T two ways.
  Tensor direct = tmath::MatmulTransposeB(a, b);
  Tensor via_transpose = tmath::Matmul(a, tmath::Transpose(b));
  ASSERT_TRUE(direct.SameShape(via_transpose));
  for (int64_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-4f);
  }
  // a^T @ c two ways.
  Tensor c = Tensor::RandomNormal({4, 3}, 1.0f, &rng);
  Tensor ta = tmath::MatmulTransposeA(a, c);
  Tensor tb = tmath::Matmul(tmath::Transpose(a), c);
  for (int64_t i = 0; i < ta.size(); ++i) {
    EXPECT_NEAR(ta[i], tb[i], 1e-4f);
  }
}

TEST(TMathTest, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_EQ(tmath::Add(a, b)[1], 7.0f);
  EXPECT_EQ(tmath::Sub(a, b)[2], -3.0f);
  EXPECT_EQ(tmath::Mul(a, b)[0], 4.0f);
  EXPECT_EQ(tmath::Scale(a, 2.0f)[2], 6.0f);
}

TEST(TMathTest, AxpyInto) {
  Tensor a({2}, {1, 2});
  Tensor out({2}, {10, 20});
  tmath::AxpyInto(a, 3.0f, &out);
  EXPECT_EQ(out[0], 13.0f);
  EXPECT_EQ(out[1], 26.0f);
}

TEST(TMathTest, AddRowBroadcast) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor bias({2}, {10, 20});
  Tensor c = tmath::AddRowBroadcast(a, bias);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 1), 24.0f);
}

TEST(TMathTest, SoftmaxRowsSumsToOne) {
  Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = tmath::SoftmaxRows(a);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += s.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_GT(s.at(i, 2), s.at(i, 0));  // Monotone in logits.
  }
}

TEST(TMathTest, SoftmaxNumericallyStable) {
  Tensor a({1, 2}, {1000.0f, 1000.0f});
  Tensor s = tmath::SoftmaxRows(a);
  EXPECT_NEAR(s[0], 0.5f, 1e-5f);
  EXPECT_NEAR(s[1], 0.5f, 1e-5f);
}

TEST(TMathTest, CosineSimilarity) {
  Tensor a({2}, {1, 0});
  Tensor b({2}, {0, 1});
  Tensor c({2}, {2, 0});
  EXPECT_NEAR(tmath::CosineSimilarity(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(tmath::CosineSimilarity(a, c), 1.0f, 1e-6f);
  Tensor zero({2}, {0, 0});
  EXPECT_EQ(tmath::CosineSimilarity(a, zero), 0.0f);
}

TEST(TMathTest, Distances) {
  Tensor a({2}, {0, 0});
  Tensor b({2}, {3, 4});
  EXPECT_FLOAT_EQ(tmath::SquaredL2Distance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(tmath::Dot(b, b), 25.0f);
}

TEST(TMathTest, L2NormalizeRows) {
  Tensor a({2, 2}, {3, 4, 0, 0});
  tmath::L2NormalizeRowsInPlace(&a);
  EXPECT_NEAR(a.at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(a.at(0, 1), 0.8f, 1e-6f);
  // Zero row untouched.
  EXPECT_EQ(a.at(1, 0), 0.0f);
  EXPECT_EQ(a.at(1, 1), 0.0f);
}

TEST(TensorTest, SumAccumulatesInDouble) {
  // A float accumulator drifts by ~1% here (1M additions of 0.1f give
  // ~100958 instead of ~100000); double accumulation stays exact to the
  // final rounding.
  Tensor t({1000000}, 0.1f);
  EXPECT_NEAR(t.Sum(), 100000.0f, 0.5f);
}

TEST(TMathTest, MatmulPropagatesNaNThroughZeroCoefficients) {
  // 0 * NaN is NaN under IEEE semantics; the accumulation policy forbids
  // skipping zero terms, so a NaN in b must reach the output even when the
  // matching a coefficient is zero.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Tensor a({2, 2}, {0.0f, 1.0f, 1.0f, 0.0f});
  const Tensor b({2, 2}, {nan, 1.0f, 1.0f, 1.0f});
  const Tensor c = tmath::Matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*NaN + 1*1.
  EXPECT_TRUE(std::isnan(c.at(1, 0)));  // 1*NaN + 0*1.
  EXPECT_EQ(c.at(0, 1), 1.0f);
  // Same contract for the transposed-A variant.
  const Tensor ct = tmath::MatmulTransposeA(tmath::Transpose(a), b);
  EXPECT_TRUE(std::isnan(ct.at(0, 0)));
}

TEST(TMathTest, MatmulVariantsShareOneAccumulationPolicy) {
  Rng rng(99);
  const Tensor a = Tensor::RandomNormal({17, 13}, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal({13, 19}, 1.0f, &rng);
  const Tensor c = tmath::Matmul(a, b);
  const Tensor c_tb = tmath::MatmulTransposeB(a, tmath::Transpose(b));
  const Tensor c_ta = tmath::MatmulTransposeA(tmath::Transpose(a), b);
  for (int64_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], c_tb[i]);
    EXPECT_EQ(c[i], c_ta[i]);
  }
}

}  // namespace
}  // namespace sdea
