#include "nn/layers.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"

namespace sdea::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin("l", 3, 2, &rng);
  EXPECT_EQ(lin.in_dim(), 3);
  EXPECT_EQ(lin.out_dim(), 2);
  EXPECT_EQ(lin.Parameters().size(), 2u);
  Graph g;
  NodeId x = g.Input(Tensor({4, 3}, 1.0f));
  NodeId y = lin.Forward(&g, x);
  EXPECT_EQ(g.Value(y).shape(), (std::vector<int64_t>{4, 2}));
}

TEST(LinearTest, ZeroInputYieldsBias) {
  Rng rng(2);
  Linear lin("l", 3, 2, &rng);
  Graph g;
  NodeId y = lin.Forward(&g, g.Input(Tensor({1, 3})));
  // Bias starts at zero, so output must be zero.
  EXPECT_EQ(g.Value(y).AbsMax(), 0.0f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(3);
  Linear lin("l", 4, 3, &rng);
  Tensor x = Tensor::RandomNormal({2, 4}, 1.0f, &rng);
  auto loss = [&]() {
    Graph g;
    return g.Value(g.SumAll(lin.Forward(&g, g.Input(x))))[0];
  };
  auto backward = [&]() {
    Graph g;
    g.Backward(g.SumAll(lin.Forward(&g, g.Input(x))));
  };
  EXPECT_LT(MaxGradCheckError(loss, backward, lin.Parameters()), 5e-2f);
}

TEST(EmbeddingTest, LookupAndSetRow) {
  Rng rng(4);
  Embedding emb("e", 5, 3, &rng);
  emb.SetRow(2, Tensor::FromVector({1, 2, 3}));
  Tensor row = emb.Lookup(2);
  EXPECT_EQ(row[1], 2.0f);
  Graph g;
  NodeId out = emb.Forward(&g, {2, 2, 0});
  EXPECT_EQ(g.Value(out).shape(), (std::vector<int64_t>{3, 3}));
  EXPECT_EQ(g.Value(out).at(1, 2), 3.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln("ln", 4);
  Graph g;
  NodeId x = g.Input(Tensor({2, 4}, {1, 2, 3, 4, 10, 10, 10, 10}));
  const Tensor& y = g.Value(ln.Forward(&g, x));
  // Gain=1, bias=0 at init: each row has ~zero mean.
  float mean0 = 0.0f;
  for (int64_t j = 0; j < 4; ++j) mean0 += y.at(0, j);
  EXPECT_NEAR(mean0, 0.0f, 1e-4f);
  // A constant row maps to zeros.
  EXPECT_NEAR(y.at(1, 0), 0.0f, 1e-2f);
}

TEST(MlpTest, ShapesAndDepth) {
  Rng rng(6);
  Mlp mlp("m", {5, 8, 3}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.in_dim(), 5);
  EXPECT_EQ(mlp.out_dim(), 3);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // Two Linear layers.
  Graph g;
  NodeId y = mlp.Forward(&g, g.Input(Tensor({2, 5}, 0.5f)));
  EXPECT_EQ(g.Value(y).shape(), (std::vector<int64_t>{2, 3}));
}

TEST(MlpTest, SingleLayerHasNoActivation) {
  Rng rng(7);
  Mlp mlp("m", {3, 2}, Activation::kRelu, &rng);
  // With one layer the output can be negative (no trailing ReLU).
  Graph g;
  Tensor x = Tensor::RandomNormal({16, 3}, 2.0f, &rng);
  const Tensor& y = g.Value(mlp.Forward(&g, g.Input(x)));
  bool has_negative = false;
  for (int64_t i = 0; i < y.size(); ++i) has_negative |= (y[i] < 0.0f);
  EXPECT_TRUE(has_negative);
}

TEST(ModuleTest, ParameterAggregation) {
  Rng rng(8);
  Mlp mlp("m", {2, 4, 4, 1}, Activation::kTanh, &rng);
  EXPECT_EQ(mlp.Parameters().size(), 6u);
  EXPECT_EQ(mlp.NumWeights(), 2 * 4 + 4 + 4 * 4 + 4 + 4 * 1 + 1);
  mlp.ZeroGrad();
  for (Parameter* p : mlp.Parameters()) {
    EXPECT_EQ(p->grad.AbsMax(), 0.0f);
  }
}

}  // namespace
}  // namespace sdea::nn
