// Dangling-aware evaluation: the decision metrics, the abstain-threshold
// calibration, and the degenerate-gold regressions (pre-fix, out-of-range
// gold hard-aborted the process inside RanksFromScores).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "eval/abstention.h"
#include "eval/metrics.h"
#include "tensor/tensor.h"

namespace sdea::eval {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Tensor Scores(std::vector<std::vector<float>> rows) {
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t m = n > 0 ? static_cast<int64_t>(rows[0].size()) : 0;
  Tensor t({n, m});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      t[i * m + j] = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  return t;
}

// ---- EvaluateDecisions -----------------------------------------------------

TEST(EvaluateDecisionsTest, CountsEveryOutcomeKind) {
  // matchable-correct, matchable-wrong, matchable-missed,
  // dangling-abstained, dangling-forced, skipped.
  const std::vector<int64_t> predicted = {2, 0, -1, -1, 5, 7};
  const std::vector<int64_t> gold = {2,           1, 3, kGoldDangling,
                                     kGoldDangling, kGoldSkip};
  const DecisionMetrics m = EvaluateDecisions(predicted, gold);
  EXPECT_EQ(m.matchable, 3);
  EXPECT_EQ(m.dangling, 2);
  EXPECT_EQ(m.correct, 1);
  EXPECT_EQ(m.mismatched, 1);
  EXPECT_EQ(m.missed, 1);
  EXPECT_EQ(m.abstain_correct, 1);
  EXPECT_EQ(m.forced_on_dangling, 1);
  EXPECT_EQ(m.predicted_matches(), 3);
  EXPECT_EQ(m.num_queries(), 5);
  EXPECT_DOUBLE_EQ(m.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.abstain_rate, 2.0 / 5.0);
}

TEST(EvaluateDecisionsTest, AbstainingOnDanglingIsNotPenalized) {
  // All dangling, all abstained: zero predicted matches is the perfect
  // answer, and precision/recall are simply undefined-as-zero.
  const DecisionMetrics m = EvaluateDecisions(
      {-1, -1}, {kGoldDangling, kGoldDangling});
  EXPECT_EQ(m.abstain_correct, 2);
  EXPECT_EQ(m.forced_on_dangling, 0);
  EXPECT_EQ(m.predicted_matches(), 0);
  EXPECT_DOUBLE_EQ(m.abstain_rate, 1.0);
}

TEST(EvaluateDecisionsTest, ForcedMatchingOnDanglingCostsPrecision) {
  // Two matchable (both right) + two dangling. Forced matching answers the
  // danglings too; abstaining does not. Same recall, different precision.
  const std::vector<int64_t> gold = {0, 1, kGoldDangling, kGoldDangling};
  const DecisionMetrics forced = EvaluateDecisions({0, 1, 3, 4}, gold);
  const DecisionMetrics abstain = EvaluateDecisions({0, 1, -1, -1}, gold);
  EXPECT_DOUBLE_EQ(forced.precision, 0.5);
  EXPECT_DOUBLE_EQ(abstain.precision, 1.0);
  EXPECT_DOUBLE_EQ(forced.recall, abstain.recall);
  EXPECT_GT(abstain.f1, forced.f1);
}

TEST(EvaluateDecisionsTest, EmptyAndAllSkipAreZeroed) {
  const DecisionMetrics empty = EvaluateDecisions({}, {});
  EXPECT_EQ(empty.num_queries(), 0);
  EXPECT_DOUBLE_EQ(empty.f1, 0.0);
  const DecisionMetrics skipped =
      EvaluateDecisions({3, -1}, {kGoldSkip, kGoldSkip});
  EXPECT_EQ(skipped.num_queries(), 0);
  EXPECT_EQ(skipped.predicted_matches(), 0);
}

// ---- Degenerate-gold regressions (satellite: no more hard aborts) ----------

TEST(EvaluateFromScoresTest, OutOfRangeGoldIsReportedNotFatal) {
  // Pre-fix this SDEA_CHECK-crashed; now the row lands in num_invalid and
  // the valid rows still score.
  const Tensor scores = Scores({{0.9f, 0.1f}, {0.2f, 0.8f}});
  const RankingMetrics m = EvaluateFromScores(scores, {0, 7});
  EXPECT_EQ(m.num_queries, 1);
  EXPECT_EQ(m.num_invalid, 1);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
}

TEST(EvaluateFromScoresTest, EmptyTargetSetIsAllInvalid) {
  Tensor scores({2, 0});
  const RankingMetrics m = EvaluateFromScores(scores, {0, 1});
  EXPECT_EQ(m.num_queries, 0);
  EXPECT_EQ(m.num_invalid, 2);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

TEST(EvaluateFromScoresTest, DanglingGoldSkipsRankingOnly) {
  const Tensor scores = Scores({{0.9f, 0.1f}, {0.2f, 0.8f}});
  const RankingMetrics m = EvaluateFromScores(scores, {0, kGoldDangling});
  EXPECT_EQ(m.num_queries, 1);
  EXPECT_EQ(m.num_invalid, 0);
}

TEST(GoldRanksTest, OutOfRangeGoldYieldsMinusOne) {
  Rng rng(3);
  const Tensor src = Tensor::RandomNormal({3, 4}, 1.0f, &rng);
  const Tensor tgt = Tensor::RandomNormal({2, 4}, 1.0f, &rng);
  const std::vector<int64_t> ranks =
      GoldRanks(src, tgt, {1, 9, kGoldDangling});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_GE(ranks[0], 1);
  EXPECT_EQ(ranks[1], -1);  // Out of range: reported, not fatal.
  EXPECT_EQ(ranks[2], 0);   // Sentinel: not a ranking query.
}

// ---- AbstainThreshold ------------------------------------------------------

TEST(AbstainThresholdTest, DisabledAcceptsEverythingEvenNaN) {
  const AbstainThreshold t;
  EXPECT_TRUE(t.Accepts(0.0f, 0.0f));
  EXPECT_TRUE(t.Accepts(kNaN, kNaN));
}

TEST(AbstainThresholdTest, EnabledRejectsNaN) {
  AbstainThreshold t;
  t.enabled = true;
  t.min_similarity = 0.0f;
  EXPECT_TRUE(t.Accepts(0.5f, 1.0f));
  EXPECT_FALSE(t.Accepts(kNaN, 1.0f));
  EXPECT_FALSE(t.Accepts(0.5f, kNaN));
}

TEST(CalibrateAbstainThresholdTest, SeparatesDanglingByScore) {
  // Matchable dev rows peak high at their gold column; dangling rows are
  // uniformly low. A score floor between the two populations yields F1 = 1.
  const Tensor dev = Scores({{0.9f, 0.1f, 0.1f},
                             {0.1f, 0.8f, 0.2f},
                             {0.1f, 0.2f, 0.85f},
                             {0.3f, 0.25f, 0.2f},
                             {0.2f, 0.3f, 0.28f}});
  const std::vector<int64_t> gold = {0, 1, 2, kGoldDangling, kGoldDangling};
  const AbstainThreshold t = CalibrateAbstainThreshold(dev, gold);
  ASSERT_TRUE(t.enabled);
  EXPECT_DOUBLE_EQ(t.dev_f1, 1.0);
  EXPECT_TRUE(t.Accepts(0.9f, 0.8f));
  EXPECT_FALSE(t.Accepts(0.3f, 0.05f));
}

TEST(CalibrateAbstainThresholdTest, FallbackQuantileWithoutDanglingLabels) {
  const Tensor dev = Scores({{0.9f, 0.1f}, {0.1f, 0.8f}, {0.7f, 0.2f}});
  const std::vector<int64_t> gold = {0, 1, 0};
  CalibrationOptions opts;
  opts.fallback_keep_fraction = 1.0;  // Keep every correct dev match.
  const AbstainThreshold t = CalibrateAbstainThreshold(dev, gold, opts);
  ASSERT_TRUE(t.enabled);
  // The floor sits at the lowest correct top-1 score, so all three dev
  // rows stay accepted.
  EXPECT_FLOAT_EQ(t.min_similarity, 0.7f);
  EXPECT_DOUBLE_EQ(t.dev_f1, 1.0);
}

TEST(CalibrateAbstainThresholdTest, DanglingPriorRebalancesSkewedDev) {
  // Dev is dangling-heavy (3 of 5 rows) but the declared deployment prior
  // is 10% dangling. Unweighted F1 picks the strict floor that sacrifices
  // the low-scoring correct match; the reweighted sweep keeps it because
  // on 90%-matchable traffic recall is worth more than the occasional
  // forced match. (Dangling margins are made large so the margin sweep
  // cannot separate the classes either way.)
  const Tensor dev = Scores({{0.9f, 0.1f},
                             {0.5f, 0.1f},
                             {0.7f, 0.0f},
                             {0.65f, 0.0f},
                             {0.6f, 0.0f}});
  const std::vector<int64_t> gold = {0, 0, kGoldDangling, kGoldDangling,
                                     kGoldDangling};

  const AbstainThreshold strict = CalibrateAbstainThreshold(dev, gold);
  ASSERT_TRUE(strict.enabled);
  EXPECT_FLOAT_EQ(strict.min_similarity, 0.9f);

  CalibrationOptions opts;
  opts.dangling_prior = 0.1;
  const AbstainThreshold lax = CalibrateAbstainThreshold(dev, gold, opts);
  ASSERT_TRUE(lax.enabled);
  EXPECT_FLOAT_EQ(lax.min_similarity, 0.5f);
  EXPECT_FLOAT_EQ(lax.min_margin, 0.0f);
  EXPECT_GT(lax.dev_f1, 0.9);  // Weighted: P = 0.9, R = 1.
}

TEST(CalibrateAbstainThresholdTest, DegenerateInputsDisable) {
  EXPECT_FALSE(CalibrateAbstainThreshold(Tensor({0, 3}), {}).enabled);
  EXPECT_FALSE(CalibrateAbstainThreshold(Tensor({2, 0}), {0, 1}).enabled);
  const Tensor dev = Scores({{0.5f, 0.2f}});
  EXPECT_FALSE(CalibrateAbstainThreshold(dev, {kGoldSkip}).enabled);
  // Out-of-range dev gold is skipped like kGoldSkip, not fatal.
  EXPECT_FALSE(CalibrateAbstainThreshold(dev, {17}).enabled);
}

TEST(ApplyAbstainThresholdTest, RewritesFailingMatchesToUnmatched) {
  const Tensor scores = Scores({{0.9f, 0.1f}, {0.4f, 0.35f}, {0.2f, 0.6f}});
  AbstainThreshold t;
  t.enabled = true;
  t.min_similarity = 0.5f;
  std::vector<int64_t> match = {0, 0, -1};  // Row 2 already unmatched.
  EXPECT_EQ(ApplyAbstainThreshold(scores, t, &match), 1);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], -1);  // 0.4 < floor.
  EXPECT_EQ(match[2], -1);  // Untouched.
}

TEST(ApplyAbstainThresholdTest, MarginRuleRejectsAmbiguousRows) {
  const Tensor scores = Scores({{0.80f, 0.78f}, {0.80f, 0.30f}});
  AbstainThreshold t;
  t.enabled = true;
  t.min_margin = 0.1f;
  std::vector<int64_t> match = {0, 0};
  EXPECT_EQ(ApplyAbstainThreshold(scores, t, &match), 1);
  EXPECT_EQ(match[0], -1);  // Margin 0.02: too close to call.
  EXPECT_EQ(match[1], 0);   // Margin 0.5: clear winner.
}

TEST(ApplyAbstainThresholdTest, NaNScoresNeverSurviveAnEnabledRule) {
  const Tensor scores = Scores({{kNaN, kNaN}});
  AbstainThreshold t;
  t.enabled = true;  // Laxest possible enabled rule: -inf floor, 0 margin.
  std::vector<int64_t> match = {0};
  EXPECT_EQ(ApplyAbstainThreshold(scores, t, &match), 1);
  EXPECT_EQ(match[0], -1);
}

TEST(ApplyAbstainThresholdTest, SingleTargetHasInfiniteMargin) {
  const Tensor scores = Scores({{0.6f}});
  AbstainThreshold t;
  t.enabled = true;
  t.min_margin = kInf;  // Even an infinite margin demand passes m == 1.
  std::vector<int64_t> match = {0};
  EXPECT_EQ(ApplyAbstainThreshold(scores, t, &match), 0);
  EXPECT_EQ(match[0], 0);
}

}  // namespace
}  // namespace sdea::eval
