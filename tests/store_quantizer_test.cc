// Codebook training, encoding, and ADC scoring: the quantization error
// bounds the satellite tests document, bitwise determinism across thread
// counts (golden FNV over the codebook bytes), and the blob round trip.
#include "store/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/threadpool.h"
#include "store/adc.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace sdea::store {
namespace {

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Tensor t({n, d});
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  tmath::L2NormalizeRowsInPlace(&t);
  return t;
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(QuantizerTest, Int8AdcScoreTracksExactDot) {
  const int64_t n = 200, d = 64;
  const Tensor rows = RandomRows(n, d, 11);
  const Codebook cb = Codebook::TrainInt8(rows);
  ASSERT_EQ(cb.code_bytes(), d);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);

  const Tensor q = RandomRows(1, d, 99);
  std::vector<float> q_scaled(static_cast<size_t>(d));
  Int8PrepareQuery(q.data(), cb.scales().data(), d, q_scaled.data());
  std::vector<float> adc(static_cast<size_t>(n));
  AdcScanInt8(codes.data(), n, d, q_scaled.data(), adc.data());

  // The documented int8 tolerance: each component is off by at most half
  // an LSB (scale/2 <= 1/254 for unit rows), so the dot with a unit query
  // is off by at most sum_j |q_j| * scale_j / 2 <= sqrt(d)/254.
  const double tol = std::sqrt(static_cast<double>(d)) / 254.0;
  for (int64_t i = 0; i < n; ++i) {
    const float exact = tmath::kernels::ScoreDot(
        q.data(), rows.data() + i * d, d);
    EXPECT_NEAR(adc[static_cast<size_t>(i)], exact, tol) << "row " << i;
  }
}

TEST(QuantizerTest, Int8AdcEqualsDotWithDequantizedRow) {
  // ADC's guarantee: the score is the dot with the *dequantized* row (the
  // scale folds onto the query side), so ADC ranks exactly what a
  // decode-then-score pipeline would rank, without decoding.
  const int64_t n = 50, d = 32;
  const Tensor rows = RandomRows(n, d, 7);
  const Codebook cb = Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  const Tensor q = RandomRows(1, d, 3);

  std::vector<float> q_scaled(static_cast<size_t>(d));
  Int8PrepareQuery(q.data(), cb.scales().data(), d, q_scaled.data());
  std::vector<float> adc(static_cast<size_t>(n));
  AdcScanInt8(codes.data(), n, d, q_scaled.data(), adc.data());

  std::vector<float> dequant(static_cast<size_t>(d));
  for (int64_t i = 0; i < n; ++i) {
    cb.DecodeRow(codes.data() + i * d, dequant.data());
    const float direct =
        tmath::kernels::ScoreDot(q.data(), dequant.data(), d);
    // Not bitwise (q*scale vs scale*code round differently) but within a
    // few ulps of each other, far inside the ranking tolerance.
    EXPECT_NEAR(adc[static_cast<size_t>(i)], direct, 1e-5f) << "row " << i;
  }
}

TEST(QuantizerTest, PqAdcScoreTracksExactDot) {
  const int64_t n = 300, d = 64;
  const Tensor rows = RandomRows(n, d, 21);
  PqOptions options;
  options.num_subspaces = 8;
  options.num_centroids = 64;
  auto cb = Codebook::TrainPq(rows, options);
  ASSERT_TRUE(cb.ok());
  ASSERT_EQ(cb->code_bytes(), 8);
  const std::vector<uint8_t> codes = cb->EncodeRows(rows.data(), n);

  const Tensor q = RandomRows(1, d, 5);
  std::vector<float> lut(
      static_cast<size_t>(cb->pq_subspaces() * cb->pq_centroids()));
  PqBuildLut(q.data(), *cb, lut.data());
  std::vector<float> adc(static_cast<size_t>(n));
  AdcScanPq(codes.data(), n, cb->pq_subspaces(), cb->pq_centroids(),
            lut.data(), adc.data());

  // PQ is lossier than int8; this pins a loose absolute bound and, more
  // importantly, that ADC == dot(q, reconstructed row) almost exactly.
  std::vector<float> dequant(static_cast<size_t>(d));
  for (int64_t i = 0; i < n; ++i) {
    cb->DecodeRow(codes.data() + i * cb->code_bytes(), dequant.data());
    const float recon =
        tmath::kernels::ScoreDot(q.data(), dequant.data(), d);
    EXPECT_NEAR(adc[static_cast<size_t>(i)], recon, 1e-4f) << "row " << i;
    const float exact =
        tmath::kernels::ScoreDot(q.data(), rows.data() + i * d, d);
    EXPECT_NEAR(adc[static_cast<size_t>(i)], exact, 0.5f) << "row " << i;
  }
}

TEST(QuantizerTest, CodebookBytesIdenticalAcrossThreadCounts) {
  // The satellite determinism contract: training and encoding shard rows
  // across threads but every tie breaks structurally, so the codebook
  // blob and the codes are byte-identical for any pool size. FNV-1a over
  // the bytes makes a drift show up as one number.
  const Tensor rows = RandomRows(500, 32, 33);
  PqOptions options;
  options.num_subspaces = 4;
  options.num_centroids = 32;

  uint64_t int8_hash = 0, pq_hash = 0, codes_hash = 0;
  for (int threads : {1, 2, 8}) {
    base::ThreadPool::SetGlobalNumThreads(threads);
    const Codebook int8 = Codebook::TrainInt8(rows);
    auto pq = Codebook::TrainPq(rows, options);
    ASSERT_TRUE(pq.ok());
    const std::vector<uint8_t> codes = pq->EncodeRows(rows.data(), 500);
    const uint64_t h1 = Fnv1a(int8.Encode());
    const uint64_t h2 = Fnv1a(pq->Encode());
    const uint64_t h3 = Fnv1a(std::string(codes.begin(), codes.end()));
    if (threads == 1) {
      int8_hash = h1;
      pq_hash = h2;
      codes_hash = h3;
    } else {
      EXPECT_EQ(h1, int8_hash) << threads << " threads";
      EXPECT_EQ(h2, pq_hash) << threads << " threads";
      EXPECT_EQ(h3, codes_hash) << threads << " threads";
    }
  }
  base::ThreadPool::SetGlobalNumThreads(base::ThreadPool::DefaultNumThreads());
}

TEST(QuantizerTest, CodebookBlobRoundTripsBitwise) {
  const Tensor rows = RandomRows(100, 16, 44);
  const Codebook int8 = Codebook::TrainInt8(rows);
  auto decoded = Codebook::Decode(int8.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Encode(), int8.Encode());
  EXPECT_EQ(decoded->kind(), Quantization::kInt8);
  EXPECT_EQ(decoded->dim(), 16);

  PqOptions options;
  options.num_subspaces = 4;
  options.num_centroids = 16;
  auto pq = Codebook::TrainPq(rows, options);
  ASSERT_TRUE(pq.ok());
  auto pq_decoded = Codebook::Decode(pq->Encode());
  ASSERT_TRUE(pq_decoded.ok());
  EXPECT_EQ(pq_decoded->Encode(), pq->Encode());
  EXPECT_EQ(pq_decoded->pq_subspaces(), 4);
  EXPECT_EQ(pq_decoded->pq_centroids(), 16);
}

TEST(QuantizerTest, TrainPqRejectsBadGeometry) {
  const Tensor rows = RandomRows(10, 12, 1);
  PqOptions options;
  options.num_subspaces = 5;  // 12 % 5 != 0.
  EXPECT_FALSE(Codebook::TrainPq(rows, options).ok());
  options.num_subspaces = 4;
  options.num_centroids = 300;  // Codes are u8.
  EXPECT_FALSE(Codebook::TrainPq(rows, options).ok());
  options.num_centroids = 16;
  EXPECT_FALSE(Codebook::TrainPq(Tensor({0, 12}), options).ok());
}

TEST(QuantizerTest, CentroidCountClampsToSample) {
  // 10 rows but 64 requested centroids: k clamps to the sample size and
  // the codes stay within it.
  const Tensor rows = RandomRows(10, 8, 2);
  PqOptions options;
  options.num_subspaces = 2;
  options.num_centroids = 64;
  auto cb = Codebook::TrainPq(rows, options);
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(cb->pq_centroids(), 10);
  const std::vector<uint8_t> codes = cb->EncodeRows(rows.data(), 10);
  for (uint8_t c : codes) EXPECT_LT(c, 10);
}

TEST(QuantizerTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Codebook::Decode("").ok());
  EXPECT_FALSE(Codebook::Decode("SDEACBK1").ok());
  EXPECT_FALSE(Codebook::Decode(std::string(64, '\xff')).ok());
}

}  // namespace
}  // namespace sdea::store
