// TransEdge-lite and KECG-lite — the remaining Table II technique rows.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kecg.h"
#include "baselines/transedge.h"
#include "datagen/generator.h"

namespace sdea::baselines {
namespace {

struct Fixture {
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
  AlignInput input() const {
    return AlignInput{&bench.kg1, &bench.kg2, &seeds};
  }
};

Fixture MakeFixture() {
  datagen::GeneratorConfig g;
  g.seed = 67;
  g.num_matched = 120;
  g.kg1_lang_seed = 1;
  g.kg2_lang_seed = 1;
  g.kg2_name_mode = datagen::NameMode::kShared;
  g.min_degree = 2;
  Fixture f;
  f.bench = datagen::BenchmarkGenerator().Generate(g);
  f.seeds = kg::AlignmentSeeds::Split(f.bench.ground_truth, 5,
                                      /*train=*/3, /*valid=*/1, /*test=*/6);
  return f;
}

void ExpectFiniteEmbeddings(const EntityAligner& aligner) {
  for (const Tensor* t : {&aligner.embeddings1(), &aligner.embeddings2()}) {
    ASSERT_GT(t->size(), 0);
    for (int64_t i = 0; i < t->size(); ++i) {
      ASSERT_TRUE(std::isfinite((*t)[i]));
    }
  }
}

TEST(TransEdgeTest, FitsAndEvaluates) {
  Fixture f = MakeFixture();
  TransEdge::Config c;
  c.dim = 16;
  c.epochs = 8;
  TransEdge m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(m.name(), "TransEdge");
  ExpectFiniteEmbeddings(m);
  EXPECT_EQ(m.embeddings1().dim(0), f.bench.kg1.num_entities());
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
}

TEST(TransEdgeTest, SeedSharedSlotsIdentical) {
  Fixture f = MakeFixture();
  TransEdge::Config c;
  c.dim = 12;
  c.epochs = 3;
  TransEdge m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  const auto& [a, b] = f.seeds.train.front();
  EXPECT_LT(tmath::SquaredL2Distance(m.embeddings1().Row(a),
                                     m.embeddings2().Row(b)),
            1e-10f);
}

TEST(TransEdgeTest, RejectsNullInput) {
  TransEdge m({});
  EXPECT_FALSE(m.Fit(AlignInput{}).ok());
}

TEST(KecgTest, FitsAndEvaluates) {
  Fixture f = MakeFixture();
  Kecg::Config c;
  c.dim = 16;
  c.rounds = 2;
  c.transe.epochs = 10;
  c.gnn_steps_per_round = 10;
  Kecg m(c);
  ASSERT_TRUE(m.Fit(f.input()).ok());
  EXPECT_EQ(m.name(), "KECG");
  ExpectFiniteEmbeddings(m);
  const auto metrics = m.Evaluate(f.seeds.test);
  EXPECT_EQ(metrics.num_queries,
            static_cast<int64_t>(f.seeds.test.size()));
  // The cross-graph loss must produce above-chance ranking
  // (chance H@10 ~ 10/126 = 8%).
  EXPECT_GT(metrics.hits_at_10, 10.0);
}

TEST(KecgTest, RejectsNullInput) {
  Kecg m({});
  EXPECT_FALSE(m.Fit(AlignInput{}).ok());
}

}  // namespace
}  // namespace sdea::baselines
