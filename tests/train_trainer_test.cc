// train::Trainer unit tests: deterministic shuffled batching, the legacy
// early-stopping semantics, LrSchedule application, callback stop, stats,
// and the option-validation errors.
#include "train/trainer.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "base/rng.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"

namespace sdea::train {
namespace {

class ToyNet : public nn::Module {
 public:
  ToyNet() { w = AddParameter("toy.w", Tensor({1, 4})); }
  Parameter* w;
};

// A scriptable task: records every batch the Trainer hands it, bumps its
// single parameter once per batch (so epochs are distinguishable in the
// weights), and replays scripted eval metrics and losses.
class ToyTask : public TrainTask {
 public:
  ToyTask(size_t n, uint64_t seed, bool with_optimizer = false)
      : n_(n), rng_(seed) {
    if (with_optimizer) {
      optimizer_ = std::make_unique<nn::Sgd>(net_.Parameters(), /*lr=*/1.0f);
    }
  }

  size_t num_examples() const override { return n_; }
  Rng* rng() override { return &rng_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    batches_.emplace_back(ids, ids + n);
    if (optimizer_ != nullptr) lrs_seen_.push_back(optimizer_->lr());
    net_.w->value.data()[0] += 1.0f;
    return losses_.empty() ? 2.0f
                           : losses_[(batches_.size() - 1) % losses_.size()];
  }

  double EvalMetric() override {
    const double m = metrics_.empty() ? 0.0 : metrics_[eval_calls_];
    ++eval_calls_;
    return m;
  }

  nn::Module* module() override { return &net_; }
  nn::Optimizer* optimizer() override { return optimizer_.get(); }

  size_t n_;
  Rng rng_;
  ToyNet net_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  std::vector<std::vector<uint64_t>> batches_;
  std::vector<double> metrics_;
  std::vector<float> losses_;
  std::vector<float> lrs_seen_;
  size_t eval_calls_ = 0;
};

// A task without module()/optimizer(), for the mismatch validations.
class BareTask : public TrainTask {
 public:
  explicit BareTask(size_t n) : n_(n), rng_(1) {}
  size_t num_examples() const override { return n_; }
  Rng* rng() override { return &rng_; }
  float TrainBatch(const uint64_t*, size_t) override { return 0.0f; }
  size_t n_;
  Rng rng_;
};

TEST(TrainerTest, FreshPerEpochShuffleMatchesManualReplay) {
  ToyTask task(7, /*seed=*/31);
  TrainerOptions opts;
  opts.max_epochs = 3;
  opts.batch_size = 3;
  opts.shuffle = TrainerOptions::Shuffle::kFreshPerEpoch;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());

  // 3 epochs x ceil(7/3) batches, sizes 3/3/1.
  ASSERT_EQ(task.batches_.size(), 9u);
  Rng replay(31);
  size_t b = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<uint64_t> order(7);
    std::iota(order.begin(), order.end(), 0u);
    replay.Shuffle(&order);
    std::vector<uint64_t> seen;
    for (int k = 0; k < 3; ++k, ++b) {
      seen.insert(seen.end(), task.batches_[b].begin(),
                  task.batches_[b].end());
    }
    EXPECT_EQ(seen, order) << "epoch " << epoch;
  }
}

TEST(TrainerTest, CumulativeShuffleComposesPermutations) {
  ToyTask task(6, /*seed=*/77);
  TrainerOptions opts;
  opts.max_epochs = 4;
  opts.batch_size = 6;
  opts.shuffle = TrainerOptions::Shuffle::kCumulative;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());

  ASSERT_EQ(task.batches_.size(), 4u);
  Rng replay(77);
  std::vector<uint64_t> order(6);
  std::iota(order.begin(), order.end(), 0u);
  for (int epoch = 0; epoch < 4; ++epoch) {
    replay.Shuffle(&order);  // No reset: permutations compose.
    EXPECT_EQ(task.batches_[epoch], order) << "epoch " << epoch;
  }
}

TEST(TrainerTest, NoShuffleKeepsIdentityOrder) {
  ToyTask task(5, /*seed=*/5);
  TrainerOptions opts;
  opts.max_epochs = 2;
  opts.batch_size = 5;
  opts.shuffle = TrainerOptions::Shuffle::kNone;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());
  const std::vector<uint64_t> identity = {0, 1, 2, 3, 4};
  ASSERT_EQ(task.batches_.size(), 2u);
  EXPECT_EQ(task.batches_[0], identity);
  EXPECT_EQ(task.batches_[1], identity);
  // And the RNG was never consumed by the Trainer.
  Rng untouched(5);
  EXPECT_EQ(task.rng_.Next(), untouched.Next());
}

TEST(TrainerTest, EarlyStoppingReplaysLegacyBookkeeping) {
  ToyTask task(4, /*seed=*/9);
  task.metrics_ = {0.5, 0.7, 0.6, 0.6, 0.9, 0.9};
  TrainerOptions opts;
  opts.max_epochs = 6;
  opts.batch_size = 2;
  opts.evaluate = true;
  opts.patience = 2;
  opts.restore_best = true;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());

  // Epoch 0 (0.5) is the first best; epoch 1 (0.7) improves; epochs 2 and 3
  // (0.6, 0.6) exhaust patience=2. The 0.9 epochs are never reached.
  EXPECT_EQ(trainer.epochs_run(), 4);
  EXPECT_DOUBLE_EQ(trainer.best_metric(), 0.7);
  EXPECT_EQ(trainer.metric_history(),
            (std::vector<double>{0.5, 0.7, 0.6, 0.6}));
  // restore_best rewinds the weights to the end of epoch 1: two epochs of
  // two batches each bumped w[0] by 1 per batch.
  EXPECT_FLOAT_EQ(task.net_.w->value.data()[0], 4.0f);
}

TEST(TrainerTest, FirstEvaluatedEpochAlwaysBecomesBest) {
  ToyTask task(2, /*seed=*/3);
  task.metrics_ = {0.0, 0.0, 0.0};
  TrainerOptions opts;
  opts.max_epochs = 3;
  opts.batch_size = 2;
  opts.evaluate = true;
  opts.patience = 2;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());
  // metric 0.0 is not > best_metric_ (0.0), but the first epoch still
  // becomes the best — so patience counts from epoch 1, not epoch 0.
  EXPECT_EQ(trainer.epochs_run(), 3);
  EXPECT_DOUBLE_EQ(trainer.best_metric(), 0.0);
}

TEST(TrainerTest, LrScheduleAppliedEachEpoch) {
  ToyTask task(2, /*seed=*/8, /*with_optimizer=*/true);
  StepDecayLr schedule(/*base=*/0.1f, /*factor=*/0.5f, /*every=*/2);
  TrainerOptions opts;
  opts.max_epochs = 4;
  opts.batch_size = 2;
  opts.lr_schedule = &schedule;
  Trainer trainer(&task, opts);
  ASSERT_TRUE(trainer.Run().ok());
  ASSERT_EQ(task.lrs_seen_.size(), 4u);
  EXPECT_FLOAT_EQ(task.lrs_seen_[0], 0.1f);
  EXPECT_FLOAT_EQ(task.lrs_seen_[1], 0.1f);
  EXPECT_FLOAT_EQ(task.lrs_seen_[2], 0.05f);
  EXPECT_FLOAT_EQ(task.lrs_seen_[3], 0.05f);
}

TEST(TrainerTest, ScheduleShapes) {
  ConstantLr c(0.3f);
  EXPECT_FLOAT_EQ(c.LearningRate(0), 0.3f);
  EXPECT_FLOAT_EQ(c.LearningRate(100), 0.3f);
  StepDecayLr s(1.0f, 0.1f, 3);
  EXPECT_FLOAT_EQ(s.LearningRate(2), 1.0f);
  EXPECT_FLOAT_EQ(s.LearningRate(3), 0.1f);
  EXPECT_FLOAT_EQ(s.LearningRate(7), 0.01f);
  WarmupLr w(1.0f, 4);
  EXPECT_FLOAT_EQ(w.LearningRate(0), 0.25f);
  EXPECT_FLOAT_EQ(w.LearningRate(3), 1.0f);
  EXPECT_FLOAT_EQ(w.LearningRate(50), 1.0f);
}

TEST(TrainerTest, CallbackStopsTraining) {
  ToyTask task(3, /*seed=*/2);
  TrainerOptions opts;
  opts.max_epochs = 10;
  opts.batch_size = 3;
  opts.on_epoch = [](const EpochStats& es) { return es.epoch < 1; };
  Trainer trainer(&task, opts);
  auto stats = trainer.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epochs.size(), 2u);  // Stopped after epoch 1.
}

TEST(TrainerTest, StatsCountBatchesExamplesAndLosses) {
  ToyTask task(7, /*seed=*/4);
  task.losses_ = {2.0f};
  TrainerOptions opts;
  opts.max_epochs = 2;
  opts.batch_size = 3;
  Trainer trainer(&task, opts);
  auto stats = trainer.Run();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->epochs.size(), 2u);
  for (const EpochStats& es : stats->epochs) {
    EXPECT_EQ(es.num_batches, 3);
    EXPECT_EQ(es.num_examples, 7);
    EXPECT_DOUBLE_EQ(es.loss_sum, 6.0);
    EXPECT_DOUBLE_EQ(es.mean_loss(), 2.0);
    EXPECT_FALSE(es.has_eval);
    EXPECT_GE(es.wall_ms, 0.0);
  }
  EXPECT_EQ(stats->batch_loss.count(), 6);
  EXPECT_DOUBLE_EQ(stats->batch_loss.mean(), 2.0);
  EXPECT_EQ(stats->batch_ms.count(), 6);
  EXPECT_GE(stats->total_wall_ms, 0.0);
}

TEST(TrainerTest, HistogramBucketsAndQuantiles) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 0.7, 5.0, 50.0, 500.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_DOUBLE_EQ(h.sum(), 556.2);
  EXPECT_EQ(h.bucket_counts(), (std::vector<int64_t>{2, 1, 1, 1}));
  // P(v <= 1) = 0.4, P(v <= 10) = 0.6: the median lands in bound 10.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.4), 1.0);
  // The unbounded tail reports the observed max.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 500.0);
  EXPECT_NE(h.Summary().find("count=5"), std::string::npos);
  Histogram empty = MakeLossHistogram();
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.99), 0.0);
}

TEST(TrainerTest, ValidatesOptionCombinations) {
  {
    BareTask empty(0);
    EXPECT_EQ(Trainer(&empty, {}).Run().status().code(),
              StatusCode::kInvalidArgument);
  }
  BareTask bare(4);
  {
    TrainerOptions o;
    o.batch_size = 0;
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    TrainerOptions o;
    o.patience = 3;  // Without evaluate.
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    TrainerOptions o;
    o.evaluate = true;
    o.restore_best = true;  // Task has no module().
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),
              StatusCode::kFailedPrecondition);
  }
  {
    TrainerOptions o;
    o.restore_best = true;  // Without evaluate: invalid before the module
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),  // check fires.
              StatusCode::kInvalidArgument);
  }
  {
    CheckpointManager mgr("/tmp/sdea_trainer_validate.ckpt");
    TrainerOptions o;
    o.checkpoint = &mgr;  // Task has no module().
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),
              StatusCode::kFailedPrecondition);
  }
  {
    ConstantLr lr(0.1f);
    TrainerOptions o;
    o.lr_schedule = &lr;  // Task has no optimizer().
    EXPECT_EQ(Trainer(&bare, o).Run().status().code(),
              StatusCode::kFailedPrecondition);
  }
  {
    ToyTask task(4, 1);
    CheckpointManager mgr("/tmp/sdea_trainer_validate.ckpt");
    TrainerOptions o;
    o.checkpoint = &mgr;
    o.checkpoint_every = 0;
    EXPECT_EQ(Trainer(&task, o).Run().status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(TrainerTest, WarmStartLoadsParamsBeforeFirstEpoch) {
  // Serialize a donor net with a known weight, warm-start a fresh task
  // from the blob, and run one epoch: the final weight must be the donor's
  // value plus exactly the per-batch bumps — proof the load happened
  // before any TrainBatch.
  ToyTask donor(4, 1);
  donor.net_.w->value.data()[0] = 42.0f;
  const std::string blob = nn::SerializeParameters(&donor.net_);

  ToyTask task(4, 1);
  TrainerOptions opts;
  opts.max_epochs = 1;
  opts.batch_size = 2;
  opts.warm_start_params = blob;
  ASSERT_TRUE(Trainer(&task, opts).Run().ok());
  EXPECT_FLOAT_EQ(task.net_.w->value.data()[0], 44.0f);  // 42 + 2 batches.
}

TEST(TrainerTest, WarmStartShapeMismatchFails) {
  class WideNet : public nn::Module {
   public:
    WideNet() { w = AddParameter("toy.w", Tensor({1, 8})); }
    Parameter* w;
  } wide;
  ToyTask task(4, 1);
  TrainerOptions opts;
  opts.warm_start_params = nn::SerializeParameters(&wide);
  EXPECT_FALSE(Trainer(&task, opts).Run().ok());
}

TEST(TrainerTest, WarmStartRequiresModule) {
  BareTask bare(4);
  ToyTask donor(4, 1);
  TrainerOptions opts;
  opts.warm_start_params = nn::SerializeParameters(&donor.net_);
  EXPECT_EQ(Trainer(&bare, opts).Run().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sdea::train
