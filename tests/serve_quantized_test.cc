// Serving on a memory-mapped quantized snapshot: SnapshotManager publishes
// it, AlignmentServer answers against it, answers match the in-RAM
// full-precision store bit-for-bit on top-1, and the mmap stays pinned for
// in-flight readers across a swap.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "core/embedding_store.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/quantized_store.h"
#include "tensor/tensor.h"

namespace sdea::serve {
namespace {

std::string TempDir(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Tensor t({n, d});
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  return t;
}

std::vector<std::string> Names(int64_t n) {
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("q" + std::to_string(i));
  return names;
}

TEST(ServeQuantizedTest, OpenQuantizedAndSwapPublishes) {
  const std::string dir = TempDir("sdea_serve_qsnap");
  const int64_t n = 120, d = 16;
  ASSERT_TRUE(store::QuantizedStore::Write(dir, Names(n),
                                           RandomRows(n, d, 1), {})
                  .ok());
  SnapshotManager manager;
  EXPECT_FALSE(manager.has_snapshot());
  auto version = manager.OpenQuantizedAndSwap(dir);
  ASSERT_TRUE(version.ok()) << version.status().message();
  EXPECT_EQ(*version, 1u);
  auto snap = manager.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->dim(), d);
  EXPECT_EQ(snap->size(), n);
  EXPECT_NE(snap->quantized, nullptr);

  // A missing snapshot directory reports cleanly, current stays put.
  EXPECT_FALSE(
      manager.OpenQuantizedAndSwap(TempDir("sdea_serve_missing")).ok());
  EXPECT_EQ(manager.version(), 1u);
}

TEST(ServeQuantizedTest, QuantizedSnapshotAnswersMatchFullPrecision) {
  const std::string dir = TempDir("sdea_serve_qmatch");
  const int64_t n = 250, d = 32;
  const Tensor rows = RandomRows(n, d, 2);
  ASSERT_TRUE(
      store::QuantizedStore::Write(dir, Names(n), rows, {}).ok());
  auto reference = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(reference.ok());

  SnapshotManager manager;
  ASSERT_TRUE(manager.OpenQuantizedAndSwap(dir).ok());
  auto snap = manager.Current();

  const Tensor probe = RandomRows(15, d, 3);
  for (int64_t i = 0; i < probe.dim(0); ++i) {
    const Tensor q = probe.Row(i);
    const auto quant = snap->NearestNeighbors(q, 5);
    const auto full = reference->NearestNeighbors(q, 5);
    ASSERT_EQ(quant.size(), 5u);
    EXPECT_EQ(quant[0].id, full[0].id) << "query " << i;
    EXPECT_EQ(quant[0].name, full[0].name) << "query " << i;
    EXPECT_EQ(quant[0].similarity, full[0].similarity) << "query " << i;
  }
}

TEST(ServeQuantizedTest, ServerAnswersThroughQuantizedSnapshot) {
  const std::string dir = TempDir("sdea_serve_qserver");
  const int64_t n = 150, d = 16;
  const Tensor rows = RandomRows(n, d, 4);
  ASSERT_TRUE(
      store::QuantizedStore::Write(dir, Names(n), rows, {}).ok());

  ServerOptions options;
  options.batcher.max_batch_size = 8;
  AlignmentServer server(options);
  auto loaded = server.LoadQuantizedSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(server.snapshot(), nullptr);
  EXPECT_NE(server.snapshot()->quantized, nullptr);

  auto reference = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(reference.ok());
  const Tensor probe = RandomRows(10, d, 5);
  std::vector<std::future<AlignResult>> futures;
  for (int64_t i = 0; i < probe.dim(0); ++i) {
    futures.push_back(server.AlignEmbeddingAsync(probe.Row(i), 3));
  }
  for (int64_t i = 0; i < probe.dim(0); ++i) {
    AlignResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << result.status().message();
    ASSERT_EQ(result->size(), 3u);
    const auto full = reference->NearestNeighbors(probe.Row(i), 3);
    EXPECT_EQ((*result)[0].id, full[0].id) << "query " << i;
    EXPECT_EQ((*result)[0].similarity, full[0].similarity) << "query " << i;
  }

  // Wrong-dim queries still fail per request, quantized or not.
  AlignResult bad = server.AlignEmbedding(RandomRows(1, d + 1, 6).Row(0), 3);
  EXPECT_FALSE(bad.ok());
}

TEST(ServeQuantizedTest, SwapRetiresButPinnedSnapshotSurvives) {
  const std::string dir = TempDir("sdea_serve_qpin");
  const int64_t n = 80, d = 8;
  const Tensor rows = RandomRows(n, d, 7);
  ASSERT_TRUE(
      store::QuantizedStore::Write(dir, Names(n), rows, {}).ok());
  SnapshotManager manager;
  ASSERT_TRUE(manager.OpenQuantizedAndSwap(dir).ok());

  // Pin the quantized snapshot like a batch would, then swap an in-RAM
  // store over it. The pinned snapshot (and its mmaps) must keep
  // answering until the pin drops.
  auto pinned = manager.Current();
  auto replacement = core::EmbeddingStore::Create(Names(n), rows);
  ASSERT_TRUE(replacement.ok());
  EXPECT_EQ(manager.Swap(std::move(*replacement)), 2u);

  const Tensor q = RandomRows(1, d, 8).Row(0);
  const auto from_pinned = pinned->NearestNeighbors(q, 3);
  ASSERT_EQ(from_pinned.size(), 3u);
  auto current = manager.Current();
  EXPECT_EQ(current->quantized, nullptr);
  const auto from_current = current->NearestNeighbors(q, 3);
  // Same data, both exact after rerank: identical answers.
  EXPECT_EQ(from_pinned[0].id, from_current[0].id);
  EXPECT_EQ(from_pinned[0].similarity, from_current[0].similarity);
}

}  // namespace
}  // namespace sdea::serve
