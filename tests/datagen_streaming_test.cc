// datagen streaming preset: the base state plus the replayed increments
// reconverges to the full generated benchmark, per-increment ground truth
// resolves exactly when its entities arrive, and the whole stream is
// bit-reproducible from the config.
#include "datagen/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "datagen/generator.h"
#include "incr/update_log.h"

namespace sdea::datagen {
namespace {

StreamingConfig SmallConfig() {
  StreamingConfig config = StreamingPreset().config;
  config.base.num_matched = 120;
  config.base.pretrain_sentences = 0;
  config.num_increments = 3;
  config.stream_frac = 0.3;
  return config;
}

TEST(StreamingTest, ReplayReconvergesToTheFullBenchmark) {
  const StreamingConfig config = SmallConfig();
  StreamingBenchmark stream = GenerateStreaming(config);
  const GeneratedBenchmark full = BenchmarkGenerator().Generate(config.base);

  ASSERT_EQ(static_cast<int64_t>(stream.increments.size()),
            config.num_increments);
  EXPECT_LT(stream.kg1.num_entities(), full.kg1.num_entities());
  // Schema arrives with the base: only facts stream in.
  EXPECT_EQ(stream.kg1.num_relations(), full.kg1.num_relations());
  EXPECT_EQ(stream.kg2.num_attributes(), full.kg2.num_attributes());

  int64_t streamed_rel = 0;
  for (const incr::UpdateBatch& b : stream.increments) {
    EXPECT_FALSE(b.empty());
    streamed_rel += static_cast<int64_t>(b.kg1.relational.size() +
                                         b.kg2.relational.size());
    incr::ApplyUpdate(b.kg1, &stream.kg1);
    incr::ApplyUpdate(b.kg2, &stream.kg2);
  }
  EXPECT_GT(streamed_rel, 0);

  // Same entities and relational facts as the full world; attribute rows
  // may exceed the full graph's because edits re-state revised values.
  EXPECT_EQ(stream.kg1.num_entities(), full.kg1.num_entities());
  EXPECT_EQ(stream.kg2.num_entities(), full.kg2.num_entities());
  EXPECT_EQ(stream.kg1.relational_triples().size(),
            full.kg1.relational_triples().size());
  EXPECT_EQ(stream.kg2.relational_triples().size(),
            full.kg2.relational_triples().size());
  EXPECT_GE(stream.kg1.attribute_triples().size(),
            full.kg1.attribute_triples().size());
  for (kg::EntityId e = 0; e < full.kg1.num_entities(); ++e) {
    ASSERT_TRUE(stream.kg1.FindEntity(full.kg1.entity_name(e)).ok());
  }
}

TEST(StreamingTest, TruthResolvesExactlyWhenEntitiesArrive) {
  StreamingBenchmark stream = GenerateStreaming(SmallConfig());

  // Base truth resolves against the base graphs by construction.
  EXPECT_GT(stream.base_truth.size(), 0u);
  for (const auto& [a, b] : stream.base_truth) {
    EXPECT_LT(a, stream.kg1.num_entities());
    EXPECT_LT(b, stream.kg2.num_entities());
  }

  size_t streamed_pairs = 0;
  for (size_t i = 0; i < stream.increments.size(); ++i) {
    // Pairs of a future increment are not yet resolvable...
    const auto early =
        ResolveNamePairs(stream.kg1, stream.kg2, stream.truth_names[i]);
    EXPECT_TRUE(early.empty()) << "increment " << i;
    incr::ApplyUpdate(stream.increments[i].kg1, &stream.kg1);
    incr::ApplyUpdate(stream.increments[i].kg2, &stream.kg2);
    // ...and resolve completely once their batch lands.
    const auto now =
        ResolveNamePairs(stream.kg1, stream.kg2, stream.truth_names[i]);
    EXPECT_EQ(now.size(), stream.truth_names[i].size());
    streamed_pairs += now.size();
  }
  EXPECT_GT(streamed_pairs, 0u);
}

TEST(StreamingTest, StreamIsBitReproducible) {
  const StreamingConfig config = SmallConfig();
  StreamingBenchmark a = GenerateStreaming(config);
  StreamingBenchmark b = GenerateStreaming(config);
  EXPECT_EQ(incr::EncodeUpdateLog(a.increments),
            incr::EncodeUpdateLog(b.increments));
  EXPECT_EQ(a.base_truth, b.base_truth);
  EXPECT_EQ(a.kg1.num_entities(), b.kg1.num_entities());
  EXPECT_EQ(a.kg1.relational_triples().size(),
            b.kg1.relational_triples().size());

  // A different stream seed carves the same world differently.
  StreamingConfig reseeded = config;
  reseeded.stream_seed += 1;
  StreamingBenchmark c = GenerateStreaming(reseeded);
  EXPECT_NE(incr::EncodeUpdateLog(a.increments),
            incr::EncodeUpdateLog(c.increments));
}

TEST(StreamingTest, PresetIsRegistered) {
  const StreamingSpec spec = StreamingPreset();
  EXPECT_EQ(spec.id, "d_stream");
  EXPECT_EQ(spec.config.num_increments, 10);
  EXPECT_GT(spec.config.stream_frac, 0.0);
}

}  // namespace
}  // namespace sdea::datagen
