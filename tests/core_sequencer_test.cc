#include "core/attribute_sequencer.h"

#include <gtest/gtest.h>

namespace sdea::core {
namespace {

kg::KnowledgeGraph FabianGraph() {
  // The paper's Fig. 4 example.
  kg::KnowledgeGraph g;
  const kg::EntityId fabian = g.AddEntity("Fabian_Bruskewitz");
  const kg::AttributeId name = g.AddAttribute("name");
  const kg::AttributeId work = g.AddAttribute("workPlace");
  const kg::AttributeId nat = g.AddAttribute("nationality");
  g.AddAttributeTriple(fabian, name, "Fabian Wendelin Bruskewitz");
  g.AddAttributeTriple(fabian, work, "Roman Catholic Church");
  g.AddAttributeTriple(fabian, nat, "American");
  return g;
}

TEST(SequencerTest, IdentityOrderConcatenatesInInsertionOrder) {
  kg::KnowledgeGraph g = FabianGraph();
  AttributeSequencer seq(&g, AttributeSequencer::kIdentityOrder);
  EXPECT_EQ(seq.Sequence(0),
            "Fabian Wendelin Bruskewitz Roman Catholic Church American");
}

TEST(SequencerTest, RandomOrderIsAPermutationOfValues) {
  kg::KnowledgeGraph g = FabianGraph();
  AttributeSequencer seq(&g, /*seed=*/1234);
  const std::string s = seq.Sequence(0);
  EXPECT_NE(s.find("Roman Catholic Church"), std::string::npos);
  EXPECT_NE(s.find("American"), std::string::npos);
  EXPECT_NE(s.find("Fabian Wendelin Bruskewitz"), std::string::npos);
}

TEST(SequencerTest, SameSeedSameOrder) {
  kg::KnowledgeGraph g = FabianGraph();
  AttributeSequencer a(&g, 99), b(&g, 99);
  EXPECT_EQ(a.Sequence(0), b.Sequence(0));
  EXPECT_EQ(a.attribute_rank(), b.attribute_rank());
}

TEST(SequencerTest, AllEntitiesFollowTheSameOrder) {
  // Two entities sharing attributes must emit values in the same attribute
  // order (the key property of Algorithm 1).
  kg::KnowledgeGraph g;
  const kg::EntityId e1 = g.AddEntity("e1");
  const kg::EntityId e2 = g.AddEntity("e2");
  const kg::AttributeId a = g.AddAttribute("a");
  const kg::AttributeId b = g.AddAttribute("b");
  // Insert in opposite orders per entity.
  g.AddAttributeTriple(e1, a, "A1");
  g.AddAttributeTriple(e1, b, "B1");
  g.AddAttributeTriple(e2, b, "B2");
  g.AddAttributeTriple(e2, a, "A2");
  AttributeSequencer seq(&g, 7);
  const std::string s1 = seq.Sequence(e1);
  const std::string s2 = seq.Sequence(e2);
  const bool a_first_1 = s1.find("A1") < s1.find("B1");
  const bool a_first_2 = s2.find("A2") < s2.find("B2");
  EXPECT_EQ(a_first_1, a_first_2);
}

TEST(SequencerTest, EntityWithoutAttributesIsEmpty) {
  kg::KnowledgeGraph g;
  g.AddEntity("lonely");
  AttributeSequencer seq(&g, 1);
  EXPECT_EQ(seq.Sequence(0), "");
}

TEST(SequencerTest, MultipleValuesOfSameAttributeKeepInsertionOrder) {
  kg::KnowledgeGraph g;
  const kg::EntityId e = g.AddEntity("e");
  const kg::AttributeId a = g.AddAttribute("alias");
  g.AddAttributeTriple(e, a, "first");
  g.AddAttributeTriple(e, a, "second");
  AttributeSequencer seq(&g, 42);
  EXPECT_EQ(seq.Sequence(e), "first second");
}

TEST(SequencerTest, AllSequencesCoversEveryEntity) {
  kg::KnowledgeGraph g = FabianGraph();
  g.AddEntity("another");
  AttributeSequencer seq(&g, 5);
  const auto all = seq.AllSequences();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_FALSE(all[0].empty());
  EXPECT_TRUE(all[1].empty());
}

}  // namespace
}  // namespace sdea::core
