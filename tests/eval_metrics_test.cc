#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace sdea::eval {
namespace {

TEST(MetricsTest, PerfectAlignment) {
  // Identity embeddings: gold target is always rank 1.
  Tensor src({3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  Tensor tgt = src;
  const RankingMetrics m = EvaluateAlignment(src, tgt, {0, 1, 2});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
  EXPECT_DOUBLE_EQ(m.hits_at_10, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_EQ(m.num_queries, 3);
}

TEST(MetricsTest, KnownRanks) {
  // One query; gold sits at rank 2 of 3.
  Tensor scores({1, 3}, {0.9f, 0.5f, 0.1f});
  const RankingMetrics m = EvaluateFromScores(scores, {1});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(m.hits_at_10, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);
}

TEST(MetricsTest, NegativeGoldSkipsQuery) {
  Tensor scores({2, 2}, {1, 0, 0, 1});
  const RankingMetrics m = EvaluateFromScores(scores, {-1, 1});
  EXPECT_EQ(m.num_queries, 1);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
}

TEST(MetricsTest, TiesCountAgainstGold) {
  // Gold score ties a competitor: pessimistic rank 2.
  Tensor scores({1, 2}, {0.7f, 0.7f});
  const RankingMetrics m = EvaluateFromScores(scores, {1});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);
}

TEST(MetricsTest, EmptyGoldYieldsZeroQueries) {
  Tensor scores({1, 2}, {1.0f, 0.0f});
  const RankingMetrics m = EvaluateFromScores(scores, {-1});
  EXPECT_EQ(m.num_queries, 0);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
}

TEST(MetricsTest, GoldRanks) {
  Tensor src({2, 2}, {1, 0, 0, 1});
  Tensor tgt({3, 2}, {1, 0, 0.9f, 0.1f, 0, 1});
  const auto ranks = GoldRanks(src, tgt, {0, 2});
  EXPECT_EQ(ranks[0], 1);
  EXPECT_EQ(ranks[1], 1);
  const auto ranks2 = GoldRanks(src, tgt, {1, -1});
  EXPECT_EQ(ranks2[0], 2);  // Row 1 of tgt is slightly off src row 0.
  EXPECT_EQ(ranks2[1], 0);  // Skipped.
}

TEST(MetricsTest, EvaluateByDegreeBuckets) {
  Tensor src({4, 2}, {1, 0, 1, 0, 0, 1, 0, 1});
  Tensor tgt({2, 2}, {1, 0, 0, 1});
  // Queries 0 and 2 point at their gold targets; 1 and 3 do not.
  const std::vector<int64_t> gold{0, 1, 1, 0};
  const std::vector<int64_t> degrees{1, 5, 2, 8};
  const auto buckets = EvaluateByDegree(src, tgt, gold, degrees, {3, 6});
  ASSERT_EQ(buckets.size(), 3u);
  // Bucket <=3 holds queries 0 and 2 (both right).
  EXPECT_EQ(buckets[0].num_queries, 2);
  EXPECT_DOUBLE_EQ(buckets[0].hits_at_1, 100.0);
  // Bucket (3,6] holds query 1 (wrong).
  EXPECT_EQ(buckets[1].num_queries, 1);
  EXPECT_DOUBLE_EQ(buckets[1].hits_at_1, 0.0);
  // Final unbounded bucket holds query 3 (wrong).
  EXPECT_EQ(buckets[2].num_queries, 1);
  EXPECT_DOUBLE_EQ(buckets[2].hits_at_1, 0.0);
}

TEST(MetricsTest, CosineNotDotDecidesRank) {
  // A long vector pointing slightly away must lose to a short aligned one.
  Tensor src({1, 2}, {1, 0});
  Tensor tgt({2, 2}, {0.1f, 0, 10.0f, 10.0f});
  const RankingMetrics m = EvaluateAlignment(src, tgt, {0});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
}

}  // namespace
}  // namespace sdea::eval
