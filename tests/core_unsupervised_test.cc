#include "core/unsupervised.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace sdea::core {
namespace {

AttributeModuleConfig TinyAttrConfig() {
  AttributeModuleConfig c;
  c.text.encoder.dim = 24;
  c.text.encoder.num_layers = 1;
  c.text.encoder.ff_dim = 48;
  c.text.encoder.max_len = 40;
  c.text.out_dim = 24;
  c.text.pretrain.epochs = 10;
  return c;
}

TEST(UnsupervisedTest, MinesHighPrecisionSeedsOnSharedNames) {
  datagen::GeneratorConfig g;
  g.seed = 91;
  g.num_matched = 150;
  g.kg1_lang_seed = 2;
  g.kg2_lang_seed = 2;
  g.kg2_name_mode = datagen::NameMode::kShared;
  const auto bench = datagen::BenchmarkGenerator().Generate(g);

  UnsupervisedOptions opt;
  opt.min_similarity = 0.7f;
  auto pseudo = MinePseudoSeeds(bench.kg1, bench.kg2, TinyAttrConfig(), opt,
                                bench.pretrain_corpus);
  ASSERT_TRUE(pseudo.ok()) << pseudo.status().ToString();
  EXPECT_GT(pseudo->accepted, 20);
  // Mutual-NN + threshold on shared-name data must be mostly correct.
  EXPECT_GT(PseudoSeedPrecision(*pseudo, bench.ground_truth), 70.0);
  // Split bookkeeping.
  EXPECT_EQ(pseudo->seeds.train.size() + pseudo->seeds.valid.size(),
            static_cast<size_t>(pseudo->accepted));
  EXPECT_TRUE(pseudo->seeds.test.empty());
}

TEST(UnsupervisedTest, ThresholdControlsVolume) {
  datagen::GeneratorConfig g;
  g.seed = 92;
  g.num_matched = 120;
  g.kg1_lang_seed = 3;
  g.kg2_lang_seed = 3;
  g.kg2_name_mode = datagen::NameMode::kShared;
  const auto bench = datagen::BenchmarkGenerator().Generate(g);
  UnsupervisedOptions lax;
  lax.min_similarity = 0.1f;
  UnsupervisedOptions strict;
  strict.min_similarity = 0.95f;
  auto many = MinePseudoSeeds(bench.kg1, bench.kg2, TinyAttrConfig(), lax,
                              bench.pretrain_corpus);
  auto few = MinePseudoSeeds(bench.kg1, bench.kg2, TinyAttrConfig(), strict,
                             bench.pretrain_corpus);
  ASSERT_TRUE(many.ok());
  ASSERT_TRUE(few.ok());
  EXPECT_GT(many->accepted, few->accepted);
}

TEST(UnsupervisedTest, MaxPairsCap) {
  datagen::GeneratorConfig g;
  g.seed = 93;
  g.num_matched = 120;
  g.kg1_lang_seed = 3;
  g.kg2_lang_seed = 3;
  g.kg2_name_mode = datagen::NameMode::kShared;
  const auto bench = datagen::BenchmarkGenerator().Generate(g);
  UnsupervisedOptions opt;
  opt.min_similarity = 0.1f;
  opt.max_pairs = 10;
  auto pseudo = MinePseudoSeeds(bench.kg1, bench.kg2, TinyAttrConfig(), opt,
                                bench.pretrain_corpus);
  ASSERT_TRUE(pseudo.ok());
  EXPECT_EQ(pseudo->accepted, 10);
}

TEST(PseudoSeedPrecisionTest, Arithmetic) {
  PseudoSeeds p;
  p.seeds.train = {{0, 0}, {1, 1}, {2, 9}};
  std::vector<std::pair<kg::EntityId, kg::EntityId>> gold = {
      {0, 0}, {1, 1}, {2, 2}};
  EXPECT_NEAR(PseudoSeedPrecision(p, gold), 200.0 / 3.0, 1e-9);
  PseudoSeeds empty;
  EXPECT_EQ(PseudoSeedPrecision(empty, gold), 0.0);
}

}  // namespace
}  // namespace sdea::core
