// Robustness / fuzz-style tests: hostile and degenerate inputs must fail
// cleanly (Status or well-defined output), never crash or hang.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "base/rng.h"
#include "core/attribute_sequencer.h"
#include "core/numeric_channel.h"
#include "eval/csv.h"
#include "kg/validation.h"
#include "text/normalizer.h"
#include "text/tokenizer.h"

namespace sdea {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->UniformInt(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->UniformInt(256)));
  }
  return out;
}

TEST(RobustnessTest, NormalizerNeverCrashesOnRandomBytes) {
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const std::string input = RandomBytes(&rng, 200);
    const std::string normalized = text::NormalizeText(input);
    EXPECT_LE(normalized.size(), input.size() + 1);
    const auto words = text::NormalizeAndSplit(input);
    for (const auto& w : words) EXPECT_FALSE(w.empty());
  }
}

TEST(RobustnessTest, TokenizerEncodesRandomBytesWithoutCrash) {
  // Train on a tiny clean corpus, then feed garbage.
  text::SubwordTokenizer tok;
  ASSERT_TRUE(
      tok.Train({"alpha beta gamma delta", "beta gamma epsilon"},
                text::TokenizerConfig{})
          .ok());
  Rng rng(102);
  for (int i = 0; i < 500; ++i) {
    const auto ids = tok.Encode(RandomBytes(&rng, 120));
    for (int64_t id : ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, tok.vocab().size());
    }
  }
}

TEST(RobustnessTest, TokenizerTrainOnBinaryCorpus) {
  // Even a corpus of random bytes must either train or fail cleanly.
  Rng rng(103);
  std::vector<std::string> corpus;
  for (int i = 0; i < 20; ++i) corpus.push_back(RandomBytes(&rng, 60));
  text::SubwordTokenizer tok;
  const Status s = tok.Train(corpus, text::TokenizerConfig{});
  if (s.ok()) {
    EXPECT_GE(tok.vocab().size(), text::kNumSpecialTokens);
    (void)tok.Encode("normal text still works");
  }
}

TEST(RobustnessTest, ParseNumericOnRandomBytes) {
  Rng rng(104);
  for (int i = 0; i < 1000; ++i) {
    double v = 0.0;
    (void)core::ParseNumeric(RandomBytes(&rng, 40), &v);
  }
}

TEST(RobustnessTest, EmbedNumberExtremes) {
  float buf[core::kNumericFeatureDim];
  for (double v : {0.0, -0.0, 1e-30, -1e-30, 1e15, -1e15, 3.14159}) {
    core::EmbedNumber(v, buf);
    for (float f : buf) EXPECT_TRUE(std::isfinite(f));
  }
}

TEST(RobustnessTest, SequencerOnAttributeFreeGraph) {
  kg::KnowledgeGraph g;
  for (int i = 0; i < 10; ++i) g.AddEntity("e" + std::to_string(i));
  core::AttributeSequencer seq(&g, 7);
  for (kg::EntityId e = 0; e < 10; ++e) {
    EXPECT_EQ(seq.Sequence(e), "");
  }
}

TEST(RobustnessTest, ValidationOnNastyValues) {
  Rng rng(105);
  kg::KnowledgeGraph g;
  const kg::EntityId e = g.AddEntity("e");
  const kg::AttributeId a = g.AddAttribute("x");
  for (int i = 0; i < 50; ++i) {
    g.AddAttributeTriple(e, a, RandomBytes(&rng, 100));
  }
  const auto report = kg::ValidateKnowledgeGraph(g);
  // Formatting a report full of binary garbage must not crash.
  (void)kg::FormatValidationReport(report);
}

TEST(RobustnessTest, CsvEscapeRandomBytes) {
  Rng rng(106);
  for (int i = 0; i < 500; ++i) {
    const std::string field = RandomBytes(&rng, 60);
    const std::string escaped = eval::CsvEscape(field);
    // Escaped field either equals the input or is quoted.
    if (escaped != field) {
      ASSERT_GE(escaped.size(), 2u);
      EXPECT_EQ(escaped.front(), '"');
      EXPECT_EQ(escaped.back(), '"');
    }
  }
}

TEST(RobustnessTest, HugeAttributeValueHandled) {
  kg::KnowledgeGraph g;
  const kg::EntityId e = g.AddEntity("e");
  const kg::AttributeId a = g.AddAttribute("blob");
  g.AddAttributeTriple(e, a, std::string(1 << 20, 'x'));  // 1 MiB value.
  core::AttributeSequencer seq(&g, 3);
  EXPECT_EQ(seq.Sequence(e).size(), static_cast<size_t>(1 << 20));
  // Tokenizing it stays bounded via max_word_bytes.
  text::SubwordTokenizer tok;
  ASSERT_TRUE(tok.Train({"small corpus words"}, text::TokenizerConfig{})
                  .ok());
  const auto ids = tok.Encode(seq.Sequence(e));
  EXPECT_EQ(ids.size(), 1u);  // One oversize word -> one [UNK].
}

}  // namespace
}  // namespace sdea
