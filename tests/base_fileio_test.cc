#include "base/fileio.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sdea {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(FileIoTest, RoundTripString) {
  const std::string path = TempPath("sdea_fileio_rt.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  auto r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello\nworld\n");
  EXPECT_TRUE(FileExists(path));
}

TEST(FileIoTest, ReadMissingFileFails) {
  auto r = ReadFileToString(TempPath("sdea_definitely_missing_42"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(TempPath("sdea_definitely_missing_42")));
}

TEST(FileIoTest, ReadLinesHandlesCrlfAndMissingFinalNewline) {
  const std::string path = TempPath("sdea_fileio_lines.txt");
  ASSERT_TRUE(WriteStringToFile(path, "a\r\nb\nc").ok());
  auto r = ReadLines(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FileIoTest, TsvRoundTrip) {
  const std::string path = TempPath("sdea_fileio.tsv");
  const std::vector<std::vector<std::string>> rows = {
      {"h", "r", "t"}, {"x", "y", "value with spaces"}};
  ASSERT_TRUE(WriteTsv(path, rows).ok());
  auto r = ReadTsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, rows);
}

TEST(FileIoTest, TsvSkipsBlankLines) {
  const std::string path = TempPath("sdea_fileio_blank.tsv");
  ASSERT_TRUE(WriteStringToFile(path, "a\tb\n\nc\td\n").ok());
  auto r = ReadTsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(FileIoTest, EmptyFileReadsEmpty) {
  const std::string path = TempPath("sdea_fileio_empty.txt");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto r = ReadLines(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(FileIoTest, AtomicWriteRoundTrips) {
  const std::string path = TempPath("sdea_fileio_atomic.txt");
  ASSERT_TRUE(WriteStringToFileAtomic(path, "first").ok());
  auto r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "first");
  // Replacing an existing file goes through the same temp + rename.
  ASSERT_TRUE(WriteStringToFileAtomic(path, "second, longer").ok());
  r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "second, longer");
}

TEST(FileIoTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = TempPath("sdea_fileio_atomic_clean.txt");
  ASSERT_TRUE(WriteStringToFileAtomic(path, "payload").ok());
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(tmp));
}

TEST(FileIoTest, AtomicWriteToBadDirectoryFails) {
  EXPECT_FALSE(
      WriteStringToFileAtomic("/nonexistent_dir_xyz/file.txt", "x").ok());
}

}  // namespace
}  // namespace sdea
