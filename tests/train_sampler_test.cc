// NegativeSampler: the extracted uniform-corruption sampler must keep the
// exact RNG call sequence of the historical TransE/TransEdge loops (one
// Bernoulli then one UniformInt per corruption; one UniformInt per plain
// draw), honor merged-slot resolution, and stay distributionally uniform.
#include "train/sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"

namespace sdea::train {
namespace {

TEST(NegativeSamplerTest, PinsLegacyCallSequence) {
  // The sampler's stream must equal the raw Bernoulli/UniformInt calls the
  // pre-refactor loops made, from the same generator state.
  constexpr int64_t kEntities = 1000;
  constexpr uint64_t kSeed = 1234;
  NegativeSampler sampler(kEntities);
  Rng rng(kSeed);
  Rng reference(kSeed);
  for (int i = 0; i < 200; ++i) {
    const int64_t head = i % kEntities;
    const int64_t tail = (i * 7 + 3) % kEntities;
    const auto pair = sampler.CorruptHeadOrTail(head, tail, &rng);
    // Legacy inline form: corrupt head or tail with probability 1/2, then
    // draw the replacement uniformly.
    int64_t ref_head = head;
    int64_t ref_tail = tail;
    if (reference.Bernoulli(0.5)) {
      ref_head = static_cast<int64_t>(
          reference.UniformInt(static_cast<uint64_t>(kEntities)));
    } else {
      ref_tail = static_cast<int64_t>(
          reference.UniformInt(static_cast<uint64_t>(kEntities)));
    }
    ASSERT_EQ(pair.head, ref_head) << "at draw " << i;
    ASSERT_EQ(pair.tail, ref_tail) << "at draw " << i;
  }
  // SampleEntity is a single UniformInt.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(sampler.SampleEntity(&rng),
              static_cast<int64_t>(
                  reference.UniformInt(static_cast<uint64_t>(kEntities))));
  }
}

TEST(NegativeSamplerTest, PinsExactDrawsAtFixedSeed) {
  // Regression pin: the first draws at seed 7 over 10 entities. If these
  // change, the sampler (or the Rng) changed its sampling distribution and
  // every golden training test will move with it.
  NegativeSampler sampler(10);
  Rng rng(7);
  std::vector<int64_t> heads, tails;
  for (int i = 0; i < 6; ++i) {
    const auto p = sampler.CorruptHeadOrTail(/*head=*/1, /*tail=*/2, &rng);
    heads.push_back(p.head);
    tails.push_back(p.tail);
  }
  // Exactly one side differs from the positive per draw (or neither, when
  // the uniform draw lands on the original id).
  Rng replay(7);
  for (int i = 0; i < 6; ++i) {
    const bool corrupt_head = replay.Bernoulli(0.5);
    const int64_t drawn = static_cast<int64_t>(replay.UniformInt(10));
    EXPECT_EQ(heads[i], corrupt_head ? drawn : 1);
    EXPECT_EQ(tails[i], corrupt_head ? 2 : drawn);
  }
}

TEST(NegativeSamplerTest, ResolvesMergedSlots) {
  // merge[raw] maps every odd id onto its even predecessor.
  std::vector<int64_t> merge(100);
  for (int64_t i = 0; i < 100; ++i) merge[i] = i - (i % 2);
  NegativeSampler sampler(100, merge);
  EXPECT_EQ(sampler.Resolve(41), 40);
  EXPECT_EQ(sampler.Resolve(40), 40);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.SampleEntity(&rng) % 2, 0);
    const auto p = sampler.CorruptHeadOrTail(4, 8, &rng);
    EXPECT_EQ(p.head % 2, 0);
    EXPECT_EQ(p.tail % 2, 0);
  }
}

TEST(NegativeSamplerTest, Int32MergeMatchesInt64Merge) {
  std::vector<int64_t> merge64 = {2, 2, 2, 3, 4};
  std::vector<int32_t> merge32 = {2, 2, 2, 3, 4};
  NegativeSampler a(5, merge64);
  NegativeSampler b(5, merge32);
  Rng ra(99), rb(99);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.SampleEntity(&ra), b.SampleEntity(&rb));
  }
}

TEST(NegativeSamplerTest, IdentityIsUnbiasedUniform) {
  // Chi-square-ish sanity: 20k draws over 8 entities; every bucket within
  // 15% of the expected 2500.
  NegativeSampler sampler(8);
  Rng rng(2024);
  std::vector<int64_t> counts(8, 0);
  for (int i = 0; i < 20000; ++i) counts[sampler.SampleEntity(&rng)]++;
  for (int64_t c : counts) {
    EXPECT_GT(c, 2500 * 0.85);
    EXPECT_LT(c, 2500 * 1.15);
  }
  // Corruption picks head vs tail near 50/50.
  int64_t head_corruptions = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto p = sampler.CorruptHeadOrTail(/*head=*/-1, /*tail=*/-2, &rng);
    head_corruptions += (p.head != -1);
    EXPECT_TRUE(p.head == -1 || p.tail == -2);  // Never both.
  }
  EXPECT_GT(head_corruptions, 20000 * 0.45);
  EXPECT_LT(head_corruptions, 20000 * 0.55);
}

}  // namespace
}  // namespace sdea::train
