// incr::UpdateLog: the SDEAINC1 codec round-trips arbitrary value bytes,
// Append is persist-then-accept (a failed write leaves both views on the
// old batch count), and a reopened log replays the exact stream — the
// crash-recovery path.
#include "incr/update_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/fileio.h"
#include "kg/knowledge_graph.h"

namespace sdea::incr {
namespace {

std::string TestPath(const std::string& name) {
  const char* dir = std::getenv("TEST_TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

UpdateBatch SampleBatch() {
  UpdateBatch b;
  b.kg1.new_entities = {"alice", ""};
  b.kg1.relational = {{"alice", "knows", "bob"}, {"bob", "knows", "alice"}};
  b.kg1.attributes = {{"alice", "bio", "line1\nline2\ttabbed"},
                      {"bob", "raw", std::string("nul\0byte", 8)}};
  b.kg2.new_entities = {"alicia"};
  b.kg2.relational = {{"alicia", "conoce", "roberto"}};
  return b;
}

TEST(UpdateLogCodecTest, RoundTripsArbitraryBytes) {
  const std::vector<UpdateBatch> batches = {SampleBatch(), UpdateBatch{},
                                            SampleBatch()};
  const std::string blob = EncodeUpdateLog(batches);
  auto decoded = DecodeUpdateLog(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].kg1.new_entities, batches[0].kg1.new_entities);
  EXPECT_EQ((*decoded)[0].kg1.attributes[1].value,
            batches[0].kg1.attributes[1].value);
  EXPECT_EQ((*decoded)[0].kg2.relational[0].relation, "conoce");
  EXPECT_TRUE((*decoded)[1].empty());
}

TEST(UpdateLogCodecTest, RejectsBadMagicAndTrailingBytes) {
  std::string blob = EncodeUpdateLog({SampleBatch()});
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeUpdateLog(bad_magic).ok());
  EXPECT_FALSE(DecodeUpdateLog("").ok());
  blob.push_back('\0');
  auto trailing = DecodeUpdateLog(blob);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kInvalidArgument);
}

TEST(UpdateLogTest, OpenMissingFileIsEmptyAndAppendPersists) {
  const std::string path = TestPath("sdea_incr_log_persist.bin");
  std::remove(path.c_str());

  auto log = UpdateLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 0);

  ASSERT_TRUE(log->Append(SampleBatch()).ok());
  ASSERT_TRUE(log->Append(UpdateBatch{}).ok());
  EXPECT_EQ(log->size(), 2);

  // Crash recovery: a fresh Open sees exactly the accepted batches.
  auto reopened = UpdateLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->size(), 2);
  EXPECT_EQ(reopened->batches()[0].kg1.relational[0].head, "alice");
  EXPECT_TRUE(reopened->batches()[1].empty());
  std::remove(path.c_str());
}

TEST(UpdateLogTest, FailedAppendLeavesLogUnchanged) {
  // Persist-then-accept: the atomic write into a nonexistent directory
  // fails, so the in-memory batch list must not grow either.
  auto log = UpdateLog::Open(TestPath("no_such_dir_xyz/log.bin"));
  ASSERT_TRUE(log.ok());
  const Status s = log->Append(SampleBatch());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(log->size(), 0);
}

TEST(UpdateLogTest, ReplayAppliesFromCursorAndInterns) {
  UpdateBatch first;
  first.kg1.relational = {{"a", "r", "b"}};
  first.kg2.relational = {{"x", "s", "y"}};
  UpdateBatch second;
  second.kg1.new_entities = {"lonely"};
  second.kg1.relational = {{"b", "r", "c"}};
  second.kg1.attributes = {{"a", "label", "v1"}, {"a", "label", "v2"}};

  const std::string path = TestPath("sdea_incr_log_replay.bin");
  std::remove(path.c_str());
  auto log = UpdateLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append(first).ok());
  ASSERT_TRUE(log->Append(second).ok());

  // kg1 already saw batch 0 (the increment was processed before a crash);
  // replay resumes from the cursor, interning duplicate names to the
  // existing ids.
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;
  ApplyUpdate(first.kg1, &kg1);
  ApplyUpdate(first.kg2, &kg2);
  ASSERT_TRUE(log->Replay(1, &kg1, &kg2).ok());

  EXPECT_EQ(kg1.num_entities(), 4);  // a b c lonely
  EXPECT_EQ(kg1.num_relations(), 1);
  EXPECT_EQ(kg1.relational_triples().size(), 2u);
  EXPECT_EQ(kg1.attribute_triples().size(), 2u);
  EXPECT_EQ(kg2.num_entities(), 2);

  EXPECT_FALSE(log->Replay(-1, &kg1, &kg2).ok());
  EXPECT_FALSE(log->Replay(3, &kg1, &kg2).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdea::incr
