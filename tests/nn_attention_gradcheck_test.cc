// Gradient checks through the composite attention / transformer blocks —
// the deepest autograd paths in the library.
#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/transformer.h"
#include "tensor/gradcheck.h"

namespace sdea::nn {
namespace {

TEST(AttentionGradCheckTest, MultiHeadAttention) {
  Rng rng(1);
  MultiHeadAttention attn("a", 8, 2, &rng);
  Tensor x = Tensor::RandomNormal({4, 8}, 0.6f, &rng);
  auto loss = [&]() {
    Graph g;
    return g.Value(g.SumAll(attn.Forward(&g, g.Input(x))))[0];
  };
  auto backward = [&]() {
    Graph g;
    g.Backward(g.SumAll(attn.Forward(&g, g.Input(x))));
  };
  EXPECT_LT(MaxGradCheckError(loss, backward, attn.Parameters(), 1e-2f, 8),
            6e-2f);
}

TEST(AttentionGradCheckTest, TransformerEncoderLayer) {
  Rng rng(2);
  TransformerConfig cfg;
  cfg.vocab_size = 10;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_dim = 16;
  cfg.dropout = 0.0f;
  TransformerEncoderLayer layer("l", cfg, &rng);
  Tensor x = Tensor::RandomNormal({3, 8}, 0.6f, &rng);
  auto loss = [&]() {
    Graph g;
    NodeId out = layer.Forward(&g, g.Input(x), false, nullptr);
    return g.Value(g.SumAll(out))[0];
  };
  auto backward = [&]() {
    Graph g;
    g.Backward(g.SumAll(layer.Forward(&g, g.Input(x), false, nullptr)));
  };
  EXPECT_LT(
      MaxGradCheckError(loss, backward, layer.Parameters(), 1e-2f, 6),
      8e-2f);
}

TEST(AttentionGradCheckTest, FullEncoderTokenEmbeddingGradients) {
  // Gradients must reach the token embedding table through the full stack.
  Rng rng(3);
  TransformerConfig cfg;
  cfg.vocab_size = 12;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ff_dim = 16;
  cfg.dropout = 0.0f;
  TransformerEncoder enc("t", cfg, &rng);
  enc.ZeroGrad();
  Graph g;
  NodeId cls = enc.EncodeCls(&g, {1, 5, 7, 9}, false, nullptr);
  g.Backward(g.SumAll(cls));
  Parameter* table = enc.token_embedding()->table();
  // Used tokens have gradients; unused tokens do not.
  auto row_norm = [&](int64_t row) {
    double s = 0.0;
    for (int64_t j = 0; j < cfg.dim; ++j) {
      const float v = table->grad.at(row, j);
      s += static_cast<double>(v) * v;
    }
    return s;
  };
  EXPECT_GT(row_norm(5), 0.0);
  EXPECT_GT(row_norm(9), 0.0);
  EXPECT_EQ(row_norm(2), 0.0);  // Token 2 never appeared.
}

}  // namespace
}  // namespace sdea::nn
