// Fuzz regression suite for the SDEACKP1 parameter-blob decoder and the
// Adam optimizer-state decoder: truncation at every offset, thousands of
// seeded mutations, and the crafted entry counts / tensor dims that used
// to overflow `pos + len`, wrap `elements * dim`, or reach the Tensor
// constructor with a negative dimension and abort.
#include "nn/serialization.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "testing/fuzz.h"

namespace sdea::nn {
namespace {

// DeserializeParameters mutates the module, so the fuzz decode closure
// rebuilds a fresh target each case from the same seed; decode outcomes
// stay independent of case order.
sdea::testing::DecodeFn ParamsDecoder() {
  return [](const std::string& blob) {
    Rng rng(11);
    Mlp target("m", {4, 8, 2}, Activation::kRelu, &rng);
    return DeserializeParameters(&target, blob);
  };
}

std::string SampleParamsBlob() {
  Rng rng(11);
  Mlp module("m", {4, 8, 2}, Activation::kRelu, &rng);
  return SerializeParameters(&module);
}

TEST(NnSerializationFuzzTest, ValidBlobDecodes) {
  const Status s = ParamsDecoder()(SampleParamsBlob());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(NnSerializationFuzzTest, TruncationAtEveryOffset) {
  const std::string blob = SampleParamsBlob();
  sdea::testing::FuzzStats stats;
  const Status verdict =
      sdea::testing::CheckTruncationRobustness(blob, ParamsDecoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, static_cast<int64_t>(blob.size()));
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(NnSerializationFuzzTest, SeededMutations) {
  const std::string blob = SampleParamsBlob();
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      blob, ParamsDecoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, options.iterations);
  EXPECT_GT(stats.rejected, 0);
}

TEST(NnSerializationFuzzTest, HugeEntryCountRejectsInConstantTime) {
  std::string blob = SampleParamsBlob();
  // The entry count is the u64 right after the 8-byte magic.
  const uint64_t evil = ~uint64_t{0};
  std::memcpy(blob.data() + 8, &evil, 8);
  const Status s = ParamsDecoder()(blob);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NnSerializationFuzzTest, EvilTensorDimRejectsNotAborts) {
  // A hand-built tensor record whose single dim is 2^63: the u64→int64
  // cast used to produce a negative dimension and trip the SDEA_CHECK in
  // the Tensor constructor. ReadTensor must refuse instead.
  std::string rec;
  AppendU64(&rec, 1);                    // rank
  AppendU64(&rec, uint64_t{1} << 63);    // dim
  size_t pos = 0;
  Tensor t;
  EXPECT_FALSE(ReadTensor(rec, &pos, &t));

  // And a rank-2 record whose dims multiply past int64: 2^32 x 2^32.
  std::string rec2;
  AppendU64(&rec2, 2);
  AppendU64(&rec2, uint64_t{1} << 32);
  AppendU64(&rec2, uint64_t{1} << 32);
  pos = 0;
  EXPECT_FALSE(ReadTensor(rec2, &pos, &t));
}

// ---- Adam optimizer state ------------------------------------------------

TEST(NnSerializationFuzzTest, AdamStateSeededMutations) {
  Rng rng(12);
  Mlp module("m", {4, 6, 2}, Activation::kRelu, &rng);
  Adam adam(module.Parameters(), 0.01f);
  adam.Step();  // Materialize the moment slots.
  std::string blob;
  adam.SerializeState(&blob);

  auto decode = [](const std::string& b) {
    Rng r(12);
    Mlp m("m", {4, 6, 2}, Activation::kRelu, &r);
    Adam a(m.Parameters(), 0.01f);
    size_t pos = 0;
    Status s = a.DeserializeState(b, &pos);
    if (s.ok() && pos != b.size()) {
      return Status::InvalidArgument("optimizer state has trailing bytes");
    }
    return s;
  };
  EXPECT_TRUE(decode(blob).ok());

  sdea::testing::FuzzOptions options;
  options.iterations = 2000;
  sdea::testing::FuzzStats stats;
  Status verdict = sdea::testing::CheckMutationRobustness(blob, decode,
                                                          options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  verdict = sdea::testing::CheckTruncationRobustness(blob, decode, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

}  // namespace
}  // namespace sdea::nn
