// Tests for the deterministic fault-injecting file layer: the hook
// mechanics themselves, and the headline guarantee that
// WriteStringToFileAtomic can never leave a torn file no matter where the
// fault lands (while plain WriteStringToFile demonstrably can — which is
// why every saver in the tree now goes through the atomic path).
#include "base/fault_injection.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/fileio.h"
#include "base/rng.h"
#include "testing/faults.h"

namespace sdea {
namespace {

using testing::CountdownFaultInjector;
using testing::FaultPlan;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string AtomicTempName(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
}

TEST(FaultInjectionTest, NoInjectorMeansPassthrough) {
  const std::string path = TempPath("sdea_fi_passthrough.txt");
  ASSERT_EQ(CurrentFaultInjector(), nullptr);
  ASSERT_TRUE(WriteStringToFile(path, "hello").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello");
}

TEST(FaultInjectionTest, ScopedInstallAndNestedRestore) {
  CountdownFaultInjector outer{FaultPlan{}};
  CountdownFaultInjector inner{FaultPlan{}};
  EXPECT_EQ(CurrentFaultInjector(), nullptr);
  {
    ScopedFaultInjector scope_outer(&outer);
    EXPECT_EQ(CurrentFaultInjector(), &outer);
    {
      ScopedFaultInjector scope_inner(&inner);
      EXPECT_EQ(CurrentFaultInjector(), &inner);
    }
    EXPECT_EQ(CurrentFaultInjector(), &outer);
  }
  EXPECT_EQ(CurrentFaultInjector(), nullptr);
}

TEST(FaultInjectionTest, ReadFaultReturnsIoError) {
  const std::string path = TempPath("sdea_fi_read.txt");
  ASSERT_TRUE(WriteStringToFile(path, "contents").ok());

  CountdownFaultInjector injector{
      FaultPlan{.op = FaultInjector::FileOp::kRead}};
  ScopedFaultInjector scope(&injector);
  auto read = ReadFileToString(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjectionTest, CountdownFailsOnlyTheNthOp) {
  const std::string path = TempPath("sdea_fi_countdown.txt");
  CountdownFaultInjector injector{
      FaultPlan{.op = FaultInjector::FileOp::kWrite, .trigger_after = 1}};
  ScopedFaultInjector scope(&injector);
  EXPECT_TRUE(WriteStringToFile(path, "first").ok());
  EXPECT_FALSE(WriteStringToFile(path, "second").ok());
  EXPECT_TRUE(WriteStringToFile(path, "third").ok());
  EXPECT_EQ(injector.matching_ops(), 3);
  EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjectionTest, PathSubstringFilterScopesTheFault) {
  const std::string victim = TempPath("sdea_fi_victim.ckpt");
  const std::string bystander = TempPath("sdea_fi_bystander.txt");
  CountdownFaultInjector injector{FaultPlan{.op = FaultInjector::FileOp::kWrite,
                                            .repeat = true,
                                            .path_substring = ".ckpt"}};
  ScopedFaultInjector scope(&injector);
  EXPECT_TRUE(WriteStringToFile(bystander, "fine").ok());
  EXPECT_FALSE(WriteStringToFile(victim, "broken").ok());
  EXPECT_TRUE(WriteStringToFile(bystander, "still fine").ok());
}

TEST(FaultInjectionTest, ShortWriteTearsPlainWrites) {
  const std::string path = TempPath("sdea_fi_short.txt");
  ASSERT_TRUE(WriteStringToFile(path, "old complete contents").ok());

  CountdownFaultInjector injector{FaultPlan{
      .op = FaultInjector::FileOp::kWrite, .short_write_bytes = 5}};
  ScopedFaultInjector scope(&injector);
  ASSERT_FALSE(WriteStringToFile(path, "new contents").ok());

  ScopedFaultInjector off(nullptr);
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  // This is the torn-file failure mode: neither the old nor the new file.
  EXPECT_EQ(*read, "new c");
}

TEST(FaultInjectionTest, AtomicWriteIsNeverTorn) {
  const std::string path = TempPath("sdea_fi_atomic.bin");
  const std::string old_contents = "v1: the complete previous artifact";
  ASSERT_TRUE(WriteStringToFileAtomic(path, old_contents).ok());

  const std::string new_contents(257, 'x');
  Rng rng(7);
  // Whatever the fault — hard write failure, a short write of any length,
  // or a failed rename — the target always reads back as the previous
  // complete artifact and no temp file survives.
  for (int scenario = 0; scenario < 40; ++scenario) {
    FaultPlan plan;
    switch (scenario % 3) {
      case 0:
        plan.op = FaultInjector::FileOp::kWrite;
        break;
      case 1:
        plan.op = FaultInjector::FileOp::kWrite;
        plan.short_write_bytes =
            static_cast<int64_t>(rng.UniformInt(new_contents.size() + 1));
        break;
      default:
        plan.op = FaultInjector::FileOp::kRename;
        break;
    }
    CountdownFaultInjector injector{plan};
    {
      ScopedFaultInjector scope(&injector);
      auto status = WriteStringToFileAtomic(path, new_contents);
      ASSERT_FALSE(status.ok()) << "scenario " << scenario;
      EXPECT_EQ(status.code(), StatusCode::kIoError);
    }
    EXPECT_EQ(injector.faults_injected(), 1) << "scenario " << scenario;
    auto read = ReadFileToString(path);
    ASSERT_TRUE(read.ok()) << "scenario " << scenario;
    EXPECT_EQ(*read, old_contents) << "scenario " << scenario;
    EXPECT_FALSE(FileExists(AtomicTempName(path)))
        << "stray temp file in scenario " << scenario;
  }

  // With the injector gone the write goes through.
  ASSERT_TRUE(WriteStringToFileAtomic(path, new_contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, new_contents);
}

TEST(FaultInjectionTest, DirectoryFsyncFaultReportsButKeepsTheNewFile) {
  // The PR-5 gap: rename is atomic but not durable. WriteStringToFileAtomic
  // now fsyncs the parent directory after the rename; if that fsync fails,
  // the durability contract is unmet and the call must say so — but the
  // renamed file is complete and correct, so it stays (a reader that does
  // see it gets the full new artifact, never a torn one).
  const std::string path = TempPath("sdea_fi_dirsync.bin");
  ASSERT_TRUE(WriteStringToFileAtomic(path, "old").ok());

  CountdownFaultInjector injector{
      FaultPlan{.op = FaultInjector::FileOp::kFsyncDir}};
  {
    ScopedFaultInjector scope(&injector);
    auto status = WriteStringToFileAtomic(path, "new contents");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  EXPECT_EQ(injector.faults_injected(), 1);
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new contents");
  EXPECT_FALSE(FileExists(AtomicTempName(path)));
}

TEST(FaultInjectionTest, DirectoryFsyncHappyPathStillSucceeds) {
  // A counting (never-firing) injector proves the kFsyncDir hook actually
  // runs once per atomic write on the healthy path.
  const std::string path = TempPath("sdea_fi_dirsync_ok.bin");
  CountdownFaultInjector injector{FaultPlan{
      .op = FaultInjector::FileOp::kFsyncDir, .trigger_after = 1000}};
  ScopedFaultInjector scope(&injector);
  ASSERT_TRUE(WriteStringToFileAtomic(path, "durable").ok());
  EXPECT_EQ(injector.matching_ops(), 1);
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectionTest, AtomicWriteFaultWithNoPreviousFile) {
  const std::string path = TempPath("sdea_fi_atomic_fresh.bin");
  std::remove(path.c_str());

  CountdownFaultInjector injector{FaultPlan{
      .op = FaultInjector::FileOp::kWrite, .short_write_bytes = 3}};
  ScopedFaultInjector scope(&injector);
  ASSERT_FALSE(WriteStringToFileAtomic(path, "brand new").ok());
  // Nothing existed before, nothing may exist after — not even a partial
  // temp file a directory scan could mistake for an artifact.
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(AtomicTempName(path)));
}

}  // namespace
}  // namespace sdea
