#include "eval/table_printer.h"

#include <gtest/gtest.h>

namespace sdea::eval {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Model", "H@1"});
  t.AddRow({"SDEA", "87.0"});
  t.AddRow({"BERT-INT", "81.4"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("SDEA"), std::string::npos);
  EXPECT_NE(out.find("81.4"), std::string::npos);
  // Three rules: above header, below header, below body.
  size_t rules = 0;
  for (size_t p = out.find('+'); p != std::string::npos;
       p = out.find('+', p + 1)) {
    if (p == 0 || out[p - 1] == '\n') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter t({"A", "BBBB"});
  t.AddRow({"xxxxxx", "y"});
  const std::string out = t.ToString();
  // Every line has the same width.
  size_t width = 0;
  size_t start = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == '\n') {
      if (width == 0) width = i - start;
      EXPECT_EQ(i - start, width);
      start = i + 1;
    }
  }
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(FormatPercent(87.03), "87.0");
  EXPECT_EQ(FormatPercent(0.0), "0.0");
  EXPECT_EQ(FormatMrr(0.914), "0.91");
}

}  // namespace
}  // namespace sdea::eval
