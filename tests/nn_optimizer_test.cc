#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace sdea::nn {
namespace {

// Minimizes ||x - target||^2 with the given optimizer; returns final
// distance.
template <typename Opt>
float MinimizeQuadratic(Opt* opt, Parameter* x, const Tensor& target,
                        int steps) {
  for (int s = 0; s < steps; ++s) {
    opt->ZeroGrad();
    Graph g;
    NodeId xv = g.Param(x);
    NodeId t = g.Input(target);
    NodeId diff = g.Sub(xv, t);
    NodeId loss = g.SumAll(g.Mul(diff, diff));
    g.Backward(loss);
    opt->Step();
  }
  return tmath::SquaredL2Distance(x->value, target);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter x("x", Tensor({4}, {5, -3, 2, 8}));
  Tensor target({4}, {1, 1, 1, 1});
  Sgd opt({&x}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(&opt, &x, target, 100), 1e-4f);
}

TEST(SgdTest, MomentumConverges) {
  Parameter x("x", Tensor({4}, {5, -3, 2, 8}));
  Tensor target({4}, {0, 0, 0, 0});
  Sgd opt({&x}, 0.02f, 0.9f);
  EXPECT_LT(MinimizeQuadratic(&opt, &x, target, 150), 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter x("x", Tensor({4}, {5, -3, 2, 8}));
  Tensor target({4}, {1, -1, 0.5f, 2});
  Adam opt({&x}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(&opt, &x, target, 300), 1e-3f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter x("x", Tensor({2}, {10, -10}));
  Adam opt({&x}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  // Zero gradient; only decay acts.
  for (int s = 0; s < 50; ++s) {
    opt.ZeroGrad();
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.value[0]), 10.0f);
}

TEST(OptimizerTest, ClipGradNorm) {
  Parameter x("x", Tensor({2}, {0, 0}));
  x.grad = Tensor({2}, {3, 4});
  Sgd opt({&x}, 0.1f);
  const float pre = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(x.grad.Norm(), 1.0f, 1e-5f);
  // Below the limit: untouched.
  x.grad = Tensor({2}, {0.3f, 0.4f});
  opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(x.grad.Norm(), 0.5f, 1e-6f);
}

TEST(LossTest, RowSquaredL2DistanceValues) {
  Graph g;
  NodeId a = g.Input(Tensor({2, 2}, {0, 0, 1, 1}));
  NodeId b = g.Input(Tensor({2, 2}, {3, 4, 1, 1}));
  const Tensor& d = g.Value(RowSquaredL2Distance(&g, a, b));
  EXPECT_EQ(d.shape(), (std::vector<int64_t>{2, 1}));
  EXPECT_FLOAT_EQ(d[0], 25.0f);
  EXPECT_FLOAT_EQ(d[1], 0.0f);
}

TEST(LossTest, MarginRankingLossValues) {
  Graph g;
  // Anchor at origin; positive at distance 1; negative at distance 4.
  NodeId a = g.Input(Tensor({1, 2}, {0, 0}));
  NodeId p = g.Input(Tensor({1, 2}, {1, 0}));
  NodeId n = g.Input(Tensor({1, 2}, {2, 0}));
  // loss = max(0, 1 - 4 + margin).
  NodeId l1 = MarginRankingLoss(&g, a, p, n, 1.0f);
  EXPECT_FLOAT_EQ(g.Value(l1)[0], 0.0f);
  NodeId l2 = MarginRankingLoss(&g, a, p, n, 5.0f);
  EXPECT_FLOAT_EQ(g.Value(l2)[0], 2.0f);
}

TEST(LossTest, MarginLossZeroWhenSeparated) {
  Graph g;
  NodeId a = g.Input(Tensor({1, 2}, {0, 0}));
  NodeId p = g.Input(Tensor({1, 2}, {0, 0}));
  NodeId n = g.Input(Tensor({1, 2}, {10, 0}));
  EXPECT_FLOAT_EQ(g.Value(MarginRankingLoss(&g, a, p, n, 1.0f))[0], 0.0f);
}

}  // namespace
}  // namespace sdea::nn
