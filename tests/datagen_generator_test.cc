// Property-style tests of the benchmark generator: structural invariants,
// ground-truth validity, and the statistical contrasts each preset is
// responsible for (degree skew, name modes, long-tail stripping).
#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "base/strings.h"
#include "datagen/presets.h"

namespace sdea::datagen {
namespace {

GeneratorConfig SmallConfig(uint64_t seed = 5) {
  GeneratorConfig c;
  c.seed = seed;
  c.num_matched = 300;
  return c;
}

TEST(GeneratorTest, GroundTruthIsValidBijection) {
  const GeneratedBenchmark b =
      BenchmarkGenerator().Generate(SmallConfig());
  std::set<kg::EntityId> left, right;
  for (const auto& [a, c] : b.ground_truth) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, b.kg1.num_entities());
    ASSERT_GE(c, 0);
    ASSERT_LT(c, b.kg2.num_entities());
    EXPECT_TRUE(left.insert(a).second) << "duplicate source entity";
    EXPECT_TRUE(right.insert(c).second) << "duplicate target entity";
  }
  EXPECT_EQ(static_cast<int64_t>(b.ground_truth.size()),
            300 + SmallConfig().num_general_concepts);
}

TEST(GeneratorTest, ExtrasInflateEntityCounts) {
  GeneratorConfig c = SmallConfig();
  c.extra_entity_frac = 0.5;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  EXPECT_GT(b.kg1.num_entities(),
            static_cast<int64_t>(b.ground_truth.size()));
  EXPECT_GT(b.kg2.num_entities(),
            static_cast<int64_t>(b.ground_truth.size()));
}

TEST(GeneratorTest, Deterministic) {
  const GeneratedBenchmark a =
      BenchmarkGenerator().Generate(SmallConfig(11));
  const GeneratedBenchmark b =
      BenchmarkGenerator().Generate(SmallConfig(11));
  EXPECT_EQ(a.kg1.num_entities(), b.kg1.num_entities());
  EXPECT_EQ(a.kg1.relational_triples().size(),
            b.kg1.relational_triples().size());
  EXPECT_EQ(a.ground_truth, b.ground_truth);
  ASSERT_FALSE(a.kg1.attribute_triples().empty());
  EXPECT_EQ(a.kg1.attribute_triples()[0].value,
            b.kg1.attribute_triples()[0].value);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const GeneratedBenchmark a =
      BenchmarkGenerator().Generate(SmallConfig(1));
  const GeneratedBenchmark b =
      BenchmarkGenerator().Generate(SmallConfig(2));
  EXPECT_NE(a.kg1.relational_triples().size(),
            b.kg1.relational_triples().size());
}

TEST(GeneratorTest, TranslatedModeHasDisjointNames) {
  GeneratorConfig c = SmallConfig();
  c.kg1_lang_seed = 1;
  c.kg2_lang_seed = 2;
  c.kg2_name_mode = NameMode::kTranslated;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  int64_t identical = 0;
  for (const auto& [x, y] : b.ground_truth) {
    if (b.kg1.entity_name(x) == b.kg2.entity_name(y)) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(GeneratorTest, SharedModeHasMatchingNames) {
  GeneratorConfig c = SmallConfig();
  c.kg1_lang_seed = 3;
  c.kg2_lang_seed = 3;
  c.kg2_name_mode = NameMode::kShared;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  int64_t identical = 0;
  for (const auto& [x, y] : b.ground_truth) {
    if (b.kg1.entity_name(x) == b.kg2.entity_name(y)) ++identical;
  }
  EXPECT_GT(identical,
            static_cast<int64_t>(b.ground_truth.size()) * 9 / 10);
}

TEST(GeneratorTest, OpaqueModeUsesQIds) {
  GeneratorConfig c = SmallConfig();
  c.kg2_name_mode = NameMode::kOpaqueIds;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  for (kg::EntityId e = 0; e < b.kg2.num_entities(); ++e) {
    EXPECT_TRUE(StartsWith(b.kg2.entity_name(e), "Q"))
        << b.kg2.entity_name(e);
  }
  // And no name-attribute triples exist in KG2 (a Q-id KG has no labels).
  auto name_attr = b.kg2.FindAttribute("name");
  if (name_attr.ok()) {
    for (const auto& t : b.kg2.attribute_triples()) {
      EXPECT_NE(t.attribute, *name_attr);
    }
  }
}

TEST(GeneratorTest, GeneralConceptsAreSuperHubs) {
  GeneratorConfig c = SmallConfig();
  c.general_link_prob = 0.9;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  int64_t max_degree = 0;
  for (kg::EntityId e = 0; e < b.kg1.num_entities(); ++e) {
    max_degree = std::max(max_degree, b.kg1.degree(e));
  }
  // A handful of type concepts absorb a large share of all entities.
  EXPECT_GT(max_degree, 300 / c.num_general_concepts / 2);
}

TEST(GeneratorTest, CommentsAreLongText) {
  const GeneratedBenchmark b =
      BenchmarkGenerator().Generate(SmallConfig());
  auto attr = b.kg1.FindAttribute("comment");
  ASSERT_TRUE(attr.ok());
  int64_t comments = 0;
  for (const auto& t : b.kg1.attribute_triples()) {
    if (t.attribute != *attr) continue;
    ++comments;
    const auto words = SplitWhitespace(t.value);
    EXPECT_GE(words.size(), 20u);
    EXPECT_LE(words.size(), 60u);
  }
  EXPECT_GT(comments, 50);
}

TEST(GeneratorTest, LongTailStrippingOnlyAffectsKg2LowDegree) {
  GeneratorConfig c = SmallConfig();
  c.longtail_strip_prob = 1.0;
  c.comment_prob = 1.0;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  auto comment2 = b.kg2.FindAttribute("comment");
  ASSERT_TRUE(comment2.ok());
  // Stripped KG2 entities must still carry their comment (the paper's
  // Fabian_Bruskewitz case: all information lives in the long text).
  int64_t comment_only = 0;
  for (kg::EntityId e = 0; e < b.kg2.num_entities(); ++e) {
    const auto& attrs = b.kg2.attribute_triples_of(e);
    if (attrs.size() == 1 &&
        b.kg2.attribute_triples()[static_cast<size_t>(attrs[0])].attribute ==
            *comment2) {
      ++comment_only;
    }
  }
  EXPECT_GT(comment_only, 10);
}

TEST(GeneratorTest, PretrainCorpusEmittedAndParallel) {
  GeneratorConfig c = SmallConfig();
  c.kg1_lang_seed = 1;
  c.kg2_lang_seed = 2;
  c.pretrain_sentences = 100;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  ASSERT_EQ(b.pretrain_corpus.size(), 100u);
  // Cross-lingual: sentences interleave both renderings -> twice the words.
  const auto words = SplitWhitespace(b.pretrain_corpus[0]);
  EXPECT_EQ(static_cast<int64_t>(words.size()),
            2 * c.pretrain_words_per_sentence);
}

TEST(GeneratorTest, MonolingualCorpusNotDuplicated) {
  GeneratorConfig c = SmallConfig();
  c.kg1_lang_seed = 4;
  c.kg2_lang_seed = 4;
  c.pretrain_sentences = 10;
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(c);
  const auto words = SplitWhitespace(b.pretrain_corpus[0]);
  EXPECT_EQ(static_cast<int64_t>(words.size()),
            c.pretrain_words_per_sentence);
}

// ---- Preset property sweeps -------------------------------------------------

struct PresetCase {
  std::string id;
  double min_le3;  // Expected bounds on the degree<=3 share (Table VI).
  double max_le3;
};

class PresetDegreeTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetDegreeTest, DegreeShareMatchesPaperBand) {
  const PresetCase& param = GetParam();
  for (const DatasetSpec& spec : AllPresets()) {
    if (spec.id != param.id) continue;
    const GeneratedBenchmark b = BenchmarkGenerator().Generate(
        ScaledConfig(spec.config, 2000.0 / spec.config.num_matched));
    const auto s1 = b.kg1.ComputeStatistics();
    EXPECT_GE(s1.degree_le3, param.min_le3) << spec.id;
    EXPECT_LE(s1.degree_le3, param.max_le3) << spec.id;
    return;
  }
  FAIL() << "preset not found: " << param.id;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PresetDegreeTest,
    ::testing::Values(
        // Paper Table VI: DBP15K 23-30% <=3, SRPRS 65-70%, OpenEA ~53%.
        PresetCase{"zh_en", 0.10, 0.45},
        PresetCase{"fr_en", 0.05, 0.40},
        PresetCase{"en_fr", 0.50, 0.85},
        PresetCase{"dbp_yg", 0.50, 0.85},
        PresetCase{"d_w_15k_v1", 0.35, 0.70}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return info.param.id;
    });

TEST(PresetTest, AllPresetsGenerateAtSmallScale) {
  for (const DatasetSpec& spec : AllPresets()) {
    const GeneratorConfig cfg = ScaledConfig(spec.config, 0.02);
    const GeneratedBenchmark b = BenchmarkGenerator().Generate(cfg);
    EXPECT_GT(b.kg1.num_entities(), 0) << spec.id;
    EXPECT_GT(b.kg1.relational_triples().size(), 0u) << spec.id;
    EXPECT_GT(b.kg1.attribute_triples().size(), 0u) << spec.id;
    EXPECT_FALSE(b.ground_truth.empty()) << spec.id;
  }
}

TEST(PresetTest, MillionScalePresetGeneratesWhenScaledDown) {
  // The 1M headline preset itself is a bench-only configuration; here it
  // runs at 1/2000 scale to pin its invariants: monolingual pair with
  // opaque KG2 ids, every matched entity present, no pretrain corpus.
  const DatasetSpec spec = MillionScalePreset();
  EXPECT_EQ(spec.id, "d_w_1m");
  EXPECT_EQ(spec.config.num_matched, 1'000'000);
  const GeneratorConfig cfg = ScaledConfig(spec.config, 0.0005);
  EXPECT_EQ(cfg.num_matched, 500);
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(cfg);
  // Ground truth covers the 500 matched entities plus the shared general
  // concepts (both views keep them, so they are aligned too).
  EXPECT_GE(static_cast<int64_t>(b.ground_truth.size()), 500);
  EXPECT_GE(b.kg1.num_entities(), 500);
  EXPECT_TRUE(b.pretrain_corpus.empty());
}

TEST(PresetTest, ScaledConfigFloors) {
  GeneratorConfig c = SmallConfig();
  c.num_matched = 10'000;
  EXPECT_EQ(ScaledConfig(c, 0.5).num_matched, 5'000);
  EXPECT_EQ(ScaledConfig(c, 1e-9).num_matched, 200);
}

}  // namespace
}  // namespace sdea::datagen
