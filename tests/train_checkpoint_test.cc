// Checkpoint/resume tests: wire-format round trip and corruption handling,
// and the headline guarantee — a run killed mid-training and resumed from
// its checkpoint finishes bitwise-identical to the uninterrupted run
// (parameters, Adam moments, RNG stream, cumulative order, and the
// early-stopping bookkeeping all restored).
#include "train/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/fileio.h"
#include "base/rng.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "train/trainer.h"

namespace sdea::train {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

class WalkNet : public nn::Module {
 public:
  explicit WalkNet(int64_t dim = 8) {
    w = AddParameter("walk.w", Tensor({1, dim}));
  }
  Parameter* w;
};

// A task whose updates depend on the RNG stream, the example order, and the
// Adam moments: any state the resume path fails to restore shows up as a
// parameter difference within one epoch.
class WalkTask : public TrainTask {
 public:
  explicit WalkTask(uint64_t seed) : rng_(seed) {
    optimizer_ = std::make_unique<nn::Adam>(net_.Parameters(), 0.05f);
  }

  size_t num_examples() const override { return 6; }
  Rng* rng() override { return &rng_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    net_.ZeroGrad();
    float* g = net_.w->grad.data();
    for (size_t i = 0; i < n; ++i) {
      g[ids[i] % 8] += rng_.UniformFloat(-1.0f, 1.0f);
    }
    optimizer_->Step();
    return net_.w->value.data()[0];
  }

  double EvalMetric() override {
    return static_cast<double>(net_.w->value.data()[0]);
  }

  nn::Module* module() override { return &net_; }
  nn::Optimizer* optimizer() override { return optimizer_.get(); }

  Rng rng_;
  WalkNet net_;
  std::unique_ptr<nn::Optimizer> optimizer_;
};

TrainerOptions WalkOptions() {
  TrainerOptions opts;
  opts.max_epochs = 8;
  opts.batch_size = 3;
  opts.shuffle = TrainerOptions::Shuffle::kCumulative;
  opts.evaluate = true;
  opts.restore_best = true;
  return opts;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = 7;
  ckpt.epochs_run = 6;
  ckpt.best_metric = 0.875;
  ckpt.since_best = 2;
  ckpt.metric_history = {0.1, 0.875, 0.5};
  ckpt.order = {3, 1, 4, 1, 5};
  Rng rng(12345);
  rng.Normal();  // Populate the Box-Muller cache.
  ckpt.rng = rng.SaveState();
  ckpt.params = std::string("params\0blob", 11);
  ckpt.best_params = "best";
  ckpt.optimizer = "opt-state";
  ckpt.finished = true;

  auto decoded = CheckpointManager::Decode(CheckpointManager::Encode(ckpt));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->next_epoch, 7);
  EXPECT_EQ(decoded->epochs_run, 6);
  EXPECT_DOUBLE_EQ(decoded->best_metric, 0.875);
  EXPECT_EQ(decoded->since_best, 2);
  EXPECT_EQ(decoded->metric_history, ckpt.metric_history);
  EXPECT_EQ(decoded->order, ckpt.order);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(decoded->rng.s[i], ckpt.rng.s[i]);
  EXPECT_EQ(decoded->rng.has_cached_normal, ckpt.rng.has_cached_normal);
  EXPECT_DOUBLE_EQ(decoded->rng.cached_normal, ckpt.rng.cached_normal);
  EXPECT_EQ(decoded->params, ckpt.params);
  EXPECT_EQ(decoded->best_params, "best");
  EXPECT_EQ(decoded->optimizer, "opt-state");
  EXPECT_TRUE(decoded->finished);
}

TEST(CheckpointTest, DecodeRejectsCorruptBlobs) {
  TrainerCheckpoint ckpt;
  ckpt.order = {0, 1, 2};
  ckpt.params = "p";
  const std::string blob = CheckpointManager::Encode(ckpt);

  // Wrong magic.
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_EQ(CheckpointManager::Decode(bad).status().code(),
            StatusCode::kInvalidArgument);
  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(CheckpointManager::Decode(blob.substr(0, len)).ok())
        << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_EQ(CheckpointManager::Decode(blob + "x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, LoadMissingFileFailsWithPath) {
  CheckpointManager mgr(TempPath("sdea_ckpt_missing_xyz"));
  EXPECT_FALSE(mgr.Exists());
  auto r = mgr.Load();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("sdea_ckpt_missing_xyz"),
            std::string::npos);
}

TEST(CheckpointTest, KillAndResumeIsBitwiseIdentical) {
  const std::string live = TempPath("sdea_ckpt_kill_live.ckpt");
  const std::string frozen = TempPath("sdea_ckpt_kill_frozen.ckpt");
  std::remove(live.c_str());
  std::remove(frozen.c_str());

  // Reference: the uninterrupted run.
  WalkTask ref(/*seed=*/42);
  Trainer ref_trainer(&ref, WalkOptions());
  ASSERT_TRUE(ref_trainer.Run().ok());
  const std::string ref_params = nn::SerializeParameters(&ref.net_);

  // "Killed" run: checkpoints every epoch; at epoch 5 we freeze a copy of
  // the checkpoint file as it would be left on disk by a kill (it holds the
  // mid-save taken after epoch 4, i.e. next_epoch = 5).
  WalkTask killed(/*seed=*/42);
  CheckpointManager live_mgr(live);
  TrainerOptions opts = WalkOptions();
  opts.checkpoint = &live_mgr;
  opts.on_epoch = [&](const EpochStats& es) {
    if (es.epoch == 5) {
      auto blob = ReadFileToString(live);
      EXPECT_TRUE(blob.ok());
      EXPECT_TRUE(WriteStringToFile(frozen, *blob).ok());
    }
    return true;
  };
  Trainer killed_trainer(&killed, opts);
  ASSERT_TRUE(killed_trainer.Run().ok());
  // Checkpointing itself must not perturb the numerics.
  EXPECT_EQ(nn::SerializeParameters(&killed.net_), ref_params);

  // Resume: a fresh process (fresh task, fresh RNG, fresh Adam) picks up
  // the frozen mid-run checkpoint and finishes.
  WalkTask resumed(/*seed=*/42);
  CheckpointManager frozen_mgr(frozen);
  TrainerOptions resume_opts = WalkOptions();
  resume_opts.checkpoint = &frozen_mgr;
  Trainer resumed_trainer(&resumed, resume_opts);
  auto stats = resumed_trainer.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epochs.size(), 3u);  // Epochs 5..7 only.
  EXPECT_EQ(nn::SerializeParameters(&resumed.net_), ref_params);
  // Whole-run bookkeeping spans the pre-kill epochs too.
  EXPECT_EQ(resumed_trainer.epochs_run(), ref_trainer.epochs_run());
  EXPECT_DOUBLE_EQ(resumed_trainer.best_metric(), ref_trainer.best_metric());
  EXPECT_EQ(resumed_trainer.metric_history(), ref_trainer.metric_history());
}

TEST(CheckpointTest, FinishedCheckpointResumesAsPureReload) {
  const std::string path = TempPath("sdea_ckpt_finished.ckpt");
  std::remove(path.c_str());

  WalkTask first(/*seed=*/7);
  CheckpointManager mgr(path);
  TrainerOptions opts = WalkOptions();
  opts.checkpoint = &mgr;
  Trainer first_trainer(&first, opts);
  ASSERT_TRUE(first_trainer.Run().ok());
  const std::string final_params = nn::SerializeParameters(&first.net_);

  WalkTask second(/*seed=*/7);
  CheckpointManager mgr2(path);
  TrainerOptions opts2 = WalkOptions();
  opts2.checkpoint = &mgr2;
  Trainer second_trainer(&second, opts2);
  auto stats = second_trainer.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->epochs.empty());  // No epoch re-executed.
  EXPECT_EQ(nn::SerializeParameters(&second.net_), final_params);
  EXPECT_EQ(second_trainer.epochs_run(), first_trainer.epochs_run());
  EXPECT_EQ(second_trainer.metric_history(),
            first_trainer.metric_history());
}

TEST(CheckpointTest, ResumeValidatesBeforeMutating) {
  const std::string path = TempPath("sdea_ckpt_mismatch.ckpt");
  std::remove(path.c_str());
  WalkTask task(/*seed=*/3);
  const std::string before = nn::SerializeParameters(&task.net_);

  // Checkpoint whose example order belongs to a different dataset size.
  TrainerCheckpoint ckpt;
  ckpt.order = {0, 1, 2};  // Task has 6 examples.
  ckpt.rng = task.rng()->SaveState();
  ckpt.params = before;
  CheckpointManager mgr(path);
  ASSERT_TRUE(mgr.Save(ckpt).ok());
  TrainerOptions opts = WalkOptions();
  opts.checkpoint = &mgr;
  EXPECT_EQ(Trainer(&task, opts).Run().status().code(),
            StatusCode::kInvalidArgument);

  // Checkpoint whose parameter blob has the wrong shape: rejected by the
  // validate-before-mutate deserialization, task untouched.
  WalkNet other(/*dim=*/16);
  ckpt.order = {0, 1, 2, 3, 4, 5};
  ckpt.params = nn::SerializeParameters(&other);
  ASSERT_TRUE(mgr.Save(ckpt).ok());
  EXPECT_EQ(Trainer(&task, opts).Run().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(nn::SerializeParameters(&task.net_), before);
}

}  // namespace
}  // namespace sdea::train
