#include "nn/gru.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/gradcheck.h"

namespace sdea::nn {
namespace {

TEST(GruCellTest, StepShape) {
  Rng rng(1);
  GruCell cell("c", 4, 6, &rng);
  EXPECT_EQ(cell.input_dim(), 4);
  EXPECT_EQ(cell.hidden_dim(), 6);
  EXPECT_EQ(cell.Parameters().size(), 9u);  // 3 gates x (W, U, b).
  Graph g;
  NodeId x = g.Input(Tensor({1, 4}, 0.5f));
  NodeId h = g.Input(Tensor({1, 6}));
  NodeId h1 = cell.Step(&g, x, h);
  EXPECT_EQ(g.Value(h1).shape(), (std::vector<int64_t>{1, 6}));
}

TEST(GruCellTest, ZeroUpdateGateKeepsState) {
  // With z_t ~ 0 (large negative bias on the update gate), h_t ~ h_{t-1}.
  Rng rng(2);
  GruCell cell("c", 3, 3, &rng);
  for (Parameter* p : cell.Parameters()) {
    if (p->name == "c.bz") p->value.Fill(-50.0f);
  }
  Graph g;
  NodeId x = g.Input(Tensor({1, 3}, 1.0f));
  NodeId h = g.Input(Tensor({1, 3}, {0.3f, -0.2f, 0.9f}));
  const Tensor& h1 = g.Value(cell.Step(&g, x, h));
  EXPECT_NEAR(h1[0], 0.3f, 1e-4f);
  EXPECT_NEAR(h1[1], -0.2f, 1e-4f);
  EXPECT_NEAR(h1[2], 0.9f, 1e-4f);
}

TEST(GruTest, ForwardShapeAndOrder) {
  Rng rng(3);
  Gru gru("g", 4, 5, &rng);
  Graph g;
  NodeId x = g.Input(Tensor::RandomNormal({6, 4}, 1.0f, &rng));
  NodeId out = gru.Forward(&g, x);
  EXPECT_EQ(g.Value(out).shape(), (std::vector<int64_t>{6, 5}));
}

TEST(GruTest, ReverseProcessesBackwards) {
  Rng rng(4);
  Gru gru("g", 3, 4, &rng);
  Tensor seq = Tensor::RandomNormal({5, 3}, 1.0f, &rng);
  // Reversed input processed in reverse equals forward output flipped.
  Tensor flipped({5, 3});
  for (int64_t t = 0; t < 5; ++t) flipped.SetRow(t, seq.Row(4 - t));
  Graph g1, g2;
  const Tensor fwd_on_flipped =
      g1.Value(gru.Forward(&g1, g1.Input(flipped), /*reverse=*/false));
  const Tensor rev_on_original =
      g2.Value(gru.Forward(&g2, g2.Input(seq), /*reverse=*/true));
  for (int64_t t = 0; t < 5; ++t) {
    const Tensor a = fwd_on_flipped.Row(t);
    const Tensor b = rev_on_original.Row(4 - t);
    EXPECT_LT(tmath::SquaredL2Distance(a, b), 1e-8f);
  }
}

TEST(BiGruTest, OutputIsSumOfDirections) {
  Rng rng(5);
  BiGru bigru("b", 3, 4, &rng);
  EXPECT_EQ(bigru.hidden_dim(), 4);
  Graph g;
  NodeId x = g.Input(Tensor::RandomNormal({4, 3}, 1.0f, &rng));
  NodeId out = bigru.Forward(&g, x);
  EXPECT_EQ(g.Value(out).shape(), (std::vector<int64_t>{4, 4}));
}

TEST(BiGruTest, SingleStepSequence) {
  Rng rng(6);
  BiGru bigru("b", 3, 4, &rng);
  Graph g;
  NodeId out = bigru.Forward(&g, g.Input(Tensor({1, 3}, 0.7f)));
  EXPECT_EQ(g.Value(out).shape(), (std::vector<int64_t>{1, 4}));
}

TEST(BiGruTest, GradCheckThroughSequence) {
  Rng rng(7);
  BiGru bigru("b", 3, 3, &rng);
  Tensor x = Tensor::RandomNormal({4, 3}, 0.8f, &rng);
  auto loss = [&]() {
    Graph g;
    return g.Value(g.SumAll(bigru.Forward(&g, g.Input(x))))[0];
  };
  auto backward = [&]() {
    Graph g;
    g.Backward(g.SumAll(bigru.Forward(&g, g.Input(x))));
  };
  EXPECT_LT(MaxGradCheckError(loss, backward, bigru.Parameters(), 1e-2f, 8),
            5e-2f);
}

TEST(BiGruTest, CanLearnOrderSensitiveTarget) {
  // Distinguish a sequence from its reversal — impossible for mean pooling,
  // possible for a recurrent model.
  Rng rng(8);
  BiGru bigru("b", 2, 4, &rng);
  Adam opt(bigru.Parameters(), 1e-2f);
  Tensor seq({3, 2}, {1, 0, 0, 1, -1, 0});
  Tensor rev({3, 2}, {-1, 0, 0, 1, 1, 0});
  float last_loss = 1e9f;
  for (int step = 0; step < 40; ++step) {
    Graph g;
    NodeId a = g.SliceRows(bigru.Forward(&g, g.Input(seq)), 2, 3);
    NodeId b = g.SliceRows(bigru.Forward(&g, g.Input(rev)), 2, 3);
    // Push the two final states apart up to a margin.
    NodeId d = nn::RowSquaredL2Distance(&g, a, b);
    NodeId loss = g.Relu(g.AddConst(g.Scale(d, -1.0f), 1.0f));
    last_loss = g.Value(g.MeanAll(loss))[0];
    opt.ZeroGrad();
    g.Backward(g.MeanAll(loss));
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.5f);
}

}  // namespace
}  // namespace sdea::nn
