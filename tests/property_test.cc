// Cross-cutting property tests: invariants that must hold for arbitrary
// seeds/configurations, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <set>

#include "core/candidate_generator.h"
#include "core/stable_matching.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "text/tokenizer.h"

namespace sdea {
namespace {

// ---- Metric invariants over random embeddings --------------------------------

class MetricInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricInvariantTest, OrderingAndBounds) {
  Rng rng(GetParam());
  const int64_t n = 20, m = 40, d = 8;
  Tensor src = Tensor::RandomNormal({n, d}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({m, d}, 1.0f, &rng);
  std::vector<int64_t> gold;
  for (int64_t i = 0; i < n; ++i) {
    gold.push_back(static_cast<int64_t>(rng.UniformInt(m)));
  }
  const eval::RankingMetrics metrics =
      eval::EvaluateAlignment(src, tgt, gold);
  // H@1 <= H@10, both in [0,100]; MRR in [H@1/100 scale, 1].
  EXPECT_LE(metrics.hits_at_1, metrics.hits_at_10);
  EXPECT_GE(metrics.hits_at_1, 0.0);
  EXPECT_LE(metrics.hits_at_10, 100.0);
  EXPECT_GE(metrics.mrr * 100.0, metrics.hits_at_1 - 1e-9);
  EXPECT_LE(metrics.mrr, 1.0 + 1e-9);
  EXPECT_EQ(metrics.num_queries, n);
}

TEST_P(MetricInvariantTest, SelfAlignmentIsPerfect) {
  Rng rng(GetParam() ^ 0xf00d);
  Tensor emb = Tensor::RandomNormal({25, 6}, 1.0f, &rng);
  std::vector<int64_t> identity;
  for (int64_t i = 0; i < 25; ++i) identity.push_back(i);
  const eval::RankingMetrics m = eval::EvaluateAlignment(emb, emb, identity);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvariantTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Candidate generation invariants ------------------------------------------

class CandidateInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CandidateInvariantTest, GoldAlwaysInCandidatesOfItself) {
  // When source rows equal target rows, row i's top candidate is i.
  Rng rng(GetParam());
  Tensor emb = Tensor::RandomNormal({30, 8}, 1.0f, &rng);
  const auto c = core::GenerateCandidates(emb, emb, 3);
  for (int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(c[static_cast<size_t>(i)][0], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateInvariantTest,
                         ::testing::Values(11u, 12u, 13u));

// ---- Stable matching invariants ------------------------------------------------

class StableMatchInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StableMatchInvariantTest, OneToOneAndStable) {
  Rng rng(GetParam());
  const int64_t n = 12;
  Tensor scores = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  const auto match = core::StableMatch(scores);
  std::set<int64_t> used;
  std::vector<int64_t> holder(static_cast<size_t>(n), -1);
  for (int64_t s = 0; s < n; ++s) {
    ASSERT_GE(match[static_cast<size_t>(s)], 0);
    EXPECT_TRUE(used.insert(match[static_cast<size_t>(s)]).second);
    holder[static_cast<size_t>(match[static_cast<size_t>(s)])] = s;
  }
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t t = 0; t < n; ++t) {
      if (t == match[static_cast<size_t>(s)]) continue;
      const bool s_prefers =
          scores[s * n + t] >
          scores[s * n + match[static_cast<size_t>(s)]];
      const bool t_prefers =
          scores[s * n + t] >
          scores[holder[static_cast<size_t>(t)] * n + t];
      EXPECT_FALSE(s_prefers && t_prefers);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableMatchInvariantTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---- Tokenizer round-trip property ---------------------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, TrainedCorpusEncodesWithoutUnk) {
  // Any text drawn from the training corpus must tokenize without [UNK].
  datagen::GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.num_matched = 150;
  const auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  std::vector<std::string> corpus;
  for (const auto& t : bench.kg1.attribute_triples()) {
    corpus.push_back(t.value);
  }
  text::SubwordTokenizer tok;
  ASSERT_TRUE(tok.Train(corpus, text::TokenizerConfig{}).ok());
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto& sample = corpus[rng.UniformInt(corpus.size())];
    for (int64_t id : tok.Encode(sample)) {
      EXPECT_NE(id, text::kUnkId) << sample;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(31u, 32u));

// ---- Generator invariants over presets and seeds --------------------------------

struct GenCase {
  uint64_t seed;
  datagen::NameMode mode;
};

class GeneratorInvariantTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorInvariantTest, StructuralInvariants) {
  datagen::GeneratorConfig cfg;
  cfg.seed = GetParam().seed;
  cfg.num_matched = 200;
  cfg.kg2_name_mode = GetParam().mode;
  const auto b = datagen::BenchmarkGenerator().Generate(cfg);
  // Every relational triple references valid entities.
  for (const auto* g : {&b.kg1, &b.kg2}) {
    for (const auto& t : g->relational_triples()) {
      ASSERT_GE(t.head, 0);
      ASSERT_LT(t.head, g->num_entities());
      ASSERT_GE(t.tail, 0);
      ASSERT_LT(t.tail, g->num_entities());
      ASSERT_NE(t.head, t.tail);  // Generator never emits self-loops.
    }
    for (const auto& t : g->attribute_triples()) {
      ASSERT_GE(t.entity, 0);
      ASSERT_LT(t.entity, g->num_entities());
      EXPECT_FALSE(t.value.empty());
    }
    // Entity names are unique (AddEntity would otherwise have merged).
    EXPECT_EQ(g->num_entities(), g->ComputeStatistics().num_entities);
  }
  // Degree bookkeeping: sum of degrees == 2 * |triples|.
  int64_t degree_sum = 0;
  for (kg::EntityId e = 0; e < b.kg1.num_entities(); ++e) {
    degree_sum += b.kg1.degree(e);
  }
  EXPECT_EQ(degree_sum,
            2 * static_cast<int64_t>(b.kg1.relational_triples().size()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GeneratorInvariantTest,
    ::testing::Values(GenCase{41, datagen::NameMode::kShared},
                      GenCase{42, datagen::NameMode::kTranslated},
                      GenCase{43, datagen::NameMode::kOpaqueIds},
                      GenCase{44, datagen::NameMode::kTranslated}));

}  // namespace
}  // namespace sdea
