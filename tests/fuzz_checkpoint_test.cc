// Fuzz regression suite for the SDEATRN1 trainer-checkpoint decoder:
// truncation at every offset plus thousands of seeded mutations, and the
// crafted huge-count headers that used to pass the lax `n > blob.size()`
// bound and drive multi-billion-iteration read loops.
#include "train/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "testing/fuzz.h"

namespace sdea::train {
namespace {

TrainerCheckpoint SampleCheckpoint() {
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = 7;
  ckpt.epochs_run = 7;
  ckpt.best_metric = 0.8125;
  ckpt.since_best = 2;
  ckpt.metric_history = {0.25, 0.5, 0.75, 0.8125, 0.80, 0.79, 0.78};
  ckpt.order = {4, 2, 0, 3, 1, 5, 6, 7};
  Rng rng(99);
  rng.Next();
  ckpt.rng = rng.SaveState();
  ckpt.params = std::string("param-blob\x00with\x01binary", 22);
  ckpt.best_params = "best-param-blob";
  ckpt.optimizer = "optimizer-state-blob";
  ckpt.finished = false;
  return ckpt;
}

sdea::testing::DecodeFn Decoder() {
  return [](const std::string& blob) {
    return CheckpointManager::Decode(blob).status();
  };
}

TEST(CheckpointFuzzTest, ValidBlobRoundTrips) {
  const TrainerCheckpoint ckpt = SampleCheckpoint();
  const std::string blob = CheckpointManager::Encode(ckpt);
  auto decoded = CheckpointManager::Decode(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->next_epoch, ckpt.next_epoch);
  EXPECT_EQ(decoded->metric_history, ckpt.metric_history);
  EXPECT_EQ(decoded->order, ckpt.order);
  EXPECT_EQ(decoded->params, ckpt.params);
}

TEST(CheckpointFuzzTest, TruncationAtEveryOffset) {
  const std::string blob = CheckpointManager::Encode(SampleCheckpoint());
  sdea::testing::FuzzStats stats;
  const Status verdict =
      sdea::testing::CheckTruncationRobustness(blob, Decoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, static_cast<int64_t>(blob.size()));
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(CheckpointFuzzTest, SeededMutations) {
  const std::string blob = CheckpointManager::Encode(SampleCheckpoint());
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      blob, Decoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, options.iterations);
  EXPECT_GT(stats.rejected, 0);
}

TEST(CheckpointFuzzTest, HugeHistoryCountRejectsInConstantTime) {
  std::string blob = CheckpointManager::Encode(SampleCheckpoint());
  // metric_history count: first u64 after the magic, next_epoch,
  // epochs_run, best_metric, and since_best fields (8 + 4*8 = 40).
  const uint64_t evil = ~uint64_t{0};
  std::memcpy(blob.data() + 40, &evil, 8);
  auto decoded = CheckpointManager::Decode(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdea::train
