#include "base/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sdea {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewedTowardSmall) {
  Rng rng(17);
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Zipf(100, 1.5);
    EXPECT_LT(v, 100u);
    if (v < 3) ++small;
  }
  // With s=1.5 the first three ranks carry a large share of the mass
  // (the rejection-inversion sampler approximates the discrete law).
  EXPECT_GT(small, n * 2 / 5);
}

TEST(RngTest, ZipfHandlesExponentOne) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Zipf(50, 1.0), 50u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  const auto s = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t x : s) EXPECT_LT(x, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(22);
  const auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(30);
  Rng child = a.Fork();
  const uint64_t a1 = a.Next();
  (void)child.Next();
  Rng b(30);
  (void)b.Fork();
  EXPECT_EQ(a1, b.Next());  // Advancing the child must not perturb parent.
}

}  // namespace
}  // namespace sdea
