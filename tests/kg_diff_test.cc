// KgSnapshot::DiffSince / TouchedEntities: the MVCC epoch journal. A diff
// between two commits is exactly the appended suffix, the journal survives
// chunk growth and store destruction, and the touched-entity set is the
// sorted, deduplicated union the incremental aligner seeds its BFS with.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "kg/knowledge_graph.h"

namespace sdea::kg {
namespace {

TEST(KgDiffTest, DiffFromEmptyBaselineCoversEverything) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  const AttributeId at = g.AddAttribute("at");
  g.AddRelationalTriple(a, r, b);
  g.AddAttributeTriple(a, at, "v");
  g.EndBulkLoad();

  const KgSnapshot snap = g.Snapshot();
  auto diff = snap.DiffSince(0);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->base_epoch, 0u);
  EXPECT_EQ(diff->epoch, snap.epoch());
  EXPECT_EQ(diff->num_new_entities(), 2);
  EXPECT_EQ(diff->num_new_relations(), 1);
  EXPECT_EQ(diff->num_new_attributes(), 1);
  EXPECT_EQ(diff->num_new_rel_rows(), 1);
  EXPECT_EQ(diff->num_new_attr_rows(), 1);
  EXPECT_FALSE(diff->empty());
}

TEST(KgDiffTest, DiffBetweenCommitsIsExactlyTheDelta) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);
  g.EndBulkLoad();
  const KgSnapshot base = g.Snapshot();

  g.BeginBulkLoad();
  const EntityId c = g.AddEntity("c");
  g.AddRelationalTriple(b, r, c);
  const AttributeId at = g.AddAttribute("at");
  g.AddAttributeTriple(c, at, "v");
  g.EndBulkLoad();
  const KgSnapshot head = g.Snapshot();

  auto diff = head.DiffSince(base.epoch());
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->base_epoch, base.epoch());
  EXPECT_EQ(diff->num_new_entities(), 1);
  EXPECT_EQ(diff->entity_begin, 2);
  EXPECT_EQ(diff->entity_end, 3);
  EXPECT_EQ(diff->num_new_relations(), 0);
  EXPECT_EQ(diff->num_new_attributes(), 1);
  EXPECT_EQ(diff->num_new_rel_rows(), 1);
  EXPECT_EQ(diff->rel_row_begin, 1);
  EXPECT_EQ(diff->num_new_attr_rows(), 1);

  // Self-diff is empty; a stale snapshot cannot diff against the future.
  auto self = head.DiffSince(head.epoch());
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->empty());
  auto future = base.DiffSince(head.epoch());
  EXPECT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgDiffTest, TouchedEntitiesSortedDedupedUnion) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const EntityId c = g.AddEntity("c");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);
  g.EndBulkLoad();
  const KgSnapshot base = g.Snapshot();

  g.BeginBulkLoad();
  const EntityId d = g.AddEntity("d");       // New entity, no triples.
  g.AddRelationalTriple(c, r, a);            // Touches c and a.
  g.AddRelationalTriple(c, r, b);            // c again (dedup).
  const AttributeId at = g.AddAttribute("at");
  g.AddAttributeTriple(b, at, "v");          // b via attribute row.
  g.EndBulkLoad();
  const KgSnapshot head = g.Snapshot();

  auto diff = head.DiffSince(base.epoch());
  ASSERT_TRUE(diff.ok());
  const std::vector<EntityId> touched = head.TouchedEntities(*diff);
  EXPECT_EQ(touched, (std::vector<EntityId>{a, b, c, d}));
}

TEST(KgDiffTest, JournalSurvivesChunkGrowthAcrossManyCommits) {
  // kMarkChunkRows = 1024; 2100 single-add commits forces the mark list
  // through two chunk-growth COW steps. Every historical epoch must stay
  // addressable with the right cumulative counts.
  KnowledgeGraph g;
  std::vector<std::pair<uint64_t, int64_t>> checkpoints;  // (epoch, entities)
  for (int i = 0; i < 2100; ++i) {
    g.AddEntity("e" + std::to_string(i));
    if (i % 500 == 0) {
      const KgSnapshot s = g.Snapshot();
      checkpoints.emplace_back(s.epoch(), s.num_entities());
    }
  }
  const KgSnapshot head = g.Snapshot();
  for (const auto& [epoch, entities] : checkpoints) {
    auto diff = head.DiffSince(epoch);
    ASSERT_TRUE(diff.ok()) << "epoch " << epoch;
    EXPECT_EQ(diff->num_new_entities(), head.num_entities() - entities);
    EXPECT_EQ(diff->entity_begin, entities);
  }
}

TEST(KgDiffTest, DiffWorksAfterStoreIsDestroyed) {
  // The snapshot carries the epoch journal, so diffing is lock-free and
  // does not reach back into the (possibly gone) store.
  auto g = std::make_unique<KnowledgeGraph>();
  g->BeginBulkLoad();
  const EntityId a = g->AddEntity("a");
  const EntityId b = g->AddEntity("b");
  const RelationId r = g->AddRelation("r");
  g->AddRelationalTriple(a, r, b);
  g->EndBulkLoad();
  const KgSnapshot base = g->Snapshot();
  g->AddEntity("c");
  const KgSnapshot head = g->Snapshot();
  g.reset();

  auto diff = head.DiffSince(base.epoch());
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->num_new_entities(), 1);
  EXPECT_EQ(head.TouchedEntities(*diff),
            (std::vector<EntityId>{2}));
}

}  // namespace
}  // namespace sdea::kg
