// obs exporter tests: text summary, Prometheus exposition format
// (cumulative buckets, sanitized names), chrome-trace JSON (escaping,
// event fields), trace file writing, and the SDEA_OBS_TRACE env hook.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "base/fileio.h"
#include "obs/obs.h"
#include "obs/registry.h"

namespace sdea::obs {
namespace {

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("serve.queries")->Increment(7);
  reg.GetGauge("train.lr")->Set(0.125);
  HistogramCell* h = reg.GetHistogram("serve.latency-us", {1.0, 10.0});
  h->Record(0.5);
  h->Record(0.5);
  h->Record(5.0);
  h->Record(5000.0);
  return reg.Snapshot();
}

TEST(ObsExportTest, TextSummaryListsEveryMetric) {
  const std::string text = TextSummary(SampleSnapshot());
  EXPECT_NE(text.find("serve.queries = 7"), std::string::npos) << text;
  EXPECT_NE(text.find("train.lr = 0.125"), std::string::npos) << text;
  EXPECT_NE(text.find("serve.latency-us: count=4"), std::string::npos)
      << text;
}

TEST(ObsExportTest, PrometheusTextSanitizesAndCumulates) {
  const std::string text = PrometheusText(SampleSnapshot());
  // Names sanitized: '.' and '-' become '_'.
  EXPECT_NE(text.find("# TYPE serve_queries counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_queries 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE train_lr gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("train_lr 0.125"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE serve_latency_us histogram"),
            std::string::npos)
      << text;
  // Buckets are cumulative: 2 at le=1, 3 at le=10, all 4 at +Inf.
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"10\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_latency_us_sum 5006"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_latency_us_count 4"), std::string::npos)
      << text;
}

TEST(ObsExportTest, ChromeTraceJsonRendersCompleteEvents) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{"train/epoch", 100, 50, 1, 0});
  events.push_back(TraceEvent{"train/eval", 120, 20, 2, 1});
  const std::string json = ChromeTraceJson(events);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"train/epoch\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":100,\"dur\":50"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tid\":2,\"args\":{\"depth\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos)
      << json;
}

TEST(ObsExportTest, ChromeTraceJsonEscapesNames) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{"a\"b\\c\nd", 0, 1, 1, 0});
  const std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
}

TEST(ObsExportTest, EmptyEventListIsValidJson) {
  EXPECT_EQ(ChromeTraceJson({}),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ObsExportTest, WriteTraceJsonWritesFile) {
  TraceBuffer buffer(8);
  buffer.Add(TraceEvent{"phase", 10, 5, 1, 0});
  const std::string path =
      ::testing::TempDir() + "/obs_export_trace.json";
  ASSERT_TRUE(WriteTraceJson(buffer, path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"name\":\"phase\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsExportTest, MaybeWriteTraceFromEnvIsNoopWhenUnset) {
  ::unsetenv("SDEA_OBS_TRACE");
  EXPECT_TRUE(MaybeWriteTraceFromEnv().ok());
}

TEST(ObsExportTest, MaybeWriteTraceFromEnvWritesDefaultBuffer) {
  const std::string path =
      ::testing::TempDir() + "/obs_export_env_trace.json";
  ::setenv("SDEA_OBS_TRACE", path.c_str(), /*overwrite=*/1);
  EXPECT_TRUE(MaybeWriteTraceFromEnv().ok());
  ::unsetenv("SDEA_OBS_TRACE");
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdea::obs
