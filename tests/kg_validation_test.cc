#include "kg/validation.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace sdea::kg {
namespace {

TEST(ValidationTest, CleanGraphPasses) {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);
  const AttributeId attr = g.AddAttribute("name");
  g.AddAttributeTriple(a, attr, "A");
  g.AddAttributeTriple(b, attr, "B");
  const ValidationReport report = ValidateKnowledgeGraph(g);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(FormatValidationReport(report), "OK: no issues found\n");
}

TEST(ValidationTest, DetectsSelfLoop) {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, a);
  const AttributeId attr = g.AddAttribute("name");
  g.AddAttributeTriple(a, attr, "A");
  const ValidationReport report = ValidateKnowledgeGraph(g);
  EXPECT_EQ(report.self_loops, 1);
  EXPECT_FALSE(report.clean());
}

TEST(ValidationTest, DetectsDuplicates) {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const RelationId r = g.AddRelation("r");
  g.AddRelationalTriple(a, r, b);
  g.AddRelationalTriple(a, r, b);
  const AttributeId attr = g.AddAttribute("x");
  g.AddAttributeTriple(a, attr, "v");
  g.AddAttributeTriple(a, attr, "v");
  const ValidationReport report = ValidateKnowledgeGraph(g);
  EXPECT_EQ(report.duplicate_triples, 1);
  EXPECT_EQ(report.duplicate_attributes, 1);
}

TEST(ValidationTest, DetectsEmptyAndOversizeValues) {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const AttributeId attr = g.AddAttribute("x");
  g.AddAttributeTriple(a, attr, "   ");
  g.AddAttributeTriple(a, attr, std::string(5000, 'y'));
  ValidationOptions opt;
  opt.max_value_bytes = 4096;
  const ValidationReport report = ValidateKnowledgeGraph(g, opt);
  EXPECT_EQ(report.empty_values, 1);
  EXPECT_EQ(report.oversize_values, 1);
}

TEST(ValidationTest, DetectsIsolatedEntities) {
  KnowledgeGraph g;
  g.AddEntity("floating");
  const ValidationReport report = ValidateKnowledgeGraph(g);
  EXPECT_EQ(report.isolated_entities, 1);
  // An entity with attributes only is NOT isolated.
  KnowledgeGraph g2;
  const EntityId a = g2.AddEntity("with attr");
  const AttributeId attr = g2.AddAttribute("x");
  g2.AddAttributeTriple(a, attr, "v");
  EXPECT_EQ(ValidateKnowledgeGraph(g2).isolated_entities, 0);
}

TEST(ValidationTest, IssueCapRespected) {
  KnowledgeGraph g;
  for (int i = 0; i < 100; ++i) {
    g.AddEntity("iso" + std::to_string(i));
  }
  ValidationOptions opt;
  opt.max_issues = 10;
  const ValidationReport report = ValidateKnowledgeGraph(g, opt);
  EXPECT_EQ(report.issues.size(), 10u);
  EXPECT_EQ(report.isolated_entities, 100);  // Counters keep counting.
}

TEST(ValidationTest, GeneratedBenchmarksAreStructurallyClean) {
  datagen::GeneratorConfig cfg;
  cfg.num_matched = 200;
  const auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  for (const KnowledgeGraph* g : {&bench.kg1, &bench.kg2}) {
    const ValidationReport report = ValidateKnowledgeGraph(*g);
    EXPECT_EQ(report.self_loops, 0);
    EXPECT_EQ(report.empty_values, 0);
    EXPECT_EQ(report.isolated_entities, 0);
    EXPECT_EQ(report.oversize_values, 0);
  }
}

TEST(ValidationTest, FormatCapsLines) {
  KnowledgeGraph g;
  for (int i = 0; i < 30; ++i) g.AddEntity("iso" + std::to_string(i));
  const ValidationReport report = ValidateKnowledgeGraph(g);
  const std::string text = FormatValidationReport(report, 5);
  EXPECT_NE(text.find("..."), std::string::npos);
}

}  // namespace
}  // namespace sdea::kg
