#include "nn/serialization.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"
#include "nn/layers.h"

namespace sdea::nn {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(SerializationTest, RoundTripRestoresWeights) {
  Rng rng(1);
  Mlp original("m", {4, 8, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(&original, path).ok());

  Rng rng2(999);  // Different init.
  Mlp restored("m", {4, 8, 2}, Activation::kRelu, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());

  auto pa = original.Parameters();
  auto pb = restored.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (int64_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

std::vector<float> Flatten(Module* m) {
  std::vector<float> out;
  for (Parameter* p : m->Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) out.push_back(p->value[i]);
  }
  return out;
}

TEST(SerializationTest, UnknownParameterNameIsInvalidArgument) {
  Rng rng(2);
  Mlp small("m", {4, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_missing.bin");
  ASSERT_TRUE(SaveCheckpoint(&small, path).ok());
  Mlp bigger("m2", {4, 2}, Activation::kRelu, &rng);  // Different names.
  const std::vector<float> before = Flatten(&bigger);
  Status s = LoadCheckpoint(&bigger, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Flatten(&bigger), before);  // Nothing was overwritten.
}

TEST(SerializationTest, ShapeMismatchFails) {
  Rng rng(3);
  Mlp a("m", {4, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, path).ok());
  Mlp b("m", {4, 3}, Activation::kRelu, &rng);  // Same names, new shapes.
  Status s = LoadCheckpoint(&b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, ShapeMismatchLeavesNoPartialLoad) {
  // Two-layer MLP: the first layer's shapes agree between writer and
  // reader, the second layer's do not. A single-pass loader would copy
  // layer 1 before discovering the layer-2 mismatch; the contract is that
  // a failed load modifies NO parameter.
  Rng rng(4);
  Mlp writer("m", {4, 8, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_partial.bin");
  ASSERT_TRUE(SaveCheckpoint(&writer, path).ok());
  Rng rng2(5);
  Mlp reader("m", {4, 8, 3}, Activation::kRelu, &rng2);
  const std::vector<float> before = Flatten(&reader);
  Status s = LoadCheckpoint(&reader, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Flatten(&reader), before);
}

TEST(SerializationTest, BlobRoundTripBitwise) {
  Rng rng(6);
  Mlp a("m", {3, 5}, Activation::kRelu, &rng);
  const std::string blob = SerializeParameters(&a);
  Rng rng2(7);
  Mlp b("m", {3, 5}, Activation::kRelu, &rng2);
  ASSERT_TRUE(DeserializeParameters(&b, blob).ok());
  EXPECT_EQ(Flatten(&a), Flatten(&b));
}

TEST(SerializationTest, WireHelpersRoundTrip) {
  std::string buf;
  AppendU64(&buf, 0xdeadbeefcafef00dULL);
  AppendF64(&buf, -0.0625);
  AppendBytes(&buf, "payload");
  Tensor t({2, 3});
  for (int64_t i = 0; i < t.size(); ++i) t[i] = 0.5f * static_cast<float>(i);
  AppendTensor(&buf, t);

  size_t pos = 0;
  uint64_t u = 0;
  double d = 0.0;
  std::string bytes;
  Tensor back;
  ASSERT_TRUE(ReadU64(buf, &pos, &u));
  ASSERT_TRUE(ReadF64(buf, &pos, &d));
  ASSERT_TRUE(ReadBytes(buf, &pos, &bytes));
  ASSERT_TRUE(ReadTensor(buf, &pos, &back));
  EXPECT_EQ(u, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(d, -0.0625);
  EXPECT_EQ(bytes, "payload");
  ASSERT_EQ(back.shape(), t.shape());
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(back[i], t[i]);
  EXPECT_EQ(pos, buf.size());

  // Truncated reads fail without advancing past the end.
  ASSERT_FALSE(ReadU64(buf, &pos, &u));
  ASSERT_FALSE(ReadTensor(buf, &pos, &back));
}

TEST(SerializationTest, GarbageFileRejected) {
  const std::string path = TempPath("sdea_ckpt_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "not a checkpoint").ok());
  Rng rng(4);
  Mlp m("m", {2, 2}, Activation::kRelu, &rng);
  EXPECT_FALSE(LoadCheckpoint(&m, path).ok());
}

}  // namespace
}  // namespace sdea::nn
