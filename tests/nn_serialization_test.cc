#include "nn/serialization.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/fileio.h"
#include "nn/layers.h"

namespace sdea::nn {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(SerializationTest, RoundTripRestoresWeights) {
  Rng rng(1);
  Mlp original("m", {4, 8, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(&original, path).ok());

  Rng rng2(999);  // Different init.
  Mlp restored("m", {4, 8, 2}, Activation::kRelu, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());

  auto pa = original.Parameters();
  auto pb = restored.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (int64_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(SerializationTest, MissingParameterFails) {
  Rng rng(2);
  Mlp small("m", {4, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_missing.bin");
  ASSERT_TRUE(SaveCheckpoint(&small, path).ok());
  Mlp bigger("m2", {4, 2}, Activation::kRelu, &rng);  // Different names.
  Status s = LoadCheckpoint(&bigger, path);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SerializationTest, ShapeMismatchFails) {
  Rng rng(3);
  Mlp a("m", {4, 2}, Activation::kRelu, &rng);
  const std::string path = TempPath("sdea_ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, path).ok());
  Mlp b("m", {4, 3}, Activation::kRelu, &rng);  // Same names, new shapes.
  Status s = LoadCheckpoint(&b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, GarbageFileRejected) {
  const std::string path = TempPath("sdea_ckpt_garbage.bin");
  ASSERT_TRUE(WriteStringToFile(path, "not a checkpoint").ok());
  Rng rng(4);
  Mlp m("m", {2, 2}, Activation::kRelu, &rng);
  EXPECT_FALSE(LoadCheckpoint(&m, path).ok());
}

}  // namespace
}  // namespace sdea::nn
