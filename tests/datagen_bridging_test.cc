// The cross-lingual substitution machinery: borrowing channel and
// comparable pre-training corpus (DESIGN.md §1). These properties are what
// make the generated cross-lingual benchmarks learnable the same way the
// real ones are.
#include <gtest/gtest.h>

#include "base/strings.h"
#include "datagen/generator.h"
#include "datagen/lexicon.h"
#include "text/normalizer.h"

namespace sdea::datagen {
namespace {

GeneratorConfig XlingConfig(uint64_t seed) {
  GeneratorConfig c;
  c.seed = seed;
  c.num_matched = 200;
  c.kg1_lang_seed = 1;
  c.kg2_lang_seed = 2;
  c.kg2_name_mode = NameMode::kTranslated;
  return c;
}

// Collects the word set of all attribute values of a KG.
std::set<std::string> ValueWords(const kg::KnowledgeGraph& g) {
  std::set<std::string> out;
  for (const auto& t : g.attribute_triples()) {
    for (const auto& w : text::NormalizeAndSplit(t.value)) {
      out.insert(w);
    }
  }
  return out;
}

TEST(BorrowingTest, BorrowProbCreatesSharedVocabulary) {
  GeneratorConfig with = XlingConfig(9);
  with.borrow_prob = 0.3;
  GeneratorConfig without = XlingConfig(9);
  without.borrow_prob = 0.0;

  auto shared_words = [](const GeneratedBenchmark& b) {
    const auto w1 = ValueWords(b.kg1);
    const auto w2 = ValueWords(b.kg2);
    int64_t shared = 0;
    for (const auto& w : w2) {
      if (LooksNumeric(w)) continue;  // Numbers are always shared.
      if (w1.count(w)) ++shared;
    }
    return shared;
  };
  const auto b_with = BenchmarkGenerator().Generate(with);
  const auto b_without = BenchmarkGenerator().Generate(without);
  EXPECT_GT(shared_words(b_with), 4 * std::max<int64_t>(
                                          1, shared_words(b_without)));
}

TEST(BorrowingTest, MonolingualPairsUnaffected) {
  GeneratorConfig c = XlingConfig(10);
  c.kg2_lang_seed = c.kg1_lang_seed;  // Monolingual.
  c.kg2_name_mode = NameMode::kShared;
  c.borrow_prob = 0.5;  // Must be a no-op when languages match.
  const auto b = BenchmarkGenerator().Generate(c);
  // Matched entities' name values coincide exactly.
  auto name1 = b.kg1.FindAttribute("name");
  ASSERT_TRUE(name1.ok());
  int64_t with_name = 0;
  for (const auto& t : b.kg1.attribute_triples()) {
    if (t.attribute == *name1) ++with_name;
  }
  EXPECT_GT(with_name, 100);
}

TEST(ComparableCorpusTest, AdjacentWordsAreTranslations) {
  GeneratorConfig c = XlingConfig(11);
  c.pretrain_sentences = 50;
  const auto b = BenchmarkGenerator().Generate(c);
  // Each even-indexed word in a sentence is the L1 rendering of some
  // index; the following word is the L2 rendering of the SAME index —
  // verify by checking the pair is consistent for repeated occurrences.
  // Surface-form hash collisions make the L1->L2 map slightly
  // non-injective; require consistency for the overwhelming majority.
  std::map<std::string, std::string> translation;
  int64_t consistent = 0, inconsistent = 0;
  for (const auto& sentence : b.pretrain_corpus) {
    const auto words = SplitWhitespace(sentence);
    ASSERT_EQ(words.size() % 2, 0u);
    for (size_t i = 0; i + 1 < words.size(); i += 2) {
      auto it = translation.find(words[i]);
      if (it == translation.end()) {
        translation.emplace(words[i], words[i + 1]);
      } else if (it->second == words[i + 1]) {
        ++consistent;
      } else {
        ++inconsistent;
      }
    }
  }
  EXPECT_GT(translation.size(), 20u);
  EXPECT_GT(consistent, 20 * std::max<int64_t>(1, inconsistent));
}

TEST(ComparableCorpusTest, NoEntityUniqueWordsLeak) {
  // The corpus must not contain entity-unique name words (that would leak
  // alignment supervision into "pre-training").
  GeneratorConfig c = XlingConfig(12);
  c.pretrain_sentences = 200;
  const auto b = BenchmarkGenerator().Generate(c);
  // Unique words render from index kUniqueNameBase + id; spot-check that
  // the second word of each entity name (the unique one) never appears.
  auto name1 = b.kg1.FindAttribute("name");
  ASSERT_TRUE(name1.ok());
  // Short surface forms collide across indices (the lexicon hashes into a
  // small 2-syllable space), so restrict to 4-syllable unique words where
  // accidental collisions are vanishingly rare.
  std::set<std::string> unique_words;
  for (const auto& t : b.kg1.attribute_triples()) {
    if (t.attribute != *name1) continue;
    const auto words = SplitWhitespace(t.value);
    if (words.size() >= 2 && words[1].size() >= 8) {
      unique_words.insert(words[1]);
    }
  }
  ASSERT_GT(unique_words.size(), 20u);
  int64_t leaks = 0;
  for (const auto& sentence : b.pretrain_corpus) {
    for (const auto& w : SplitWhitespace(sentence)) {
      if (unique_words.count(w)) ++leaks;
    }
  }
  EXPECT_LT(leaks, 3);
}

}  // namespace
}  // namespace sdea::datagen
