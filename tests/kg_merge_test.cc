#include "kg/merge.h"

#include <gtest/gtest.h>

namespace sdea::kg {
namespace {

// KB1: ronaldo -playsFor-> madrid; KB2: cr7 -memberOf-> madrid2 plus an
// exclusive entity. Gold: ronaldo == cr7, madrid == madrid2.
struct Pair {
  KnowledgeGraph kg1;
  KnowledgeGraph kg2;
};

Pair MakePair() {
  Pair p;
  const EntityId ronaldo = p.kg1.AddEntity("C._Ronaldo");
  const EntityId madrid = p.kg1.AddEntity("Real_Madrid");
  const RelationId plays = p.kg1.AddRelation("playsFor");
  p.kg1.AddRelationalTriple(ronaldo, plays, madrid);
  const AttributeId name1 = p.kg1.AddAttribute("name");
  p.kg1.AddAttributeTriple(ronaldo, name1, "Cristiano Ronaldo");

  const EntityId cr7 = p.kg2.AddEntity("Cristiano_Ronaldo");
  const EntityId madrid2 = p.kg2.AddEntity("Real_Madrid_CF");
  const EntityId exclusive = p.kg2.AddEntity("Only_In_KB2");
  const RelationId member = p.kg2.AddRelation("memberOf");
  p.kg2.AddRelationalTriple(cr7, member, madrid2);
  p.kg2.AddRelationalTriple(exclusive, member, madrid2);
  const AttributeId born = p.kg2.AddAttribute("birthYear");
  p.kg2.AddAttributeTriple(cr7, born, "1985");
  return p;
}

TEST(MergeTest, FusesMatchedAndCarriesUnmatched) {
  Pair p = MakePair();
  // match[kg1 entity] = kg2 entity: ronaldo->cr7, madrid->madrid2.
  const std::vector<int64_t> match{0, 1};
  MergeReport report;
  auto merged = MergeKnowledgeBases(p.kg1, p.kg2, match, {}, &report);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(report.fused_entities, 2);
  EXPECT_EQ(report.carried_entities, 1);
  // 2 (kg1) + 1 carried = 3 entities, not 5.
  EXPECT_EQ(merged->num_entities(), 3);
  // Fused ronaldo has both name and birthYear.
  const EntityId ronaldo = *merged->FindEntity("C._Ronaldo");
  EXPECT_EQ(merged->attribute_triples_of(ronaldo).size(), 2u);
  // Both relational facts survive (playsFor from KB1, memberOf from KB2).
  EXPECT_EQ(merged->degree(ronaldo), 2);
  // Exclusive entity carried with degree 1.
  const EntityId excl = *merged->FindEntity("Only_In_KB2");
  EXPECT_EQ(merged->degree(excl), 1);
}

TEST(MergeTest, SchemaPrefixOnKg2OnlyNames) {
  Pair p = MakePair();
  auto merged = MergeKnowledgeBases(p.kg1, p.kg2, {0, 1});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->FindRelation("kg2:memberOf").ok());
  EXPECT_TRUE(merged->FindAttribute("kg2:birthYear").ok());
  // KG1 schema untouched.
  EXPECT_TRUE(merged->FindRelation("playsFor").ok());
}

TEST(MergeTest, SharedSchemaNamesReuse) {
  KnowledgeGraph a, b;
  const EntityId x = a.AddEntity("x");
  const EntityId y = b.AddEntity("y");
  const AttributeId name_a = a.AddAttribute("name");
  const AttributeId name_b = b.AddAttribute("name");
  a.AddAttributeTriple(x, name_a, "X");
  b.AddAttributeTriple(y, name_b, "Y");
  auto merged = MergeKnowledgeBases(a, b, {-1});
  ASSERT_TRUE(merged.ok());
  // Same attribute name merges; no kg2: prefix created.
  EXPECT_FALSE(merged->FindAttribute("kg2:name").ok());
  EXPECT_EQ(merged->num_attributes(), 1);
}

TEST(MergeTest, DeduplicatesIdenticalFacts) {
  KnowledgeGraph a, b;
  const EntityId a1 = a.AddEntity("e1");
  const EntityId a2 = a.AddEntity("e2");
  const RelationId r = a.AddRelation("rel");
  a.AddRelationalTriple(a1, r, a2);
  const EntityId b1 = b.AddEntity("e1b");
  const EntityId b2 = b.AddEntity("e2b");
  const RelationId rb = b.AddRelation("rel");  // Same relation name.
  b.AddRelationalTriple(b1, rb, b2);
  MergeReport report;
  auto merged =
      MergeKnowledgeBases(a, b, {0, 1}, MergeOptions{}, &report);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(report.duplicate_relational, 1);
  EXPECT_EQ(merged->relational_triples().size(), 1u);
}

TEST(MergeTest, NameCollisionOnCarriedEntity) {
  KnowledgeGraph a, b;
  a.AddEntity("Paris");
  b.AddEntity("Paris");  // Same name but NOT matched.
  auto merged = MergeKnowledgeBases(a, b, {-1});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_entities(), 2);
  EXPECT_TRUE(merged->FindEntity("kg2:Paris").ok());
}

TEST(MergeTest, RejectsBadMatchVectors) {
  Pair p = MakePair();
  EXPECT_FALSE(MergeKnowledgeBases(p.kg1, p.kg2, {0}).ok());  // Wrong size.
  EXPECT_FALSE(
      MergeKnowledgeBases(p.kg1, p.kg2, {0, 99}).ok());  // Out of range.
  EXPECT_FALSE(
      MergeKnowledgeBases(p.kg1, p.kg2, {0, 0}).ok());  // Duplicate target.
}

TEST(MergeTest, EmptyMatchIsDisjointUnion) {
  Pair p = MakePair();
  MergeReport report;
  auto merged = MergeKnowledgeBases(p.kg1, p.kg2, {-1, -1},
                                    MergeOptions{}, &report);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(report.fused_entities, 0);
  EXPECT_EQ(merged->num_entities(),
            p.kg1.num_entities() + p.kg2.num_entities());
}

}  // namespace
}  // namespace sdea::kg
