// Contract tests for the kernel dispatch layer: exact mode must reproduce
// the PR-1 double-accumulation semantics bitwise, fast mode must stay
// within tolerance of exact mode (scalar and AVX2) while remaining
// deterministic across thread counts, and every ranking site's ScoreDot
// must agree bitwise with the MatmulTransposeB score matrix in BOTH modes.
#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "base/threadpool.h"
#include "tensor/tensor.h"

namespace sdea {
namespace {

using tmath::KernelMode;
using tmath::SimdLevel;

// RAII mode/level pinning so a failing test can't leak configuration into
// the rest of the binary.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode)
      : saved_(tmath::ActiveKernelMode()) {
    tmath::SetKernelMode(mode);
  }
  ~ScopedKernelMode() { tmath::SetKernelMode(saved_); }

 private:
  KernelMode saved_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : saved_(tmath::ActiveSimdLevel()) {
    tmath::SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { tmath::SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

// Largest |a-b| / (|b| + 1) over all elements: relative where values are
// large, absolute near zero.
double MaxRelError(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double diff = std::fabs(static_cast<double>(a[i]) - b[i]);
    const double scale = std::fabs(static_cast<double>(b[i])) + 1.0;
    worst = std::max(worst, diff / scale);
  }
  return worst;
}

// FNV-1a over the raw float bits — the same golden-hash scheme the
// training goldens use. Equal hashes == bitwise-equal tensors.
uint64_t FnvHash(const Tensor& t) {
  uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(t.data());
  for (size_t i = 0; i < static_cast<size_t>(t.size()) * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct MatmulCase {
  Tensor a, b, bt, at;
};

MatmulCase MakeCase(int64_t m, int64_t k, int64_t n, uint64_t seed) {
  Rng rng(seed);
  MatmulCase c;
  c.a = Tensor::RandomNormal({m, k}, 1.0f, &rng);
  c.b = Tensor::RandomNormal({k, n}, 1.0f, &rng);
  c.bt = tmath::Transpose(c.b);  // [n, k] for MatmulTransposeB.
  c.at = tmath::Transpose(c.a);  // [k, m] for MatmulTransposeA.
  return c;
}

// The exact contract, restated independently in the test: per-element
// double accumulation, ascending k, rounded once. Exact mode must match
// this bitwise forever — it IS the serial==parallel golden path.
Tensor ReferenceMatmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

TEST(KernelsTest, ExactModeMatchesReferenceBitwise) {
  ScopedKernelMode mode(KernelMode::kExact);
  const MatmulCase c = MakeCase(23, 37, 19, 5);
  const Tensor want = ReferenceMatmul(c.a, c.b);
  ExpectBitwiseEqual(tmath::Matmul(c.a, c.b), want);
  ExpectBitwiseEqual(tmath::MatmulTransposeB(c.a, c.bt), want);
  ExpectBitwiseEqual(tmath::MatmulTransposeA(c.at, c.b), want);
}

TEST(KernelsTest, FastModeWithinToleranceOfExact) {
  const MatmulCase c = MakeCase(31, 512, 17, 6);
  Tensor exact, exact_tb, exact_ta;
  {
    ScopedKernelMode mode(KernelMode::kExact);
    exact = tmath::Matmul(c.a, c.b);
    exact_tb = tmath::MatmulTransposeB(c.a, c.bt);
    exact_ta = tmath::MatmulTransposeA(c.at, c.b);
  }
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 && !tmath::Avx2Supported()) continue;
    ScopedKernelMode mode(KernelMode::kFast);
    ScopedSimdLevel simd(level);
    // Float accumulation over k=512 terms: worst-case ~k*eps relative,
    // in practice far below this bound for N(0,1) data.
    const double kTol = 1e-4;
    EXPECT_LT(MaxRelError(tmath::Matmul(c.a, c.b), exact), kTol)
        << tmath::SimdLevelName(level);
    EXPECT_LT(MaxRelError(tmath::MatmulTransposeB(c.a, c.bt), exact_tb), kTol)
        << tmath::SimdLevelName(level);
    EXPECT_LT(MaxRelError(tmath::MatmulTransposeA(c.at, c.b), exact_ta), kTol)
        << tmath::SimdLevelName(level);
  }
}

TEST(KernelsTest, FastModeGoldenHashStableAcrossRunsAndThreads) {
  // Fast mode gives up cross-mode bitwise equality, NOT determinism: for a
  // fixed SimdLevel the golden hash must be identical run-to-run and for
  // every thread count.
  const MatmulCase c = MakeCase(65, 128, 43, 7);
  ScopedKernelMode mode(KernelMode::kFast);
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 && !tmath::Avx2Supported()) continue;
    ScopedSimdLevel simd(level);
    base::ThreadPool::SetGlobalNumThreads(1);
    const uint64_t serial = FnvHash(tmath::Matmul(c.a, c.b));
    const uint64_t serial_tb = FnvHash(tmath::MatmulTransposeB(c.a, c.bt));
    base::ThreadPool::SetGlobalNumThreads(8);
    const uint64_t parallel = FnvHash(tmath::Matmul(c.a, c.b));
    const uint64_t parallel_tb = FnvHash(tmath::MatmulTransposeB(c.a, c.bt));
    base::ThreadPool::SetGlobalNumThreads(
        base::ThreadPool::DefaultNumThreads());
    EXPECT_EQ(serial, parallel) << tmath::SimdLevelName(level);
    EXPECT_EQ(serial_tb, parallel_tb) << tmath::SimdLevelName(level);
    // And rerunning reproduces the same bits.
    EXPECT_EQ(serial, FnvHash(tmath::Matmul(c.a, c.b)));
  }
}

TEST(KernelsTest, GemvMatchesPerRowDots) {
  Rng rng(11);
  const int64_t m = 53, d = 512;
  const Tensor rows = Tensor::RandomNormal({m, d}, 1.0f, &rng);
  const Tensor x = Tensor::RandomNormal({d}, 1.0f, &rng);
  std::vector<float> y(static_cast<size_t>(m));
  tmath::kernels::GemvExact(rows.data(), m, d, x.data(), y.data());
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(y[static_cast<size_t>(i)],
              static_cast<float>(
                  tmath::kernels::DotExact(rows.data() + i * d, x.data(), d)));
  }
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 && !tmath::Avx2Supported()) continue;
    ScopedSimdLevel simd(level);
    std::vector<float> yf(static_cast<size_t>(m));
    tmath::kernels::GemvFast(rows.data(), m, d, x.data(), yf.data());
    for (int64_t i = 0; i < m; ++i) {
      EXPECT_NEAR(yf[static_cast<size_t>(i)], y[static_cast<size_t>(i)],
                  1e-3)
          << tmath::SimdLevelName(level);
    }
  }
}

TEST(KernelsTest, ScoreDotAgreesWithScoreMatrixInBothModes) {
  // The cross-site ranking contract: a candidate scored one-at-a-time via
  // ScoreDot must get the exact bits the MatmulTransposeB score matrix
  // holds, in exact AND fast mode — otherwise candidate generation and the
  // pipeline can rank near-ties differently.
  Rng rng(13);
  const int64_t n = 9, m = 21, d = 100;  // d not a multiple of 8 or 32.
  const Tensor src = Tensor::RandomNormal({n, d}, 1.0f, &rng);
  const Tensor tgt = Tensor::RandomNormal({m, d}, 1.0f, &rng);
  for (const KernelMode mode : {KernelMode::kExact, KernelMode::kFast}) {
    ScopedKernelMode scoped(mode);
    const Tensor scores = tmath::MatmulTransposeB(src, tgt);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        const float one = tmath::kernels::ScoreDot(src.data() + i * d,
                                                   tgt.data() + j * d, d);
        EXPECT_EQ(one, scores[i * m + j])
            << tmath::KernelModeName(mode) << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(KernelsTest, NanAndInfPropagateInBothModes) {
  // The no-term-skipped rule: a NaN/Inf anywhere in the operands reaches
  // the output in every mode and at every SIMD level.
  Tensor a({2, 40}, 1.0f);
  Tensor b({3, 40}, 0.5f);
  a[7] = std::numeric_limits<float>::quiet_NaN();
  b[40 + 3] = std::numeric_limits<float>::infinity();
  for (const KernelMode mode : {KernelMode::kExact, KernelMode::kFast}) {
    ScopedKernelMode scoped(mode);
    const Tensor c = tmath::MatmulTransposeB(a, b);
    EXPECT_TRUE(std::isnan(c[0 * 3 + 0])) << tmath::KernelModeName(mode);
    EXPECT_TRUE(std::isnan(c[0 * 3 + 1])) << tmath::KernelModeName(mode);
    EXPECT_TRUE(std::isinf(c[1 * 3 + 1])) << tmath::KernelModeName(mode);
  }
}

TEST(KernelsTest, DispatchReportsAndPinsLevels) {
  EXPECT_STREQ(tmath::SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(tmath::SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(tmath::KernelModeName(KernelMode::kExact), "exact");
  EXPECT_STREQ(tmath::KernelModeName(KernelMode::kFast), "fast");
  // Scalar can always be pinned, whatever the hardware.
  ScopedSimdLevel simd(SimdLevel::kScalar);
  EXPECT_EQ(tmath::ActiveSimdLevel(), SimdLevel::kScalar);
  if (tmath::Avx2Supported()) {
    tmath::SetSimdLevel(SimdLevel::kAvx2);
    EXPECT_EQ(tmath::ActiveSimdLevel(), SimdLevel::kAvx2);
  }
  // Supported() implies CompiledIn().
  EXPECT_TRUE(!tmath::Avx2Supported() || tmath::Avx2CompiledIn());
}

}  // namespace
}  // namespace sdea
