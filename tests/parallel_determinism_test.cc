// Parallel results must be bitwise-identical to serial: every parallelized
// kernel shards disjoint output rows and keeps per-row accumulation order
// unchanged, so this file asserts exact equality (including float bit
// patterns) between 1-thread and 8-thread runs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/threadpool.h"
#include "core/ann_index.h"
#include "core/stable_matching.h"
#include "eval/metrics.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace sdea {
namespace {

// Runs `fn` with the global pool at `num_threads`, restoring the default
// pool afterwards so other tests see the ambient configuration.
template <typename Fn>
auto RunWithThreads(int num_threads, Fn&& fn) {
  base::ThreadPool::SetGlobalNumThreads(num_threads);
  auto result = fn();
  base::ThreadPool::SetGlobalNumThreads(base::ThreadPool::DefaultNumThreads());
  return result;
}

// Bitwise tensor equality (NaN-safe, unlike operator== on floats).
void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

TEST(ParallelDeterminismTest, MatmulMatchesSerialBitwise) {
  Rng rng(11);
  const Tensor a = Tensor::RandomNormal({67, 41}, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal({41, 53}, 1.0f, &rng);
  const Tensor serial = RunWithThreads(1, [&] { return tmath::Matmul(a, b); });
  const Tensor parallel =
      RunWithThreads(8, [&] { return tmath::Matmul(a, b); });
  ExpectBitwiseEqual(serial, parallel);
}

TEST(ParallelDeterminismTest, MatmulTransposeBMatchesSerialBitwise) {
  Rng rng(12);
  const Tensor a = Tensor::RandomNormal({67, 41}, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal({53, 41}, 1.0f, &rng);
  const Tensor serial =
      RunWithThreads(1, [&] { return tmath::MatmulTransposeB(a, b); });
  const Tensor parallel =
      RunWithThreads(8, [&] { return tmath::MatmulTransposeB(a, b); });
  ExpectBitwiseEqual(serial, parallel);
}

TEST(ParallelDeterminismTest, MatmulTransposeAMatchesSerialBitwise) {
  Rng rng(13);
  const Tensor a = Tensor::RandomNormal({41, 67}, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal({41, 53}, 1.0f, &rng);
  const Tensor serial =
      RunWithThreads(1, [&] { return tmath::MatmulTransposeA(a, b); });
  const Tensor parallel =
      RunWithThreads(8, [&] { return tmath::MatmulTransposeA(a, b); });
  ExpectBitwiseEqual(serial, parallel);
}

TEST(ParallelDeterminismTest, SoftmaxRowsMatchesSerialBitwise) {
  Rng rng(14);
  const Tensor a = Tensor::RandomNormal({200, 37}, 3.0f, &rng);
  const Tensor serial =
      RunWithThreads(1, [&] { return tmath::SoftmaxRows(a); });
  const Tensor parallel =
      RunWithThreads(8, [&] { return tmath::SoftmaxRows(a); });
  ExpectBitwiseEqual(serial, parallel);
}

TEST(ParallelDeterminismTest, MatmulVariantsAgreeUnderSharedPolicy) {
  // The unified accumulation policy (double, ascending k, no skipping)
  // makes the three variants bitwise-consistent on transposed views. This
  // is an EXACT-mode property: fast mode trades it for speed (each variant
  // has its own float reduction tree), keeping only per-variant
  // determinism — which KernelsTest pins separately.
  Rng rng(15);
  const Tensor a = Tensor::RandomNormal({31, 23}, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal({23, 29}, 1.0f, &rng);
  const Tensor c = tmath::Matmul(a, b);
  const Tensor tb = tmath::MatmulTransposeB(a, tmath::Transpose(b));
  const Tensor ta = tmath::MatmulTransposeA(tmath::Transpose(a), b);
  if (tmath::ActiveKernelMode() == tmath::KernelMode::kExact) {
    ExpectBitwiseEqual(c, tb);
    ExpectBitwiseEqual(c, ta);
  } else {
    ASSERT_EQ(c.shape(), tb.shape());
    ASSERT_EQ(c.shape(), ta.shape());
    for (int64_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(c[i], tb[i], 1e-4f);
      EXPECT_NEAR(c[i], ta[i], 1e-4f);
    }
  }
}

TEST(ParallelDeterminismTest, EvaluateAlignmentMatchesSerialExactly) {
  Rng rng(16);
  const Tensor src = Tensor::RandomNormal({120, 16}, 1.0f, &rng);
  const Tensor tgt = Tensor::RandomNormal({150, 16}, 1.0f, &rng);
  std::vector<int64_t> gold(120);
  for (size_t i = 0; i < gold.size(); ++i) {
    gold[i] = (i % 7 == 0) ? -1 : static_cast<int64_t>(rng.UniformInt(150));
  }
  const auto serial =
      RunWithThreads(1, [&] { return eval::EvaluateAlignment(src, tgt, gold); });
  const auto parallel =
      RunWithThreads(8, [&] { return eval::EvaluateAlignment(src, tgt, gold); });
  EXPECT_EQ(serial.num_queries, parallel.num_queries);
  EXPECT_EQ(serial.hits_at_1, parallel.hits_at_1);
  EXPECT_EQ(serial.hits_at_10, parallel.hits_at_10);
  EXPECT_EQ(serial.mrr, parallel.mrr);  // Exact double equality.
}

TEST(ParallelDeterminismTest, GoldRanksMatchSerialExactly) {
  Rng rng(17);
  const Tensor src = Tensor::RandomNormal({90, 12}, 1.0f, &rng);
  const Tensor tgt = Tensor::RandomNormal({110, 12}, 1.0f, &rng);
  std::vector<int64_t> gold(90);
  for (size_t i = 0; i < gold.size(); ++i) {
    gold[i] = static_cast<int64_t>(rng.UniformInt(110));
  }
  const auto serial =
      RunWithThreads(1, [&] { return eval::GoldRanks(src, tgt, gold); });
  const auto parallel =
      RunWithThreads(8, [&] { return eval::GoldRanks(src, tgt, gold); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, StableMatchEmbeddingsMatchesSerialExactly) {
  Rng rng(18);
  const Tensor src = Tensor::RandomNormal({80, 16}, 1.0f, &rng);
  const Tensor tgt = Tensor::RandomNormal({70, 16}, 1.0f, &rng);
  const auto serial = RunWithThreads(
      1, [&] { return core::StableMatchEmbeddings(src, tgt); });
  const auto parallel = RunWithThreads(
      8, [&] { return core::StableMatchEmbeddings(src, tgt); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, IvfIndexQueryMatchesSerialExactly) {
  Rng rng(19);
  const Tensor tgt = Tensor::RandomNormal({300, 16}, 1.0f, &rng);
  const Tensor src = Tensor::RandomNormal({40, 16}, 1.0f, &rng);
  core::IvfOptions opt;
  opt.num_probes = 4;
  // Build + batched query under each thread count: covers the parallel
  // k-means assignment, the final assignment pass, and QueryBatch.
  const auto serial = RunWithThreads(1, [&] {
    const core::IvfIndex index(tgt, opt);
    return index.QueryBatch(src, 10);
  });
  const auto parallel = RunWithThreads(8, [&] {
    const core::IvfIndex index(tgt, opt);
    return index.QueryBatch(src, 10);
  });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace sdea
