#include "core/stable_matching.h"

#include <gtest/gtest.h>

#include <set>

namespace sdea::core {
namespace {

TEST(StableMatchTest, TrivialDiagonal) {
  Tensor scores({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  const auto m = StableMatch(scores);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 1);
}

TEST(StableMatchTest, ResolvesContention) {
  // Both sources prefer target 0; the higher scorer wins it.
  Tensor scores({2, 2}, {0.9f, 0.2f, 0.8f, 0.3f});
  const auto m = StableMatch(scores);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 1);
}

TEST(StableMatchTest, MatchingIsOneToOne) {
  Rng rng(5);
  Tensor scores = Tensor::RandomNormal({10, 10}, 1.0f, &rng);
  const auto m = StableMatch(scores);
  std::set<int64_t> used;
  for (int64_t t : m) {
    ASSERT_GE(t, 0);
    EXPECT_TRUE(used.insert(t).second);
  }
  EXPECT_EQ(used.size(), 10u);
}

TEST(StableMatchTest, NoBlockingPair) {
  Rng rng(7);
  Tensor scores = Tensor::RandomNormal({8, 8}, 1.0f, &rng);
  const auto m = StableMatch(scores);
  // Stability: no (s, t) prefer each other over their assignments.
  const int64_t n = 8;
  std::vector<int64_t> holder(static_cast<size_t>(n), -1);
  for (int64_t s = 0; s < n; ++s) holder[static_cast<size_t>(m[s])] = s;
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t t = 0; t < n; ++t) {
      if (t == m[static_cast<size_t>(s)]) continue;
      const bool s_prefers_t =
          scores[s * n + t] > scores[s * n + m[static_cast<size_t>(s)]];
      const int64_t cur = holder[static_cast<size_t>(t)];
      const bool t_prefers_s = scores[s * n + t] > scores[cur * n + t];
      EXPECT_FALSE(s_prefers_t && t_prefers_s)
          << "blocking pair (" << s << ", " << t << ")";
    }
  }
}

TEST(StableMatchTest, MoreSourcesThanTargetsLeavesUnmatched) {
  Tensor scores({3, 2}, {0.9f, 0.1f, 0.8f, 0.2f, 0.7f, 0.3f});
  const auto m = StableMatch(scores);
  int64_t unmatched = 0;
  for (int64_t t : m) {
    if (t < 0) ++unmatched;
  }
  EXPECT_EQ(unmatched, 1);
}

TEST(StableMatchTest, EmbeddingsHelper) {
  Tensor src({2, 2}, {1, 0, 0, 1});
  Tensor tgt({2, 2}, {0, 2, 3, 0});
  const auto m = StableMatchEmbeddings(src, tgt);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
}

TEST(MatchingAccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(MatchingAccuracy({0, 1, 2}, {0, 1, 2}), 100.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({0, 2, 1}, {0, 1, 2}), 100.0 / 3.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({0, 1}, {0, -1}), 100.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({}, {}), 0.0);
}

TEST(StableMatchTest, BoostsHits1OverGreedyRanking) {
  // Classic case where greedy argmax double-books a target but stable
  // matching recovers both: the paper's Section V-B1 observation.
  Tensor scores({2, 2}, {0.9f, 0.85f, 0.95f, 0.1f});
  // Greedy: both sources pick target 0 -> source 0 wrong.
  const auto m = StableMatch(scores);
  EXPECT_EQ(m[1], 0);
  EXPECT_EQ(m[0], 1);
  EXPECT_DOUBLE_EQ(MatchingAccuracy(m, {1, 0}), 100.0);
}

}  // namespace
}  // namespace sdea::core
