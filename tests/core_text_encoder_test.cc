#include "core/text_alignment_encoder.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace sdea::core {
namespace {

// A tiny shared-vocabulary alignment problem: entity i on both sides is
// described by overlapping words; the encoder must align them from a few
// seed pairs.
struct TinyProblem {
  std::vector<std::string> texts1;
  std::vector<std::string> texts2;
  kg::AlignmentSeeds seeds;
};

TinyProblem MakeProblem() {
  TinyProblem p;
  const std::vector<std::string> topics = {
      "red apple fruit", "blue whale ocean", "green forest tree",
      "yellow sun sky",  "black cat animal", "white snow winter",
      "fast car road",   "slow turtle pond", "tall tower city",
      "deep cave rock"};
  for (size_t i = 0; i < topics.size(); ++i) {
    p.texts1.push_back(topics[i] + " alpha");
    p.texts2.push_back(topics[i] + " beta");
  }
  std::vector<std::pair<kg::EntityId, kg::EntityId>> pairs;
  for (size_t i = 0; i < topics.size(); ++i) {
    pairs.emplace_back(static_cast<kg::EntityId>(i),
                       static_cast<kg::EntityId>(i));
  }
  // 6 train / 2 valid / 2 test.
  p.seeds.train.assign(pairs.begin(), pairs.begin() + 6);
  p.seeds.valid.assign(pairs.begin() + 6, pairs.begin() + 8);
  p.seeds.test.assign(pairs.begin() + 8, pairs.end());
  return p;
}

TextEncoderConfig TinyConfig() {
  TextEncoderConfig c;
  c.encoder.dim = 16;
  c.encoder.num_heads = 2;
  c.encoder.num_layers = 1;
  c.encoder.ff_dim = 32;
  c.encoder.max_len = 12;
  c.out_dim = 8;
  c.max_epochs = 6;
  c.patience = 6;
  c.ssl_epochs = 1;
  c.pretrain.epochs = 4;
  return c;
}

TEST(TextEncoderTest, InitRejectsEmpty) {
  TextAlignmentEncoder e;
  EXPECT_FALSE(e.Init({}, {"x"}, TinyConfig()).ok());
  EXPECT_FALSE(e.Init({"x"}, {}, TinyConfig()).ok());
}

TEST(TextEncoderTest, DoubleInitRejected) {
  TinyProblem p = MakeProblem();
  TextAlignmentEncoder e;
  ASSERT_TRUE(e.Init(p.texts1, p.texts2, TinyConfig()).ok());
  EXPECT_EQ(e.Init(p.texts1, p.texts2, TinyConfig()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TextEncoderTest, TokenIdsStartWithCls) {
  TinyProblem p = MakeProblem();
  TextAlignmentEncoder e;
  ASSERT_TRUE(e.Init(p.texts1, p.texts2, TinyConfig()).ok());
  EXPECT_EQ(e.num_entities(1), 10);
  EXPECT_EQ(e.num_entities(2), 10);
  for (int side = 1; side <= 2; ++side) {
    for (kg::EntityId i = 0; i < 10; ++i) {
      const auto& ids = e.token_ids(side, i);
      ASSERT_FALSE(ids.empty());
      EXPECT_EQ(ids[0], text::kClsId);
      EXPECT_LE(static_cast<int64_t>(ids.size()), 12);
    }
  }
}

TEST(TextEncoderTest, EmbeddingsAreUnitNorm) {
  TinyProblem p = MakeProblem();
  TextAlignmentEncoder e;
  ASSERT_TRUE(e.Init(p.texts1, p.texts2, TinyConfig()).ok());
  const Tensor emb = e.ComputeAllEmbeddings(1);
  EXPECT_EQ(emb.shape(), (std::vector<int64_t>{10, 8}));
  for (int64_t i = 0; i < emb.dim(0); ++i) {
    EXPECT_NEAR(emb.Row(i).Norm(), 1.0f, 1e-4f);
  }
}

TEST(TextEncoderTest, PretrainRequiresInitAndSeeds) {
  TextAlignmentEncoder e;
  kg::AlignmentSeeds empty;
  EXPECT_EQ(e.Pretrain(empty).status().code(),
            StatusCode::kFailedPrecondition);
  TinyProblem p = MakeProblem();
  ASSERT_TRUE(e.Init(p.texts1, p.texts2, TinyConfig()).ok());
  EXPECT_EQ(e.Pretrain(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TextEncoderTest, TrainingImprovesAlignment) {
  TinyProblem p = MakeProblem();
  TextAlignmentEncoder e;
  ASSERT_TRUE(e.Init(p.texts1, p.texts2, TinyConfig()).ok());

  auto hits1_on_train = [&]() {
    const Tensor e1 = e.ComputeAllEmbeddings(1);
    const Tensor e2 = e.ComputeAllEmbeddings(2);
    Tensor src({static_cast<int64_t>(p.seeds.train.size()), e1.dim(1)});
    std::vector<int64_t> gold;
    for (size_t i = 0; i < p.seeds.train.size(); ++i) {
      src.SetRow(static_cast<int64_t>(i), e1.Row(p.seeds.train[i].first));
      gold.push_back(p.seeds.train[i].second);
    }
    return eval::EvaluateAlignment(src, e2, gold).hits_at_1;
  };

  auto report = e.Pretrain(p.seeds);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->epochs_run, 0);
  EXPECT_EQ(report->valid_hits1_history.size(),
            static_cast<size_t>(report->epochs_run));
  // With shared topic words the train pairs must align well after tuning.
  EXPECT_GE(hits1_on_train(), 50.0);
}

TEST(TextEncoderTest, ExtraCorpusExtendsVocabulary) {
  TinyProblem p = MakeProblem();
  TextAlignmentEncoder with, without;
  ASSERT_TRUE(without.Init(p.texts1, p.texts2, TinyConfig()).ok());
  ASSERT_TRUE(with.Init(p.texts1, p.texts2, TinyConfig(),
                        {"zebra quagga zebra quagga zebra quagga"})
                  .ok());
  EXPECT_GT(with.tokenizer().vocab().size(),
            without.tokenizer().vocab().size());
}

}  // namespace
}  // namespace sdea::core
