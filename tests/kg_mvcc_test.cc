// Concurrent reader/writer torture for the columnar MVCC store: one writer
// appends formula-generated triples and publishes commits while reader
// threads pin snapshots and verify every visible row against the formula.
// A snapshot must always be an exact watermark-prefix of the committed
// stream — no torn rows, no missing rows, no rows from the future. Runs
// under TSan in CI (label: kg); everything is seeded and deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "kg/columnar.h"
#include "kg/knowledge_graph.h"

namespace sdea::kg {
namespace {

constexpr int64_t kEntities = 64;
constexpr int64_t kRelations = 8;

// The writer appends exactly these triples, in this order; readers can
// recompute any row from its index alone.
EntityId HeadAt(int64_t row) {
  return static_cast<EntityId>((row * 7 + 3) % kEntities);
}
RelationId RelAt(int64_t row) {
  return static_cast<RelationId>((row * 5 + 1) % kRelations);
}
EntityId TailAt(int64_t row) {
  return static_cast<EntityId>((row * 11 + 5) % kEntities);
}
std::string ValueAt(int64_t row) {
  // Only 7 distinct values: most sealed chunks dictionary-encode, so the
  // dict path runs under concurrency too.
  return "v" + std::to_string(row % 7);
}

/// Verifies `snap` is the watermark-prefix of the formula stream:
/// every visible relational and attribute row matches its formula and the
/// visit count equals the watermark.
void CheckSnapshotConsistent(const KgSnapshot& snap) {
  int64_t rel_seen = 0;
  snap.ForEachRelational(
      [&](int64_t row, EntityId h, RelationId r, EntityId t) {
        ASSERT_EQ(row, rel_seen);
        ASSERT_EQ(h, HeadAt(row)) << "row " << row;
        ASSERT_EQ(r, RelAt(row)) << "row " << row;
        ASSERT_EQ(t, TailAt(row)) << "row " << row;
        ++rel_seen;
      });
  ASSERT_EQ(rel_seen, snap.num_relational_triples());

  int64_t attr_seen = 0;
  snap.ForEachAttribute(
      [&](int64_t row, EntityId e, AttributeId a, const std::string& value) {
        ASSERT_EQ(row, attr_seen);
        ASSERT_EQ(e, HeadAt(row)) << "row " << row;
        ASSERT_EQ(a, static_cast<AttributeId>(0));
        ASSERT_EQ(value, ValueAt(row)) << "row " << row;
        ++attr_seen;
      });
  ASSERT_EQ(attr_seen, snap.num_attribute_triples());
}

/// Cross-checks NeighborsOf against a direct scan of the same snapshot —
/// both the sealed (index merge) and open (linear) chunk paths must agree
/// with insertion order regardless of where the watermark cuts.
void CheckNeighborsConsistent(const KgSnapshot& snap, EntityId e) {
  std::vector<NeighborEdge> expected;
  snap.ForEachRelational(
      [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
        if (h == e) expected.push_back(NeighborEdge{r, t, true});
        if (t == e) expected.push_back(NeighborEdge{r, h, false});
      });
  ASSERT_EQ(snap.NeighborsOf(e), expected);
  ASSERT_EQ(snap.DegreeOf(e), static_cast<int64_t>(expected.size()));
}

TEST(KgMvccTest, StoreLevelReadersSeeConsistentPrefixes) {
  // Small chunks: the run crosses hundreds of seal boundaries.
  ColumnarOptions opts;
  opts.rel_chunk_rows = 32;
  opts.attr_chunk_rows = 16;
  opts.name_chunk_rows = 8;
  ColumnarKgStore store(opts);
  for (int64_t i = 0; i < kEntities; ++i) {
    store.AppendEntityName("e" + std::to_string(i));
  }
  for (int64_t i = 0; i < kRelations; ++i) {
    store.AppendRelationName("r" + std::to_string(i));
  }
  store.AppendAttributeName("a");
  store.Commit();

  constexpr int64_t kRows = 6000;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&store, &done, t] {
      uint64_t last_epoch = 0;
      int64_t last_rel = 0, last_attr = 0;
      int64_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 10) {
        const KgSnapshot snap = store.Snapshot();
        // Epochs and watermarks are monotone per reader.
        ASSERT_GE(snap.epoch(), last_epoch);
        ASSERT_GE(snap.num_relational_triples(), last_rel);
        ASSERT_GE(snap.num_attribute_triples(), last_attr);
        last_epoch = snap.epoch();
        last_rel = snap.num_relational_triples();
        last_attr = snap.num_attribute_triples();
        CheckSnapshotConsistent(snap);
        CheckNeighborsConsistent(
            snap, static_cast<EntityId>((iterations + t) % kEntities));
        ++iterations;
      }
    });
  }

  // Writer: uneven commit cadence so watermarks cut chunks at many
  // different offsets (including mid-chunk and exactly-at-seal).
  for (int64_t row = 0; row < kRows; ++row) {
    store.AppendRelational(HeadAt(row), RelAt(row), TailAt(row));
    store.AppendAttribute(HeadAt(row), 0, ValueAt(row));
    if (row % 7 == 0 || row % 13 == 0) store.Commit();
  }
  store.Commit();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const KgSnapshot final_snap = store.Snapshot();
  EXPECT_EQ(final_snap.num_relational_triples(), kRows);
  EXPECT_EQ(final_snap.num_attribute_triples(), kRows);
  CheckSnapshotConsistent(final_snap);
}

TEST(KgMvccTest, FacadeAutoCommitReadersNeverSeeTornState) {
  ColumnarOptions opts;
  opts.rel_chunk_rows = 16;
  opts.attr_chunk_rows = 8;
  KnowledgeGraph g(opts);
  g.BeginBulkLoad();
  for (int64_t i = 0; i < kEntities; ++i) g.AddEntity("e" + std::to_string(i));
  for (int64_t i = 0; i < kRelations; ++i) {
    g.AddRelation("r" + std::to_string(i));
  }
  g.AddAttribute("a");
  g.EndBulkLoad();

  constexpr int64_t kRows = 3000;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&g, &done] {
      uint64_t last_epoch = 0;
      int64_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 10) {
        const KgSnapshot snap = g.Snapshot();
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        CheckSnapshotConsistent(snap);
        ++iterations;
      }
    });
  }

  // Every facade Add publishes its own commit; readers may pin between any
  // two of them.
  for (int64_t row = 0; row < kRows; ++row) {
    g.AddRelationalTriple(HeadAt(row), RelAt(row), TailAt(row));
    g.AddAttributeTriple(HeadAt(row), 0, ValueAt(row));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  CheckSnapshotConsistent(g.Snapshot());
  EXPECT_EQ(g.Snapshot().num_relational_triples(), kRows);
}

TEST(KgMvccTest, PinnedEpochsNestUnderConcurrentWrites) {
  // Pins taken at different times form a chain of prefixes: any earlier
  // pin's rows are a prefix of any later pin's rows.
  ColumnarOptions opts;
  opts.rel_chunk_rows = 8;
  ColumnarKgStore store(opts);
  for (int64_t i = 0; i < kEntities; ++i) {
    store.AppendEntityName("e" + std::to_string(i));
  }
  store.AppendRelationName("r");
  store.Commit();

  std::vector<KgSnapshot> pins;
  std::atomic<bool> done{false};
  std::thread collector([&store, &pins, &done] {
    while (!done.load(std::memory_order_acquire)) {
      pins.push_back(store.Snapshot());
      if (pins.size() > 500) break;
    }
  });
  for (int64_t row = 0; row < 2000; ++row) {
    store.AppendRelational(HeadAt(row), 0, TailAt(row));
    if (row % 3 == 0) store.Commit();
  }
  store.Commit();
  done.store(true, std::memory_order_release);
  collector.join();

  uint64_t last_epoch = 0;
  int64_t last_rows = 0;
  for (const KgSnapshot& snap : pins) {
    ASSERT_GE(snap.epoch(), last_epoch);
    ASSERT_GE(snap.num_relational_triples(), last_rows);
    last_epoch = snap.epoch();
    last_rows = snap.num_relational_triples();
    // Spot-check the last visible row — prefix property means it must
    // match the formula stream.
    if (snap.num_relational_triples() > 0) {
      const int64_t row = snap.num_relational_triples() - 1;
      const RelationalTriple t = snap.RelationalAt(row);
      ASSERT_EQ(t.head, HeadAt(row));
      ASSERT_EQ(t.tail, TailAt(row));
    }
  }
}

}  // namespace
}  // namespace sdea::kg
