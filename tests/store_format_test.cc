// SDEASTOR1 wire format: shard images (page-aligned regions, the name
// index), the manifest, and the cross-checks that keep a mismatched pair
// from being served.
#include "store/format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "store/quantizer.h"
#include "tensor/tensor.h"

namespace sdea::store {
namespace {

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Tensor t({n, d});
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  tmath::L2NormalizeRowsInPlace(&t);
  return t;
}

std::vector<std::string> Names(int64_t n) {
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  return names;
}

TEST(StoreFormatTest, ShardRoundTripsWithAlignedRegions) {
  const int64_t n = 37, d = 16;
  const Tensor rows = RandomRows(n, d, 1);
  const Codebook cb = Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  const std::vector<std::string> names = Names(n);
  const std::string blob =
      EncodeShard(cb, codes.data(), rows.data(), n, names, 0);

  auto header = DecodeShardBlob(blob);
  ASSERT_TRUE(header.ok()) << header.status().message();
  EXPECT_EQ(header->rows, n);
  EXPECT_EQ(header->dim, d);
  EXPECT_EQ(header->code_bytes_per_row, d);
  // Page alignment is the mmap contract: codes and fp32 regions start on
  // 4096 boundaries so a scan touches no unrelated pages.
  EXPECT_EQ(header->codes_offset % kShardPageBytes, 0u);
  EXPECT_EQ(header->fp32_offset % kShardPageBytes, 0u);
  EXPECT_NE(header->fp32_offset, 0u);
  EXPECT_EQ(header->file_bytes, blob.size());

  // Regions round-trip byte-for-byte.
  EXPECT_EQ(std::memcmp(blob.data() + header->codes_offset, codes.data(),
                        codes.size()),
            0);
  EXPECT_EQ(std::memcmp(blob.data() + header->fp32_offset, rows.data(),
                        static_cast<size_t>(n * d) * sizeof(float)),
            0);
}

TEST(StoreFormatTest, ShardWithoutFullPrecisionOmitsTheRegion) {
  const int64_t n = 5, d = 8;
  const Tensor rows = RandomRows(n, d, 2);
  const Codebook cb = Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  const std::string blob =
      EncodeShard(cb, codes.data(), nullptr, n, Names(n), 0);
  auto header = DecodeShardBlob(blob);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->fp32_offset, 0u);
}

TEST(StoreFormatTest, ShardDecodeRejectsCorruption) {
  const int64_t n = 9, d = 8;
  const Tensor rows = RandomRows(n, d, 3);
  const Codebook cb = Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  const std::string blob =
      EncodeShard(cb, codes.data(), rows.data(), n, Names(n), 0);

  // Truncation, growth, magic damage, and a rows field pointing the name
  // index out of bounds — all InvalidArgument, never a crash.
  EXPECT_FALSE(DecodeShardBlob(blob.substr(0, blob.size() - 1)).ok());
  EXPECT_FALSE(DecodeShardBlob(blob + "x").ok());
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeShardBlob(bad_magic).ok());
  std::string huge_rows = blob;
  const uint64_t big = ~0ull;
  std::memcpy(huge_rows.data() + 8, &big, 8);
  EXPECT_FALSE(DecodeShardBlob(huge_rows).ok());
}

TEST(StoreFormatTest, ManifestRoundTrips) {
  const Tensor rows = RandomRows(20, 8, 4);
  Manifest manifest;
  manifest.dim = 8;
  manifest.total_rows = 20;
  manifest.quantization = Quantization::kInt8;
  manifest.store_full_precision = true;
  manifest.codebook = Codebook::TrainInt8(rows);
  manifest.shards = {ShardInfo{12, 8192}, ShardInfo{8, 8192}};

  auto decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->dim, 8);
  EXPECT_EQ(decoded->total_rows, 20);
  EXPECT_EQ(decoded->quantization, Quantization::kInt8);
  EXPECT_TRUE(decoded->store_full_precision);
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[0].rows, 12);
  EXPECT_EQ(decoded->codebook.Encode(), manifest.codebook.Encode());
}

TEST(StoreFormatTest, ManifestRejectsInconsistency) {
  const Tensor rows = RandomRows(20, 8, 5);
  Manifest manifest;
  manifest.dim = 8;
  manifest.total_rows = 20;
  manifest.quantization = Quantization::kInt8;
  manifest.codebook = Codebook::TrainInt8(rows);
  manifest.shards = {ShardInfo{12, 8192}, ShardInfo{8, 8192}};

  // Shard rows not summing to total_rows.
  Manifest bad_sum = manifest;
  bad_sum.shards[1].rows = 9;
  EXPECT_FALSE(DecodeManifest(EncodeManifest(bad_sum)).ok());

  // Codebook dim disagreeing with the manifest dim.
  Manifest bad_dim = manifest;
  bad_dim.dim = 16;
  EXPECT_FALSE(DecodeManifest(EncodeManifest(bad_dim)).ok());

  // Codebook kind disagreeing with the manifest kind.
  Manifest bad_kind = manifest;
  bad_kind.quantization = Quantization::kPq;
  EXPECT_FALSE(DecodeManifest(EncodeManifest(bad_kind)).ok());

  EXPECT_FALSE(DecodeManifest("").ok());
  EXPECT_FALSE(DecodeManifest("SDEASTOR1").ok());
}

}  // namespace
}  // namespace sdea::store
