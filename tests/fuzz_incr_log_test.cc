// Fuzz regression suite for the SDEAINC1 update-log decoder: arbitrary
// bytes either decode ok() or reject with InvalidArgument — never crash,
// hang, or allocate unboundedly (the count fields are budget-checked
// against the remaining suffix). Runs under ASan+UBSan in CI via the
// `fuzz` ctest label.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "incr/update_log.h"
#include "testing/fuzz.h"

namespace sdea::incr {
namespace {

std::string ValidBlob() {
  UpdateBatch a;
  a.kg1.new_entities = {"alice", "bob"};
  a.kg1.relational = {{"alice", "knows", "bob"}};
  a.kg1.attributes = {{"alice", "bio", "some longer value text"}};
  a.kg2.new_entities = {"alicia"};
  a.kg2.relational = {{"alicia", "conoce", "roberto"}};
  UpdateBatch b;
  b.kg2.attributes = {{"roberto", "bio", "v2"}};
  return EncodeUpdateLog({a, b});
}

sdea::testing::DecodeFn Decoder() {
  return [](const std::string& blob) {
    return DecodeUpdateLog(blob).status();
  };
}

TEST(IncrLogFuzzTest, ValidBlobDecodes) {
  EXPECT_TRUE(DecodeUpdateLog(ValidBlob()).ok());
}

TEST(IncrLogFuzzTest, TruncationAtEveryOffset) {
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckTruncationRobustness(
      ValidBlob(), Decoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  // Every strict prefix must reject: the trailing-bytes check means no
  // prefix of a valid log is itself a valid log.
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(IncrLogFuzzTest, SeededMutations) {
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      ValidBlob(), Decoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.cases, options.iterations);
  EXPECT_GT(stats.rejected, 0);
}

TEST(IncrLogFuzzTest, EvilCountsRejectWithoutAllocating) {
  const std::string good = ValidBlob();
  // Layout after the 8-byte magic: u64 batch count, then per batch the
  // kg1 update (u64 entity count first). Splatting adversarial counts must
  // bounce off the remaining-bytes budget before any resize.
  const std::vector<uint64_t> evil = {~0ull, 1ull << 62, 1ull << 33,
                                      static_cast<uint64_t>(good.size())};
  for (const size_t offset : {size_t{8}, size_t{16}}) {
    for (const uint64_t value : evil) {
      std::string blob = good;
      std::memcpy(blob.data() + offset, &value, 8);
      auto decoded = DecodeUpdateLog(blob);
      ASSERT_FALSE(decoded.ok()) << "offset " << offset << " value " << value;
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // A string length overrunning the suffix (the first entity name's length
  // field sits right after the two counts).
  std::string blob = good;
  const uint64_t huge = ~0ull - 4;
  std::memcpy(blob.data() + 24, &huge, 8);
  auto decoded = DecodeUpdateLog(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdea::incr
