// Adversarial scenario generation: dangling entities on either side,
// partial seed overlap, and chained >2-KG rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "kg/validation.h"

namespace sdea::datagen {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig cfg;
  cfg.name = "adv-test";
  cfg.seed = 77;
  cfg.num_matched = 200;
  cfg.extra_entity_frac = 0.1;
  cfg.pretrain_sentences = 0;
  return cfg;
}

TEST(AdversarialGeneratorTest, ZeroRatesMatchPlainGeneration) {
  const GeneratorConfig cfg = SmallConfig();
  const GeneratedBenchmark bench = BenchmarkGenerator().Generate(cfg);
  EXPECT_TRUE(bench.dangling_kg1.empty());
  EXPECT_TRUE(bench.dangling_kg2.empty());
  EXPECT_TRUE(bench.hidden_truth.empty());
  // Every matched entity plus every general concept is a gold pair.
  EXPECT_EQ(static_cast<int64_t>(bench.ground_truth.size()),
            cfg.num_matched + cfg.num_general_concepts);
}

TEST(AdversarialGeneratorTest, DanglingCountsAndDisjointness) {
  GeneratorConfig cfg = SmallConfig();
  cfg.dangling_frac_kg1 = 0.3;
  cfg.dangling_frac_kg2 = 0.2;
  const GeneratedBenchmark bench = BenchmarkGenerator().Generate(cfg);

  const auto d1 = static_cast<int64_t>(cfg.num_matched * 0.3);
  const auto d2 = static_cast<int64_t>(cfg.num_matched * 0.2);
  EXPECT_EQ(static_cast<int64_t>(bench.dangling_kg1.size()), d1);
  EXPECT_EQ(static_cast<int64_t>(bench.dangling_kg2.size()), d2);
  EXPECT_EQ(static_cast<int64_t>(bench.ground_truth.size()),
            cfg.num_matched + cfg.num_general_concepts - d1 - d2);

  // Withheld entities shrink the views (extras are unaffected).
  const auto extras =
      static_cast<int64_t>(cfg.num_matched * cfg.extra_entity_frac);
  EXPECT_EQ(bench.kg1.num_entities(), cfg.num_matched +
                                          cfg.num_general_concepts - d2 +
                                          extras);
  EXPECT_EQ(bench.kg2.num_entities(), cfg.num_matched +
                                          cfg.num_general_concepts - d1 +
                                          extras);

  // A dangling KG1 entity never appears as a gold source.
  std::set<kg::EntityId> sources;
  for (const auto& [a, b] : bench.ground_truth) sources.insert(a);
  for (kg::EntityId e : bench.dangling_kg1) {
    EXPECT_EQ(sources.count(e), 0u);
  }

  // Both rendered KGs stay structurally valid (no edges to withheld ids).
  for (const auto* g : {&bench.kg1, &bench.kg2}) {
    EXPECT_TRUE(kg::ValidateKnowledgeGraph(*g).clean());
  }
}

TEST(AdversarialGeneratorTest, GenerationIsDeterministic) {
  GeneratorConfig cfg = SmallConfig();
  cfg.dangling_frac_kg1 = 0.25;
  cfg.partial_overlap = 0.2;
  const GeneratedBenchmark a = BenchmarkGenerator().Generate(cfg);
  const GeneratedBenchmark b = BenchmarkGenerator().Generate(cfg);
  EXPECT_EQ(a.ground_truth, b.ground_truth);
  EXPECT_EQ(a.dangling_kg1, b.dangling_kg1);
  EXPECT_EQ(a.hidden_truth, b.hidden_truth);
  EXPECT_EQ(a.kg1.num_entities(), b.kg1.num_entities());
}

TEST(AdversarialGeneratorTest, PartialOverlapHidesTruePairs) {
  GeneratorConfig cfg = SmallConfig();
  cfg.partial_overlap = 0.3;
  const GeneratedBenchmark bench = BenchmarkGenerator().Generate(cfg);
  EXPECT_FALSE(bench.hidden_truth.empty());
  EXPECT_EQ(static_cast<int64_t>(bench.ground_truth.size() +
                                 bench.hidden_truth.size()),
            cfg.num_matched + cfg.num_general_concepts);
  // Hidden pairs are disjoint from the visible gold.
  std::set<std::pair<kg::EntityId, kg::EntityId>> visible(
      bench.ground_truth.begin(), bench.ground_truth.end());
  for (const auto& p : bench.hidden_truth) {
    EXPECT_EQ(visible.count(p), 0u);
  }
}

TEST(AdversarialGeneratorTest, ChainLinksAndTransitiveShrink) {
  GeneratorConfig cfg = SmallConfig();
  cfg.dangling_frac_kg2 = 0.2;  // Each later hop loses 20%.
  const GeneratedChain chain = BenchmarkGenerator().GenerateChain(cfg, 3);
  ASSERT_EQ(chain.kgs.size(), 3u);
  ASSERT_EQ(chain.links.size(), 2u);

  const auto total = cfg.num_matched + cfg.num_general_concepts;
  for (const auto& link : chain.links) {
    EXPECT_GT(link.size(), 0u);
    EXPECT_LT(static_cast<int64_t>(link.size()), total);
  }
  // first<->last coverage cannot exceed either consecutive link's source
  // population, and with independent 20% drops it is strictly below total.
  EXPECT_GT(chain.transitive.size(), 0u);
  EXPECT_LT(static_cast<int64_t>(chain.transitive.size()), total);
  for (const auto& g : chain.kgs) {
    EXPECT_TRUE(kg::ValidateKnowledgeGraph(g).clean());
  }
}

TEST(AdversarialGeneratorTest, ChainOfTwoIsAPlainPair) {
  const GeneratorConfig cfg = SmallConfig();
  const GeneratedChain chain = BenchmarkGenerator().GenerateChain(cfg, 2);
  ASSERT_EQ(chain.kgs.size(), 2u);
  ASSERT_EQ(chain.links.size(), 1u);
  EXPECT_EQ(chain.links[0].size(), chain.transitive.size());
  EXPECT_EQ(static_cast<int64_t>(chain.transitive.size()),
            cfg.num_matched + cfg.num_general_concepts);
}

TEST(AdversarialPresetTest, SweepCoversRatesAndScales) {
  const auto sweep = AdversarialSweep();
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].config.dangling_frac_kg1, 0.0);
  EXPECT_EQ(sweep[2].config.dangling_frac_kg1, 0.3);
  EXPECT_EQ(sweep[2].id, "adversarial_30");
  // The sweep holds everything but the rate fixed.
  EXPECT_EQ(sweep[0].config.seed, sweep[3].config.seed);
  const GeneratorConfig scaled = ScaledConfig(sweep[2].config, 0.02);
  EXPECT_EQ(scaled.num_matched, 300);
  EXPECT_EQ(scaled.dangling_frac_kg1, 0.3);
}

}  // namespace
}  // namespace sdea::datagen
