#include "base/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace sdea::base {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(1000, 7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) visits[static_cast<size_t>(i)]++;
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesAreAFunctionOfNAndGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(103, 10, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 11u);
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, static_cast<int64_t>(c) * 10);
    EXPECT_EQ(chunks[c].second,
              std::min<int64_t>(103, static_cast<int64_t>(c + 1) * 10));
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, 9, [&](int64_t begin, int64_t end) {
      int64_t local = 0;
      for (int64_t i = begin; i < end; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::pair<int64_t, int64_t>> chunks;  // No mutex needed.
  pool.ParallelFor(100, 10, [&](int64_t begin, int64_t end) {
    chunks.emplace_back(begin, end);
  });
  // Inline path runs the whole range as one chunk.
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 100}));
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 10, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain stays on the calling thread as one chunk.
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(5, 10, [&](int64_t begin, int64_t end) {
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 5}));
}

TEST(ThreadPoolTest, NestedParallelForDegradesToSerialWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(64 * 64);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(64, 4, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(64, 4, [&](int64_t b2, int64_t e2) {
        for (int64_t j = b2; j < e2; ++j) {
          visits[static_cast<size_t>(i * 64 + j)]++;
        }
      });
    }
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsReplaceable) {
  ThreadPool::SetGlobalNumThreads(2);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 2);
  std::atomic<int64_t> sum{0};
  ParallelFor(257, 16, [&](int64_t begin, int64_t end) {
    sum += end - begin;
  });
  EXPECT_EQ(sum.load(), 257);
  ThreadPool::SetGlobalNumThreads(ThreadPool::DefaultNumThreads());
}

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, GrainForWorkBounds) {
  EXPECT_EQ(GrainForWork(0, 100), 1);
  EXPECT_EQ(GrainForWork(10, 1 << 20), 1);     // Heavy rows: grain 1.
  EXPECT_EQ(GrainForWork(10, 1), 10);          // Light rows: one chunk.
  EXPECT_GT(GrainForWork(1 << 20, 16), 1);     // Light rows, many items.
  EXPECT_LE(GrainForWork(1 << 20, 16), 1 << 20);
}

}  // namespace
}  // namespace sdea::base
