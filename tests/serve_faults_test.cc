// Fault-injection tests for the serving path: a snapshot reload that fails
// (corrupt artifact on disk, or an injected filesystem read error) must
// keep the old snapshot pinned and serving, and a Submit racing batcher
// shutdown must resolve with FailedPrecondition instead of aborting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "base/fileio.h"
#include "core/embedding_store.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "testing/faults.h"

namespace sdea::serve {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

core::EmbeddingStore MakeStore() {
  Tensor emb({3, 2}, {1, 0, 0, 1, 1, 1});
  auto store = core::EmbeddingStore::Create({"alpha", "beta", "gamma"},
                                            std::move(emb));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

TEST(ServeFaultsTest, CorruptArtifactKeepsOldSnapshot) {
  const std::string path = TempPath("sdea_serve_corrupt.emb");
  ASSERT_TRUE(MakeStore().Save(path).ok());

  SnapshotManager mgr;
  auto v1 = mgr.LoadAndSwap(path, /*build_index=*/false);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  const auto pinned = mgr.Current();
  ASSERT_NE(pinned, nullptr);

  // Corrupt the artifact in place; the reload fails, the published
  // snapshot stays the exact object v1 pinned.
  ASSERT_TRUE(WriteStringToFile(path, "not an embedding store").ok());
  auto v2 = mgr.LoadAndSwap(path, /*build_index=*/false);
  ASSERT_FALSE(v2.ok());
  EXPECT_EQ(v2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Current().get(), pinned.get());
  EXPECT_EQ(mgr.version(), *v1);
}

TEST(ServeFaultsTest, InjectedReadFaultKeepsOldSnapshot) {
  const std::string path = TempPath("sdea_serve_readfault.emb");
  ASSERT_TRUE(MakeStore().Save(path).ok());

  SnapshotManager mgr;
  ASSERT_TRUE(mgr.LoadAndSwap(path, /*build_index=*/false).ok());
  const uint64_t version = mgr.version();
  const auto pinned = mgr.Current();

  sdea::testing::CountdownFaultInjector injector{
      sdea::testing::FaultPlan{.op = FaultInjector::FileOp::kRead,
                               .repeat = true,
                               .path_substring = ".emb"}};
  {
    ScopedFaultInjector scope(&injector);
    auto reload = mgr.LoadAndSwap(path, /*build_index=*/false);
    ASSERT_FALSE(reload.ok());
    EXPECT_EQ(reload.status().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(injector.faults_injected(), 1);
  EXPECT_EQ(mgr.Current().get(), pinned.get());
  EXPECT_EQ(mgr.version(), version);
}

TEST(ServeFaultsTest, ServerKeepsAnsweringAfterFailedReload) {
  const std::string path = TempPath("sdea_serve_server.emb");
  ASSERT_TRUE(MakeStore().Save(path).ok());

  ServerOptions options;
  options.build_index = false;
  AlignmentServer server(options);
  ASSERT_TRUE(server.LoadSnapshot(path).ok());

  ASSERT_TRUE(WriteStringToFile(path, "garbage").ok());
  EXPECT_FALSE(server.LoadSnapshot(path).ok());

  // Queries still answer from the v1 snapshot.
  auto result = server.AlignEmbedding(Tensor::FromVector({1.0f, 0.1f}), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].name, "alpha");
}

TEST(ServeFaultsTest, SubmitAfterShutdownRejectsGracefully) {
  RequestBatcher batcher(BatcherOptions{},
                         [](std::vector<ServeRequest>* batch) {
                           for (ServeRequest& r : *batch) {
                             r.promise.set_value(
                                 AlignResult(std::vector<Neighbor>{}));
                           }
                         });
  batcher.Shutdown();
  batcher.Shutdown();  // Idempotent.

  ServeRequest request;
  request.embedding = Tensor::FromVector({1.0f, 0.0f});
  auto future = batcher.Submit(std::move(request));
  const AlignResult result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeFaultsTest, SubmitsRacingShutdownAllResolve) {
  // Many client threads hammer Submit while another thread shuts the
  // batcher down: every returned future must resolve — either with the
  // empty answer or with FailedPrecondition — and nothing may abort.
  RequestBatcher batcher(BatcherOptions{},
                         [](std::vector<ServeRequest>* batch) {
                           for (ServeRequest& r : *batch) {
                             r.promise.set_value(
                                 AlignResult(std::vector<Neighbor>{}));
                           }
                         });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<AlignResult>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&batcher, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ServeRequest request;
        request.embedding = Tensor::FromVector({1.0f, 0.0f});
        futures[t].push_back(batcher.Submit(std::move(request)));
      }
    });
  }
  batcher.Shutdown();
  for (std::thread& c : clients) c.join();

  int accepted = 0, rejected = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const AlignResult result = f.get();
      if (result.ok()) {
        ++accepted;
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
        ++rejected;
      }
    }
  }
  EXPECT_EQ(accepted + rejected, kThreads * kPerThread);
}

}  // namespace
}  // namespace sdea::serve
