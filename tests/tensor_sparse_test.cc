#include "tensor/sparse.h"

#include <gtest/gtest.h>

namespace sdea {
namespace {

TEST(CsrTest, FromTripletsAndApply) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, -1.0f}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  Tensor x({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = m.Apply(x);
  // Row 0: 2*[3,4] = [6,8]; row 1: [1,2] - [5,6] = [-4,-4].
  EXPECT_FLOAT_EQ(y.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), -4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), -4.0f);
}

TEST(CsrTest, DuplicateTripletsSum) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1);
  Tensor x({1, 1}, {2.0f});
  EXPECT_FLOAT_EQ(m.Apply(x)[0], 7.0f);
}

TEST(CsrTest, ApplyTransposeMatchesDenseTranspose) {
  Rng rng(4);
  std::vector<std::tuple<int64_t, int64_t, float>> coo;
  for (int i = 0; i < 30; ++i) {
    coo.emplace_back(static_cast<int64_t>(rng.UniformInt(5)),
                     static_cast<int64_t>(rng.UniformInt(7)),
                     rng.UniformFloat(-1.0f, 1.0f));
  }
  CsrMatrix m = CsrMatrix::FromTriplets(5, 7, coo);
  Tensor dense({5, 7});
  for (const auto& [r, c, v] : coo) dense[r * 7 + c] += v;
  Tensor x = Tensor::RandomNormal({5, 3}, 1.0f, &rng);
  Tensor want = tmath::Matmul(tmath::Transpose(dense), x);
  Tensor got = m.ApplyTranspose(x);
  ASSERT_TRUE(want.SameShape(got));
  for (int64_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-4f);
  }
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {});
  Tensor x({3, 2}, 1.0f);
  Tensor y = m.Apply(x);
  EXPECT_EQ(y.Sum(), 0.0f);
}

}  // namespace
}  // namespace sdea
