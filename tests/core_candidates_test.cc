#include "core/candidate_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace sdea::core {
namespace {

TEST(CandidatesTest, TopOneIsNearestByCosine) {
  Tensor src({2, 2}, {1, 0, 0, 1});
  Tensor tgt({3, 2}, {0, 2, 3, 0.1f, 5, 5});
  const auto c = GenerateCandidates(src, tgt, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0][0], 1);  // (3, 0.1) is most aligned with (1, 0).
  EXPECT_EQ(c[1][0], 0);  // (0, 2) with (0, 1).
}

TEST(CandidatesTest, KCappedByTargets) {
  Tensor src({1, 2}, {1, 0});
  Tensor tgt({3, 2}, {1, 0, 0, 1, -1, 0});
  const auto c = GenerateCandidates(src, tgt, 10);
  EXPECT_EQ(c[0].size(), 3u);
}

TEST(CandidatesTest, CandidatesAreDistinctAndOrdered) {
  Rng rng(3);
  Tensor src = Tensor::RandomNormal({5, 8}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({40, 8}, 1.0f, &rng);
  const auto c = GenerateCandidates(src, tgt, 10);
  Tensor s = src, t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  for (size_t i = 0; i < c.size(); ++i) {
    std::set<int64_t> distinct(c[i].begin(), c[i].end());
    EXPECT_EQ(distinct.size(), c[i].size());
    for (size_t k = 1; k < c[i].size(); ++k) {
      const float prev = tmath::Dot(s.Row(static_cast<int64_t>(i)),
                                    t.Row(c[i][k - 1]));
      const float cur = tmath::Dot(s.Row(static_cast<int64_t>(i)),
                                   t.Row(c[i][k]));
      EXPECT_GE(prev, cur - 1e-6f);
    }
  }
}

TEST(CandidatesTest, ExhaustiveTopKMatchesBruteForce) {
  Rng rng(9);
  Tensor src = Tensor::RandomNormal({3, 4}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({20, 4}, 1.0f, &rng);
  const auto c = GenerateCandidates(src, tgt, 5);
  Tensor s = src, t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  for (int64_t i = 0; i < 3; ++i) {
    // Brute-force the best target.
    int64_t best = 0;
    float best_score = -2.0f;
    for (int64_t j = 0; j < 20; ++j) {
      const float sc = tmath::Dot(s.Row(i), t.Row(j));
      if (sc > best_score) {
        best_score = sc;
        best = j;
      }
    }
    EXPECT_EQ(c[static_cast<size_t>(i)][0], best);
  }
}

}  // namespace
}  // namespace sdea::core
