#include "core/candidate_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::core {
namespace {

TEST(CandidatesTest, TopOneIsNearestByCosine) {
  Tensor src({2, 2}, {1, 0, 0, 1});
  Tensor tgt({3, 2}, {0, 2, 3, 0.1f, 5, 5});
  const auto c = GenerateCandidates(src, tgt, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0][0], 1);  // (3, 0.1) is most aligned with (1, 0).
  EXPECT_EQ(c[1][0], 0);  // (0, 2) with (0, 1).
}

TEST(CandidatesTest, KCappedByTargets) {
  Tensor src({1, 2}, {1, 0});
  Tensor tgt({3, 2}, {1, 0, 0, 1, -1, 0});
  const auto c = GenerateCandidates(src, tgt, 10);
  EXPECT_EQ(c[0].size(), 3u);
}

TEST(CandidatesTest, CandidatesAreDistinctAndOrdered) {
  Rng rng(3);
  Tensor src = Tensor::RandomNormal({5, 8}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({40, 8}, 1.0f, &rng);
  const auto c = GenerateCandidates(src, tgt, 10);
  Tensor s = src, t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  for (size_t i = 0; i < c.size(); ++i) {
    std::set<int64_t> distinct(c[i].begin(), c[i].end());
    EXPECT_EQ(distinct.size(), c[i].size());
    for (size_t k = 1; k < c[i].size(); ++k) {
      const float prev = tmath::Dot(s.Row(static_cast<int64_t>(i)),
                                    t.Row(c[i][k - 1]));
      const float cur = tmath::Dot(s.Row(static_cast<int64_t>(i)),
                                   t.Row(c[i][k]));
      EXPECT_GE(prev, cur - 1e-6f);
    }
  }
}

TEST(CandidatesTest, ExhaustiveTopKMatchesBruteForce) {
  Rng rng(9);
  Tensor src = Tensor::RandomNormal({3, 4}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({20, 4}, 1.0f, &rng);
  const auto c = GenerateCandidates(src, tgt, 5);
  Tensor s = src, t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  for (int64_t i = 0; i < 3; ++i) {
    // Brute-force the best target.
    int64_t best = 0;
    float best_score = -2.0f;
    for (int64_t j = 0; j < 20; ++j) {
      const float sc = tmath::Dot(s.Row(i), t.Row(j));
      if (sc > best_score) {
        best_score = sc;
        best = j;
      }
    }
    EXPECT_EQ(c[static_cast<size_t>(i)][0], best);
  }
}

TEST(CandidatesTest, NearTieRankingMatchesScoreDotContract) {
  // Regression for the accumulation bug: the old loop multiplied
  // float*float (rounding each product to a float) before widening to
  // double. On these rows — a huge cancelling ±471.8 pair plus ulp-level
  // jitter, found by exhaustive search — that per-product rounding
  // collapses the true ordering of rows 2 and 3 into an exact tie, so the
  // old code returned [... 2, 3 ...] where the exact contract (widen each
  // operand to double BEFORE multiplying, the same arithmetic as the
  // pipeline's MatmulTransposeB score matrix) demands [... 3, 2 ...].
  const float big = 0x1.d7ca34p+8f;  // ~471.79, product with src inexact.
  const auto up = [](float v, int n) {
    for (int i = 0; i < n; ++i) v = std::nextafterf(v, 1e9f);
    return v;
  };
  Tensor src({1, 4},
             {0x1.120b1ap+0f, 0x1.d9b2bcp-1f, 0x1.170902p+0f,
              0x1.e7274ap-1f});
  Tensor tgt({6, 4});
  const float z = 0.25f;
  tgt.SetRow(0, Tensor::FromVector({big, -big, up(z, 1), 0.75f}));
  tgt.SetRow(1, Tensor::FromVector({big, -big, z, 0.75f}));
  tgt.SetRow(2, Tensor::FromVector({up(big, 2), -big, up(z, 3), 0.75f}));
  tgt.SetRow(3, Tensor::FromVector({up(big, 1), -big, up(z, 3), 0.75f}));
  tgt.SetRow(4, Tensor::FromVector({big, -big, up(z, 3), 0.75f}));
  tgt.SetRow(5, Tensor::FromVector({big, -big, up(z, 3), 0.75f}));
  const auto c = GenerateCandidates(src, tgt, 6);
  ASSERT_EQ(c.size(), 1u);

  // Reference: same normalization, scored per pair through the
  // mode-dispatched kernels::ScoreDot (in the default exact mode that IS
  // per-element double accumulation, pinned bitwise by the kernels tests),
  // ranked by the same TopK total order. Holds in fast mode too: Gemv and
  // ScoreDot share the fast reduction tree.
  Tensor s = src, t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  std::vector<float> scores(6);
  for (int64_t j = 0; j < 6; ++j) {
    scores[static_cast<size_t>(j)] =
        tmath::kernels::ScoreDot(s.data(), t.data() + j * 4, 4);
  }
  EXPECT_EQ(c[0], tmath::TopK(scores.data(), 6, 6));
  // The construction really is adversarial: in exact mode row 3 must
  // strictly outrank row 2 — exactly what float-product rounding erased.
  if (tmath::ActiveKernelMode() == tmath::KernelMode::kExact) {
    EXPECT_EQ(c[0][0], 3);
    EXPECT_EQ(c[0][1], 2);
    EXPECT_GT(scores[3], scores[2]);
  }
}

}  // namespace
}  // namespace sdea::core
