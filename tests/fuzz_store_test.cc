// Fuzz regression suite for the SDEASTOR1 decoders: codebook blobs (int8
// and PQ), the manifest, and shard images all obey the DESIGN.md §8
// contract — arbitrary bytes either decode ok() or reject with
// InvalidArgument, never crash, hang, or allocate unboundedly. Run under
// ASan+UBSan in CI via the `fuzz` ctest label.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "store/format.h"
#include "store/quantizer.h"
#include "tensor/tensor.h"
#include "testing/fuzz.h"

namespace sdea::store {
namespace {

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Tensor t({n, d});
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  tmath::L2NormalizeRowsInPlace(&t);
  return t;
}

std::string Int8CodebookBlob() {
  return Codebook::TrainInt8(RandomRows(60, 16, 1)).Encode();
}

std::string PqCodebookBlob() {
  PqOptions options;
  options.num_subspaces = 4;
  options.num_centroids = 16;
  auto cb = Codebook::TrainPq(RandomRows(60, 16, 2), options);
  SDEA_CHECK(cb.ok());
  return cb->Encode();
}

std::string ManifestBlob() {
  Manifest manifest;
  manifest.dim = 16;
  manifest.total_rows = 60;
  manifest.quantization = Quantization::kInt8;
  manifest.store_full_precision = true;
  manifest.codebook = Codebook::TrainInt8(RandomRows(60, 16, 3));
  manifest.shards = {ShardInfo{40, 12288}, ShardInfo{20, 8192}};
  return EncodeManifest(manifest);
}

std::string ShardBlob() {
  const int64_t n = 11, d = 16;
  const Tensor rows = RandomRows(n, d, 4);
  const Codebook cb = Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  std::vector<std::string> names;
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  return EncodeShard(cb, codes.data(), rows.data(), n, names, 0);
}

sdea::testing::DecodeFn CodebookDecoder() {
  return [](const std::string& blob) {
    return Codebook::Decode(blob).status();
  };
}

sdea::testing::DecodeFn ManifestDecoder() {
  return [](const std::string& blob) {
    return DecodeManifest(blob).status();
  };
}

sdea::testing::DecodeFn ShardDecoder() {
  return [](const std::string& blob) {
    return DecodeShardBlob(blob).status();
  };
}

TEST(StoreFuzzTest, ValidBlobsDecode) {
  EXPECT_TRUE(Codebook::Decode(Int8CodebookBlob()).ok());
  EXPECT_TRUE(Codebook::Decode(PqCodebookBlob()).ok());
  EXPECT_TRUE(DecodeManifest(ManifestBlob()).ok());
  EXPECT_TRUE(DecodeShardBlob(ShardBlob()).ok());
}

TEST(StoreFuzzTest, CodebookTruncationAtEveryOffset) {
  for (const std::string& blob : {Int8CodebookBlob(), PqCodebookBlob()}) {
    sdea::testing::FuzzStats stats;
    const Status verdict = sdea::testing::CheckTruncationRobustness(
        blob, CodebookDecoder(), &stats);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(stats.rejected, stats.cases);
  }
}

TEST(StoreFuzzTest, CodebookSeededMutations) {
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  for (const std::string& blob : {Int8CodebookBlob(), PqCodebookBlob()}) {
    sdea::testing::FuzzStats stats;
    const Status verdict = sdea::testing::CheckMutationRobustness(
        blob, CodebookDecoder(), options, &stats);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(stats.cases, options.iterations);
    EXPECT_GT(stats.rejected, 0);
  }
}

TEST(StoreFuzzTest, ManifestTruncationAtEveryOffset) {
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckTruncationRobustness(
      ManifestBlob(), ManifestDecoder(), &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(stats.rejected, stats.cases);
}

TEST(StoreFuzzTest, ManifestSeededMutations) {
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      ManifestBlob(), ManifestDecoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_GT(stats.rejected, 0);
}

TEST(StoreFuzzTest, ShardTruncationSample) {
  // A shard image is ~tens of KiB (page-aligned regions); truncating at
  // every offset is slow for little marginal value, so probe every
  // truncation point in the header page plus a stride through the rest.
  const std::string blob = ShardBlob();
  for (size_t cut = 0; cut < blob.size();
       cut += (cut < kShardHeaderBytes ? 1 : 257)) {
    auto decoded = DecodeShardBlob(blob.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut " << cut;
  }
}

TEST(StoreFuzzTest, ShardSeededMutations) {
  // file_bytes must equal the image size exactly, so *every* size-changing
  // mutation rejects; byte flips inside data regions may still "decode"
  // (the header is intact) — the contract is only no-crash + bounded work.
  sdea::testing::FuzzOptions options;
  options.iterations = 5000;
  sdea::testing::FuzzStats stats;
  const Status verdict = sdea::testing::CheckMutationRobustness(
      ShardBlob(), ShardDecoder(), options, &stats);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_GT(stats.rejected, 0);
}

TEST(StoreFuzzTest, EvilShardHeadersRejectInConstantTime) {
  const std::string good = ShardBlob();
  // Header layout after the 8-byte magic: u64 rows, dim, kind,
  // code_bytes_per_row, codes_offset, fp32_offset, names_index_offset,
  // names_blob_offset, names_blob_bytes, file_bytes.
  struct Evil {
    size_t offset;
    uint64_t value;
  };
  const std::vector<Evil> cases = {
      {8, ~0ull},                  // rows: would wrap rows+1.
      {8, (1ull << 62)},           // rows: names index bound overflow.
      {16, ~0ull},                 // dim: huge.
      {24, 7},                     // kind: unknown.
      {32, ~0ull},                 // code_bytes_per_row: codes bound wrap.
      {40, ~0ull},                 // codes_offset: out of file.
      {48, ~0ull - 7},             // fp32_offset: fp32 bound wrap.
      {56, ~0ull},                 // names_index_offset: wrap.
      {72, ~0ull},                 // names_blob_bytes: huge.
      {80, 1},                     // file_bytes != mapped size.
  };
  for (const Evil& evil : cases) {
    std::string blob = good;
    std::memcpy(blob.data() + evil.offset, &evil.value, 8);
    auto decoded = DecodeShardBlob(blob);
    ASSERT_FALSE(decoded.ok()) << "offset " << evil.offset;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << "offset " << evil.offset;
  }
}

}  // namespace
}  // namespace sdea::store
