// Knowledge-base integration — the end application the paper's
// introduction motivates. Two overlapping KBs are aligned with the
// AlignmentPipeline (SDEA + Gale–Shapley + similarity threshold), then
// fused with kg::MergeKnowledgeBases: matched entities collapse into one
// node carrying the union of both KBs' facts, unmatched entities are
// carried over. Reports completeness gains from the integration.
//
// Build & run:  ./build/examples/kb_integration

#include <cstdio>

#include "core/alignment_pipeline.h"
#include "datagen/generator.h"
#include "kg/merge.h"
#include "kg/validation.h"

int main() {
  using namespace sdea;

  datagen::GeneratorConfig gen;
  gen.name = "kb integration demo";
  gen.seed = 33;
  gen.num_matched = 250;
  gen.extra_entity_frac = 0.4;  // Each KB has exclusive entities.
  gen.kg1_lang_seed = 8;
  gen.kg2_lang_seed = 8;
  gen.kg2_name_mode = datagen::NameMode::kShared;
  const datagen::GeneratedBenchmark bench =
      datagen::BenchmarkGenerator().Generate(gen);

  const kg::KgStatistics s1 = bench.kg1.ComputeStatistics();
  const kg::KgStatistics s2 = bench.kg2.ComputeStatistics();
  std::printf("KB1: %lld entities, %lld facts\n",
              (long long)s1.num_entities,
              (long long)(s1.num_relational_triples +
                          s1.num_attribute_triples));
  std::printf("KB2: %lld entities, %lld facts\n",
              (long long)s2.num_entities,
              (long long)(s2.num_relational_triples +
                          s2.num_attribute_triples));

  // Sanity-check the inputs before training on them.
  for (const auto* g : {&bench.kg1, &bench.kg2}) {
    const kg::ValidationReport report = kg::ValidateKnowledgeGraph(*g);
    if (!report.clean()) {
      std::printf("validation: %s",
                  kg::FormatValidationReport(report, 3).c_str());
    }
  }

  // Align with the end-to-end pipeline: SDEA + stable matching + a
  // similarity threshold that keeps KB-exclusive entities unmatched.
  const kg::AlignmentSeeds seeds =
      kg::AlignmentSeeds::Split(bench.ground_truth, 3);
  core::PipelineConfig config;
  config.model.attribute.text.max_epochs = 12;
  config.model.attribute.text.patience = 4;
  config.model.attribute.text.negatives_per_pair = 3;
  config.model.relation.max_epochs = 12;
  config.model.relation.patience = 4;
  config.use_stable_matching = true;
  config.min_similarity = 0.5f;

  core::AlignmentPipeline pipeline;
  auto result = pipeline.Run(bench.kg1, bench.kg2, seeds, config,
                             bench.pretrain_corpus);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\naligned %zu entity pairs (ranking H@1 %.1f, decision accuracy "
      "%.1f%%, decision F1 %.3f)\n",
      result->pairs.size(), result->test_metrics.hits_at_1,
      result->matching_accuracy, result->decision_metrics.f1);
  std::printf("no-match rule: %s\n",
              result->threshold.DebugString().c_str());

  // Fuse the two KBs under the accepted matching. The pipeline's decision
  // vector already has the merge-ready shape: decisions[i] is the accepted
  // KB2 target of KB1 entity i, or core::kUnmatched (which the merge
  // carries over as a KB1-exclusive entity).
  kg::MergeReport merge_report;
  auto merged =
      kg::MergeKnowledgeBases(bench.kg1, bench.kg2, result->decisions,
                              kg::MergeOptions{}, &merge_report);
  if (!merged.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  const kg::KgStatistics sm = merged->ComputeStatistics();
  std::printf("integrated KB: %lld entities (%lld fused, %lld carried), "
              "%lld facts (%lld duplicates removed)\n",
              (long long)sm.num_entities,
              (long long)merge_report.fused_entities,
              (long long)merge_report.carried_entities,
              (long long)(sm.num_relational_triples +
                          sm.num_attribute_triples),
              (long long)(merge_report.duplicate_relational +
                          merge_report.duplicate_attributes));
  std::printf(
      "vs naive union without alignment: %lld entities (duplicates!)\n",
      (long long)(s1.num_entities + s2.num_entities));
  return 0;
}
