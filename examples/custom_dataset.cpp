// Using SDEA with your own data: write/load the DBP15K-style TSV layout,
// split the known links, train, and rank candidate targets for a query.
//
//   <prefix>_rel_triples   head \t relation \t tail      (by name)
//   <prefix>_attr_triples  entity \t attribute \t value
//
// This example first *creates* a small TSV dataset on disk (so it is fully
// self-contained), then runs the load-train-query path a downstream user
// would follow.
//
// Build & run:  ./build/examples/custom_dataset

#include <cstdio>

#include <algorithm>

#include "base/fileio.h"
#include "core/sdea.h"
#include "datagen/generator.h"
#include "tensor/topk.h"

int main() {
  using namespace sdea;
  const std::string dir = "/tmp/sdea_custom_dataset";

  // --- Step 0 (setup only): materialize a dataset in the TSV layout. ----
  datagen::GeneratorConfig gen;
  gen.seed = 44;
  gen.num_matched = 200;
  gen.kg1_lang_seed = 2;
  gen.kg2_lang_seed = 2;
  gen.kg2_name_mode = datagen::NameMode::kShared;
  const datagen::GeneratedBenchmark source =
      datagen::BenchmarkGenerator().Generate(gen);
  SDEA_CHECK_OK(source.kg1.SaveTsv(dir + "_kg1"));
  SDEA_CHECK_OK(source.kg2.SaveTsv(dir + "_kg2"));
  // Known links file: "entity1 \t entity2" by name.
  {
    std::string links;
    for (const auto& [a, b] : source.ground_truth) {
      links += source.kg1.entity_name(a) + "\t" +
               source.kg2.entity_name(b) + "\n";
    }
    SDEA_CHECK_OK(WriteStringToFile(dir + "_links", links));
  }

  // --- Step 1: load the two KGs from TSV. -------------------------------
  auto kg1 = kg::KnowledgeGraph::LoadTsv(dir + "_kg1");
  auto kg2 = kg::KnowledgeGraph::LoadTsv(dir + "_kg2");
  if (!kg1.ok() || !kg2.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("loaded KG1 (%lld entities) and KG2 (%lld entities)\n",
              static_cast<long long>(kg1->num_entities()),
              static_cast<long long>(kg2->num_entities()));

  // --- Step 2: load links and split 2:1:7. -------------------------------
  std::vector<std::pair<kg::EntityId, kg::EntityId>> links;
  {
    auto rows = ReadTsv(dir + "_links");
    SDEA_CHECK(rows.ok());
    for (const auto& row : *rows) {
      auto e1 = kg1->FindEntity(row[0]);
      auto e2 = kg2->FindEntity(row[1]);
      if (e1.ok() && e2.ok()) links.emplace_back(*e1, *e2);
    }
  }
  const kg::AlignmentSeeds seeds = kg::AlignmentSeeds::Split(links, 17);

  // --- Step 3: train. -----------------------------------------------------
  core::SdeaConfig config;
  config.attribute.text.max_epochs = 10;
  config.attribute.text.patience = 4;
  config.attribute.text.negatives_per_pair = 3;
  config.relation.max_epochs = 10;
  config.relation.patience = 4;
  core::SdeaModel model;
  auto report = model.Fit(*kg1, *kg2, seeds, config);
  if (!report.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const auto metrics = model.Evaluate(seeds.test);
  std::printf("test: H@1=%.1f H@10=%.1f MRR=%.2f\n", metrics.hits_at_1,
              metrics.hits_at_10, metrics.mrr);

  // --- Step 4: rank target candidates for one source entity. -------------
  const kg::EntityId query = seeds.test.front().first;
  Tensor q({1, model.embeddings1().dim(1)});
  q.SetRow(0, model.embeddings1().Row(query));
  Tensor tgt = model.embeddings2();
  tmath::L2NormalizeRowsInPlace(&q);
  tmath::L2NormalizeRowsInPlace(&tgt);
  const Tensor scores = tmath::MatmulTransposeB(q, tgt);
  // Top-3 by score (radix-select; ties break to the lower entity id).
  const std::vector<int64_t> order = tmath::TopK(scores.data(), scores.size(), 3);
  std::printf("\nquery: %s\n", kg1->entity_name(query).c_str());
  for (int k = 0; k < 3; ++k) {
    std::printf("  #%d %-30s score %.3f\n", k + 1,
                kg2->entity_name(static_cast<kg::EntityId>(order[k]))
                    .c_str(),
                scores[order[k]]);
  }
  return 0;
}
