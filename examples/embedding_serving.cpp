// Deploying a trained aligner: export entity embeddings to an
// EmbeddingStore artifact, reload it (no model needed), build the IVF
// index, and serve nearest-neighbor alignment queries — the typical
// offline-train / online-serve split.
//
// Build & run:  ./build/examples/embedding_serving

#include <cstdio>

#include "core/embedding_store.h"
#include "core/sdea.h"
#include "datagen/generator.h"

int main() {
  using namespace sdea;

  // ---- Offline: train and export. ----------------------------------------
  datagen::GeneratorConfig gen;
  gen.seed = 51;
  gen.num_matched = 200;
  gen.kg1_lang_seed = 4;
  gen.kg2_lang_seed = 4;
  gen.kg2_name_mode = datagen::NameMode::kShared;
  const datagen::GeneratedBenchmark bench =
      datagen::BenchmarkGenerator().Generate(gen);
  const kg::AlignmentSeeds seeds =
      kg::AlignmentSeeds::Split(bench.ground_truth, 13);

  core::SdeaConfig config;
  config.attribute.text.max_epochs = 10;
  config.attribute.text.patience = 4;
  config.attribute.text.negatives_per_pair = 3;
  config.relation.max_epochs = 10;
  config.relation.patience = 4;
  core::SdeaModel model;
  auto report = model.Fit(bench.kg1, bench.kg2, seeds, config,
                          bench.pretrain_corpus);
  if (!report.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Export the target-side embeddings keyed by entity name.
  std::vector<std::string> names;
  for (kg::EntityId e = 0; e < bench.kg2.num_entities(); ++e) {
    names.push_back(bench.kg2.entity_name(e));
  }
  auto store =
      core::EmbeddingStore::Create(std::move(names), model.embeddings2());
  SDEA_CHECK(store.ok());
  const std::string artifact = "/tmp/sdea_serving_store.bin";
  SDEA_CHECK_OK(store->Save(artifact));
  std::printf("exported %lld embeddings (%lld dims) to %s\n",
              (long long)store->size(), (long long)store->dim(),
              artifact.c_str());

  // ---- Online: reload the artifact and serve queries. ---------------------
  auto serving = core::EmbeddingStore::Load(artifact);
  SDEA_CHECK(serving.ok());
  serving->BuildIndex();  // Sub-linear approximate queries.
  std::printf("serving store loaded, IVF index built: %s\n\n",
              serving->has_index() ? "yes" : "no");

  int correct = 0, total = 0;
  for (size_t i = 0; i < 5 && i < seeds.test.size(); ++i) {
    const auto& [src, gold] = seeds.test[i];
    const Tensor query = model.embeddings1().Row(src);
    const auto hits = serving->NearestNeighbors(query, 3);
    std::printf("query %-28s ->", bench.kg1.entity_name(src).c_str());
    for (const auto& h : hits) {
      std::printf("  %s (%.2f)", h.name.c_str(), h.similarity);
    }
    std::printf("\n");
    ++total;
    if (!hits.empty() &&
        hits[0].name == bench.kg2.entity_name(gold)) {
      ++correct;
    }
  }
  std::printf("\n%d/%d sampled queries resolved at rank 1\n", correct,
              total);
  return 0;
}
