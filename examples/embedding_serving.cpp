// Deploying a trained aligner with sdea::serve: export entity embeddings
// to an EmbeddingStore artifact, stand up an AlignmentServer on it, and
// answer concurrent alignment queries — batched, cached, and hot-swappable
// — the typical offline-train / online-serve split.
//
// Build & run:  ./build/examples/embedding_serving

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/embedding_store.h"
#include "core/sdea.h"
#include "datagen/generator.h"
#include "serve/server.h"

int main() {
  using namespace sdea;

  // ---- Offline: train and export. ----------------------------------------
  datagen::GeneratorConfig gen;
  gen.seed = 51;
  gen.num_matched = 200;
  gen.kg1_lang_seed = 4;
  gen.kg2_lang_seed = 4;
  gen.kg2_name_mode = datagen::NameMode::kShared;
  const datagen::GeneratedBenchmark bench =
      datagen::BenchmarkGenerator().Generate(gen);
  const kg::AlignmentSeeds seeds =
      kg::AlignmentSeeds::Split(bench.ground_truth, 13);

  core::SdeaConfig config;
  config.attribute.text.max_epochs = 10;
  config.attribute.text.patience = 4;
  config.attribute.text.negatives_per_pair = 3;
  config.relation.max_epochs = 10;
  config.relation.patience = 4;
  core::SdeaModel model;
  auto report = model.Fit(bench.kg1, bench.kg2, seeds, config,
                          bench.pretrain_corpus);
  if (!report.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Export the target-side embeddings keyed by entity name.
  std::vector<std::string> names;
  for (kg::EntityId e = 0; e < bench.kg2.num_entities(); ++e) {
    names.push_back(bench.kg2.entity_name(e));
  }
  auto store =
      core::EmbeddingStore::Create(std::move(names), model.embeddings2());
  SDEA_CHECK(store.ok());
  const std::string artifact = "/tmp/sdea_serving_store.bin";
  SDEA_CHECK_OK(store->Save(artifact));  // Atomic: temp file + rename.
  std::printf("exported %lld embeddings (%lld dims) to %s\n",
              (long long)store->size(), (long long)store->dim(),
              artifact.c_str());

  // ---- Online: serve the artifact through an AlignmentServer. -------------
  // A toy text encoder over KG2 entity names: look the (normalized) name up
  // in the exported store. A real deployment would plug in the trained
  // attribute-text encoder here; the serving layer only requires that row i
  // of the output depend on texts[i] alone.
  const core::EmbeddingStore& exported = *store;
  serve::BatchEncoderFn name_encoder =
      [&exported](const std::vector<std::string>& texts) {
        Tensor out({static_cast<int64_t>(texts.size()), exported.dim()});
        for (size_t i = 0; i < texts.size(); ++i) {
          auto row = exported.Get(texts[i]);
          if (row.ok()) out.SetRow(static_cast<int64_t>(i), *row);
        }
        return out;
      };

  serve::ServerOptions options;
  options.batcher.max_batch_size = 16;
  options.normalize_text = false;  // KG names are already canonical.
  serve::AlignmentServer server(options, std::move(name_encoder));
  auto version = server.LoadSnapshot(artifact);
  SDEA_CHECK(version.ok());
  std::printf("serving snapshot v%llu loaded, IVF index built: %s\n\n",
              (unsigned long long)*version,
              server.snapshot()->store.has_index() ? "yes" : "no");

  // Concurrent clients: each thread streams its test queries through the
  // batcher; answers are bitwise-identical to serial NearestNeighbors
  // calls, whatever the batching.
  int correct = 0, total = 0;
  {
    constexpr int kClients = 4;
    std::vector<std::future<std::vector<int>>> workers;
    for (int c = 0; c < kClients; ++c) {
      workers.push_back(std::async(std::launch::async, [&, c] {
        std::vector<int> outcome = {0, 0};  // {correct, total}.
        for (size_t i = c; i < seeds.test.size(); i += kClients) {
          const auto& [src, gold] = seeds.test[i];
          auto hits =
              server.AlignEmbedding(model.embeddings1().Row(src), 3);
          SDEA_CHECK(hits.ok());
          ++outcome[1];
          if (!hits->empty() &&
              (*hits)[0].name == bench.kg2.entity_name(gold)) {
            ++outcome[0];
          }
        }
        return outcome;
      }));
    }
    for (auto& w : workers) {
      const auto outcome = w.get();
      correct += outcome[0];
      total += outcome[1];
    }
  }
  std::printf("%d concurrent clients: %d/%d test queries resolved at "
              "rank 1\n",
              4, correct, total);

  // Text path: the first lookup encodes and caches; the repeat is a hit.
  const std::string probe = bench.kg2.entity_name(0);
  for (int round = 0; round < 2; ++round) {
    auto hits = server.AlignText(probe, 3);
    SDEA_CHECK(hits.ok());
    std::printf("text query %-24s ->", probe.c_str());
    for (const auto& h : *hits) {
      std::printf("  %s (%.2f)", h.name.c_str(), h.similarity);
    }
    std::printf("\n");
  }

  // Hot swap: publish a refreshed artifact with zero downtime. In-flight
  // queries finish on the snapshot they pinned; new ones see the new
  // version.
  auto refreshed = server.LoadSnapshot(artifact);
  SDEA_CHECK(refreshed.ok());
  std::printf("\nhot-swapped to snapshot v%llu (no restart, no dropped "
              "queries)\n",
              (unsigned long long)*refreshed);

  std::printf("\n--- serve stats ---\n%s", server.stats().ToString().c_str());
  return 0;
}
