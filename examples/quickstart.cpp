// Quickstart: generate a small synthetic KG pair, train SDEA, and evaluate
// entity alignment — the whole public API in ~60 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "base/logging.h"
#include "core/sdea.h"
#include "datagen/generator.h"
#include "eval/table_printer.h"

int main() {
  using namespace sdea;

  // 1) A small DBP15K-flavoured benchmark pair (see datagen/presets.h for
  //    the paper-scale presets).
  datagen::GeneratorConfig gen_config;
  gen_config.name = "quickstart";
  gen_config.seed = 7;
  gen_config.num_matched = 300;
  gen_config.kg2_name_mode = datagen::NameMode::kTranslated;
  gen_config.kg1_lang_seed = 1;
  gen_config.kg2_lang_seed = 2;  // Disjoint surface forms: cross-lingual.
  datagen::BenchmarkGenerator generator;
  datagen::GeneratedBenchmark bench = generator.Generate(gen_config);
  std::printf("KG1: %lld entities, %zu rel triples, %zu attr triples\n",
              static_cast<long long>(bench.kg1.num_entities()),
              bench.kg1.relational_triples().size(),
              bench.kg1.attribute_triples().size());
  std::printf("KG2: %lld entities, %zu rel triples, %zu attr triples\n",
              static_cast<long long>(bench.kg2.num_entities()),
              bench.kg2.relational_triples().size(),
              bench.kg2.attribute_triples().size());

  // 2) Split the ground truth 2:1:7 (train : valid : test), as in the paper.
  kg::AlignmentSeeds seeds =
      kg::AlignmentSeeds::Split(bench.ground_truth, /*seed=*/11);
  std::printf("seeds: %zu train / %zu valid / %zu test\n",
              seeds.train.size(), seeds.valid.size(), seeds.test.size());

  // 3) Train SDEA (attribute pre-training, then relation + joint training).
  core::SdeaConfig config;
  config.attribute.text.max_epochs = 10;
  config.attribute.text.patience = 3;
  config.relation.max_epochs = 15;
  config.relation.patience = 3;
  core::SdeaModel model;
  auto report = model.Fit(bench.kg1, bench.kg2, seeds, config);
  if (!report.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // 4) Evaluate on the held-out test pairs.
  const eval::RankingMetrics m = model.Evaluate(seeds.test);
  eval::TablePrinter table({"Model", "H@1", "H@10", "MRR"});
  table.AddRow({"SDEA", eval::FormatPercent(m.hits_at_1),
                eval::FormatPercent(m.hits_at_10), eval::FormatMrr(m.mrr)});
  table.Print();
  return 0;
}
