// Long-tail entity alignment — the paper's Section II-B2 scenario.
//
// Builds the Fabian_Bruskewitz situation from Fig. 2 programmatically: a
// KG2 entity whose structured attributes were stripped, leaving only a long
// textual "comment" that mentions its name, type, neighbors, and facts.
// Shows (a) how such entities arise in the generator, and (b) that SDEA's
// attribute module aligns them through the text while a name-only view
// cannot.
//
// Build & run:  ./build/examples/long_tail_alignment

#include <cstdio>

#include "core/sdea.h"
#include "datagen/generator.h"
#include "eval/table_printer.h"

int main() {
  using namespace sdea;

  // A sparse SRPRS-flavoured pair with aggressive long-tail stripping:
  // every low-degree KG2 entity with a comment loses its structured
  // attributes (the paper's running example).
  datagen::GeneratorConfig gen;
  gen.name = "long-tail demo";
  gen.seed = 21;
  gen.num_matched = 300;
  gen.degree_zipf_s = 1.9;  // Sparse: most entities have degree <= 3.
  gen.min_degree = 1;
  gen.comment_prob = 0.8;
  gen.longtail_strip_prob = 1.0;
  gen.kg1_lang_seed = 5;
  gen.kg2_lang_seed = 5;
  gen.kg2_name_mode = datagen::NameMode::kShared;
  const datagen::GeneratedBenchmark bench =
      datagen::BenchmarkGenerator().Generate(gen);

  // Show one comment-only long-tail entity, like Fig. 2's e_{2,1}.
  auto comment_attr = bench.kg2.FindAttribute("comment");
  for (kg::EntityId e = 0; e < bench.kg2.num_entities(); ++e) {
    const auto& attrs = bench.kg2.attribute_triples_of(e);
    if (attrs.size() == 1 && comment_attr.ok() &&
        bench.kg2.attribute_triples()[static_cast<size_t>(attrs[0])]
                .attribute == *comment_attr &&
        bench.kg2.degree(e) <= 3) {
      std::printf("long-tail entity %s (degree %lld), only attribute:\n",
                  bench.kg2.entity_name(e).c_str(),
                  static_cast<long long>(bench.kg2.degree(e)));
      std::printf("  comment = \"%.100s...\"\n\n",
                  bench.kg2.attribute_triples()[static_cast<size_t>(
                                                    attrs[0])]
                      .value.c_str());
      break;
    }
  }

  const kg::AlignmentSeeds seeds =
      kg::AlignmentSeeds::Split(bench.ground_truth, 9);

  core::SdeaConfig config;
  config.attribute.text.max_epochs = 15;
  config.attribute.text.patience = 4;
  config.attribute.text.negatives_per_pair = 3;
  config.relation.max_epochs = 15;
  config.relation.patience = 4;
  core::SdeaModel model;
  auto report = model.Fit(bench.kg1, bench.kg2, seeds, config,
                          bench.pretrain_corpus);
  if (!report.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Per-degree-bucket results: the low-degree buckets are the long tail.
  const auto buckets =
      model.EvaluateByDegree(bench.kg1, seeds.test, {3, 5, 10});
  const char* names[] = {"degree 1-3 (long tail)", "degree 4-5",
                         "degree 6-10", "degree >10"};
  eval::TablePrinter table({"Bucket", "queries", "H@1", "H@10"});
  for (size_t b = 0; b < buckets.size(); ++b) {
    table.AddRow({names[b], std::to_string(buckets[b].num_queries),
                  eval::FormatPercent(buckets[b].hits_at_1),
                  eval::FormatPercent(buckets[b].hits_at_10)});
  }
  table.Print();
  return 0;
}
