// Streaming alignment: generate the d_stream benchmark (base KG pair plus
// a replayable update stream), fit a base alignment, then process each
// increment — diff, k-hop re-embed, bootstrap — and publish every state to
// a serving SnapshotManager. Also persists/replays the stream through the
// SDEAINC1 update log, the crash-recovery path.
//
// Build & run:  ./build/examples/streaming_alignment

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/streaming.h"
#include "incr/aligner.h"
#include "incr/update_log.h"
#include "serve/snapshot.h"

int main() {
  using namespace sdea;

  // 1) A streamed benchmark: base graphs + 4 update batches, with the
  //    matched pairs that arrive in each batch recorded by name.
  datagen::StreamingConfig config = datagen::StreamingPreset().config;
  config.base.num_matched = 300;
  datagen::StreamingBenchmark stream = datagen::GenerateStreaming(config);
  std::printf("base: KG1 %lld / KG2 %lld entities, %zu increments, %zu base pairs\n",
              static_cast<long long>(stream.kg1.num_entities()),
              static_cast<long long>(stream.kg2.num_entities()),
              stream.increments.size(), stream.base_truth.size());

  // 2) Persist the stream to an SDEAINC1 log (replayable after a crash).
  const std::string log_path = "/tmp/sdea_stream_example.log";
  std::remove(log_path.c_str());
  auto log = incr::UpdateLog::Open(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "log: %s\n", log.status().ToString().c_str());
    return 1;
  }
  for (const incr::UpdateBatch& batch : stream.increments) {
    if (auto s = log->Append(batch); !s.ok()) {
      std::fprintf(stderr, "append: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 3) Base alignment on the pre-stream graphs. A slice of the base truth
  //    trains; the rest (plus every streamed pair) evaluates.
  std::vector<std::pair<kg::EntityId, kg::EntityId>> seeds;
  std::vector<std::pair<kg::EntityId, kg::EntityId>> eval_pairs;
  for (size_t i = 0; i < stream.base_truth.size(); ++i) {
    (i < stream.base_truth.size() * 3 / 10 ? seeds : eval_pairs)
        .push_back(stream.base_truth[i]);
  }
  incr::IncrementalAlignerOptions opts;
  opts.dim = 32;
  opts.base_epochs = 60;
  opts.incr_epochs = 30;
  incr::IncrementalAligner aligner(&stream.kg1, &stream.kg2, opts);
  if (auto s = aligner.FitBase(seeds); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("base Hits@1 = %.1f%%\n", aligner.Evaluate(eval_pairs).hits_at_1);

  // 4) Stream: apply each logged batch, process the increment, publish.
  serve::SnapshotManager manager;
  for (int64_t i = 0; i < log->size(); ++i) {
    const incr::UpdateBatch& batch = log->batches()[static_cast<size_t>(i)];
    incr::ApplyUpdate(batch.kg1, &stream.kg1);
    incr::ApplyUpdate(batch.kg2, &stream.kg2);
    auto rep = aligner.ProcessIncrement();
    if (!rep.ok()) {
      std::fprintf(stderr, "increment: %s\n", rep.status().ToString().c_str());
      return 1;
    }
    for (auto& pair : datagen::ResolveNamePairs(
             stream.kg1, stream.kg2,
             stream.truth_names[static_cast<size_t>(i)])) {
      eval_pairs.push_back(pair);
    }
    auto version = aligner.Publish(&manager);
    if (!version.ok()) {
      std::fprintf(stderr, "publish: %s\n", version.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "increment %lld: +%lld entities, re-embedded %.1f%% "
        "(%lld affected), %lld promoted, Hits@1 = %.1f%%, serving v%llu\n",
        static_cast<long long>(i + 1),
        static_cast<long long>(rep->new_entities),
        100.0 * rep->affected_frac(), static_cast<long long>(rep->affected),
        static_cast<long long>(rep->promoted),
        aligner.Evaluate(eval_pairs).hits_at_1,
        static_cast<unsigned long long>(*version));
  }

  // 5) The published snapshot pairs the embeddings with the exact KG state
  //    they were computed from.
  auto snap = manager.Current();
  std::printf("serving: %lld vectors over KG epoch %llu (torn pairs impossible)\n",
              static_cast<long long>(snap->size()),
              static_cast<unsigned long long>(snap->kg.epoch()));
  std::remove(log_path.c_str());
  return 0;
}
