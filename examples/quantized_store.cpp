// Million-entity-style serving with sdea::store: quantize an embedding
// table into a sharded, memory-mapped SDEASTOR1 snapshot, reopen it in
// O(ms), answer queries through ADC candidate generation + exact rerank,
// and stand an AlignmentServer on it — the deployment shape for stores too
// large to hold resident in full precision.
//
// Build & run:  ./build/examples/quantized_store

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/embedding_store.h"
#include "datagen/presets.h"
#include "serve/server.h"
#include "store/quantized_store.h"
#include "tensor/tensor.h"

int main() {
  using namespace sdea;
  using Clock = std::chrono::steady_clock;

  // ---- Offline: an entity table at (scaled-down) million-preset shape. ----
  // The d_w_1m datagen preset is the headline 1M-entity configuration;
  // 1/100 scale keeps this example instant. Random-normal embeddings stand
  // in for trained ones — the store layer only sees names + vectors.
  const datagen::DatasetSpec spec = datagen::MillionScalePreset();
  const datagen::GeneratorConfig cfg =
      datagen::ScaledConfig(spec.config, 0.01);
  const datagen::GeneratedBenchmark bench =
      datagen::BenchmarkGenerator().Generate(cfg);
  std::vector<std::string> names;
  for (kg::EntityId e = 0; e < bench.kg2.num_entities(); ++e) {
    names.push_back(bench.kg2.entity_name(e));
  }
  const auto n = static_cast<int64_t>(names.size());
  const int64_t dim = 128;
  Rng rng(7);
  Tensor embeddings = Tensor::RandomNormal({n, dim}, 1.0f, &rng);
  std::printf("entity table: %lld entities x %lld dims (%s preset @ 1%%)\n",
              (long long)n, (long long)dim, spec.id.c_str());

  // ---- Write sharded quantized snapshots: int8 and PQ. --------------------
  const std::string int8_dir = "/tmp/sdea_example_store_int8";
  const std::string pq_dir = "/tmp/sdea_example_store_pq";
  store::StoreWriteOptions int8_opts;
  int8_opts.rows_per_shard = 4096;  // Several shards even at example scale.
  SDEA_CHECK_OK(
      store::QuantizedStore::Write(int8_dir, names, embeddings, int8_opts));
  store::StoreWriteOptions pq_opts = int8_opts;
  pq_opts.quantization = store::Quantization::kPq;
  pq_opts.pq.num_subspaces = 16;
  SDEA_CHECK_OK(
      store::QuantizedStore::Write(pq_dir, names, embeddings, pq_opts));

  // ---- Reopen: O(ms), only manifest + shard headers touched. --------------
  const auto t0 = Clock::now();
  auto int8_store = store::QuantizedStore::Open(int8_dir);
  SDEA_CHECK(int8_store.ok());
  auto pq_store = store::QuantizedStore::Open(pq_dir);
  SDEA_CHECK(pq_store.ok());
  const double open_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const double full_mb =
      static_cast<double>(int8_store->full_precision_bytes()) / (1 << 20);
  std::printf("reopened both snapshots (mmap) in %.2f ms\n", open_ms);
  std::printf("  int8: %.1f MB codes vs %.1f MB fp32  (%.1fx)\n",
              static_cast<double>(int8_store->compressed_bytes()) / (1 << 20),
              full_mb,
              static_cast<double>(int8_store->full_precision_bytes()) /
                  static_cast<double>(int8_store->compressed_bytes()));
  std::printf("  pq:   %.2f MB codes vs %.1f MB fp32  (%.0fx)\n",
              static_cast<double>(pq_store->compressed_bytes()) / (1 << 20),
              full_mb,
              static_cast<double>(pq_store->full_precision_bytes()) /
                  static_cast<double>(pq_store->compressed_bytes()));

  // ---- Compressed candidates + exact rerank == full-precision answers. ----
  auto reference = core::EmbeddingStore::Create(names, embeddings);
  SDEA_CHECK(reference.ok());
  Rng qrng(21);
  int agree = 0;
  const int kQueries = 50;
  for (int q = 0; q < kQueries; ++q) {
    Tensor query = Tensor::RandomNormal({dim}, 1.0f, &qrng);
    const auto exact = reference->NearestNeighbors(query, 1);
    const auto quant = int8_store->NearestNeighbors(query, 1);
    if (exact[0].id == quant[0].id &&
        exact[0].similarity == quant[0].similarity) {
      ++agree;
    }
  }
  std::printf("int8 ADC + exact rerank: top-1 bitwise-equal to the "
              "full-precision scan on %d/%d queries\n",
              agree, kQueries);

  // ---- Online: serve straight off the mmap'd snapshot. --------------------
  serve::ServerOptions options;
  options.batcher.max_batch_size = 16;
  serve::AlignmentServer server(options);
  auto version = server.LoadQuantizedSnapshot(int8_dir);
  SDEA_CHECK(version.ok());
  Tensor probe = Tensor::RandomNormal({dim}, 1.0f, &qrng);
  auto hits = server.AlignEmbedding(probe, 3);
  SDEA_CHECK(hits.ok());
  std::printf("\nserving snapshot v%llu (quantized, %lld entities):\n",
              (unsigned long long)*version,
              (long long)server.snapshot()->size());
  for (const auto& h : *hits) {
    std::printf("  %s (%.3f)\n", h.name.c_str(), h.similarity);
  }
  return 0;
}
